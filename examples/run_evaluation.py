#!/usr/bin/env python
"""Run the paper's performance evaluation programmatically (no pytest).

Deploys the benchmark enterprise once, executes the 19 performance queries
(Sec. 6.3.1) on every engine of the evaluation, and renders Fig. 6- and
Fig. 7-style ASCII bar charts plus the headline speedups.  A lighter-weight
alternative to ``pytest benchmarks/ --benchmark-only`` when you just want
the picture.

Run: ``python examples/run_evaluation.py [events_per_host_day]``
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.baselines.mpp import aiql_parallel_engine, greenplum_engine
from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.dependency import compile_dependency
from repro.engine.executor import MultieventExecutor
from repro.lang.ast import DependencyQuery
from repro.lang.context import compile_multievent
from repro.lang.parser import parse
from repro.workload.corpus import PERFORMANCE_QUERIES
from repro.workload.loader import build_enterprise

BAR_WIDTH = 44


def compile_text(text: str):
    tree = parse(text)
    if isinstance(tree, DependencyQuery):
        return compile_dependency(tree)
    return compile_multievent(tree)


def time_engine(run) -> float:
    run()  # warm caches once
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def bar_chart(title: str, series: Dict[str, Dict[str, float]]) -> str:
    """Render per-query grouped horizontal bars, log-ish scaled."""
    lines = [f"=== {title} ===)".replace(")", "")]
    peak = max(v for per in series.values() for v in per.values()) or 1.0
    engines = list(series)
    for qid in PERFORMANCE_QUERIES:
        lines.append(qid.qid)
        for engine in engines:
            value = series[engine].get(qid.qid, 0.0)
            width = max(1, int(BAR_WIDTH * value / peak))
            lines.append(
                f"  {engine:<12s} {'#' * width} {value * 1000:8.2f} ms"
            )
    return "\n".join(lines)


def main() -> None:
    rate = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"deploying the enterprise (rate={rate})...")
    enterprise = build_enterprise(
        stores=(
            "partitioned",
            "flat",
            "segmented_domain",
            "segmented_arrival",
        ),
        events_per_host_day=rate,
    )
    print(f"{enterprise.total_events} events\n")

    partitioned = enterprise.store("partitioned")
    engines = {
        "postgresql": MonolithicJoinEngine(partitioned),
        "aiql_ff": MultieventExecutor(partitioned, scheduling="fetch_filter"),
        "aiql": MultieventExecutor(partitioned),
        "greenplum": greenplum_engine(enterprise.store("segmented_arrival")),
        "aiql_par": aiql_parallel_engine(enterprise.store("segmented_domain")),
    }
    anomaly = {
        "postgresql": AnomalyExecutor(partitioned, scheduling="fetch_filter"),
        "aiql_ff": AnomalyExecutor(partitioned, scheduling="fetch_filter"),
        "aiql": AnomalyExecutor(partitioned),
        "greenplum": AnomalyExecutor(
            enterprise.store("segmented_arrival"), scheduling="fetch_filter"
        ),
        "aiql_par": AnomalyExecutor(
            enterprise.store("segmented_domain"), parallel=True
        ),
    }

    results: Dict[str, Dict[str, float]] = {name: {} for name in engines}
    for query in PERFORMANCE_QUERIES:
        ctx = compile_text(query.text)
        for name in engines:
            engine = anomaly[name] if ctx.kind == "anomaly" else engines[name]
            results[name][query.qid] = time_engine(lambda: engine.run(ctx))

    print(bar_chart(
        "Fig. 6-style: single-node scheduling",
        {k: results[k] for k in ("postgresql", "aiql_ff", "aiql")},
    ))
    print()
    print(bar_chart(
        "Fig. 7-style: parallel scheduling",
        {k: results[k] for k in ("greenplum", "aiql_par")},
    ))

    def total(name: str) -> float:
        return sum(results[name].values())

    print("\n=== headline speedups ===")
    print(f"AIQL FF over PostgreSQL scheduling: "
          f"{total('postgresql') / total('aiql_ff'):5.1f}x  (paper: 19x)")
    print(f"AIQL over PostgreSQL scheduling:    "
          f"{total('postgresql') / total('aiql'):5.1f}x  (paper: 40x)")
    print(f"AIQL over Greenplum scheduling:     "
          f"{total('greenplum') / total('aiql_par'):5.1f}x  (paper: 16x)")


if __name__ == "__main__":
    main()
