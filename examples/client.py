"""A minimal network client for the AIQL service — stdlib only.

Start a server in one terminal:

    $ PYTHONPATH=src python -m repro serve --port 8080 --rate 200

then run this against it:

    $ PYTHONPATH=src python examples/client.py --port 8080

It submits one query over HTTP (streaming the NDJSON pages as they
arrive), asks for the execution plan, and finally opens the alert
WebSocket and waits briefly for standing-query matches.

Everything on the wire is a versioned ``repro.api`` message; errors
come back as ``ErrorEnvelope`` with a stable dotted code — switch on
``envelope.code``, never on the message text.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import urllib.error
import urllib.parse
import urllib.request

from repro import api
from repro.server import websocket

QUERY = """\
proc p1 start proc p2
return p1, p2
"""

WATCH = """\
proc p1 write file f1 as evt1
return p1, f1
"""


def run_query(base: str, text: str) -> None:
    """POST /v1/query and stream the NDJSON pages."""
    request = urllib.request.Request(
        f"{base}/v1/query",
        data=api.QueryRequest(text=text, client_id="example").to_json().encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            pages = []
            for raw in response:  # one JSON object per line, as it arrives
                line = raw.decode().strip()
                if line:
                    pages.append(api.from_json(line))
            columns, rows, meta = api.result_from_pages(pages)
    except urllib.error.HTTPError as err:
        envelope = api.from_json(err.read().decode())
        print(f"query failed: [{envelope.code}] {envelope.message}")
        if envelope.retryable:
            print(f"  retryable — retry after {envelope.retry_after_s}s")
        return
    print(f"columns: {columns}")
    for row in rows[:10]:
        print(f"  {row}")
    if len(rows) > 10:
        print(f"  ... {len(rows) - 10} more")
    print(f"{len(rows)} rows in {meta.get('elapsed_ms', '?')} ms "
          f"({len(pages)} page(s))")
    if "completeness" in meta:  # degraded sharded read — still a 200
        print(f"  degraded: {meta['completeness']}")


def run_explain(base: str, text: str) -> None:
    """GET /v1/explain — the scheduler's plan for the query."""
    q = urllib.parse.quote(text)
    with urllib.request.urlopen(f"{base}/v1/explain?q={q}&analyze=0") as resp:
        report = api.from_json(resp.read().decode())
    print(f"plan kind: {report.kind}")
    for step in report.plan:
        print(f"  {json.dumps(step)[:100]}")


async def watch_alerts(host: str, port: int, timeout_s: float) -> None:
    """Subscribe on the /v1/alerts WebSocket and print pushed matches."""
    ws = await websocket.connect(host, port)
    await ws.send_text(
        api.SubscribeRequest(query=WATCH, name="example-watch").to_json()
    )
    ack = api.from_json(await ws.recv_text())
    if isinstance(ack, api.ErrorEnvelope):
        print(f"subscribe failed: [{ack.code}] {ack.message}")
        return
    print(f"subscribed {ack.name!r}: {ack.patterns} pattern(s), "
          f"window {ack.window_s}s — waiting {timeout_s:.0f}s for alerts")
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    received = 0
    while loop.time() < deadline:
        try:
            text = await asyncio.wait_for(
                ws.recv_text(), timeout=max(0.1, deadline - loop.time())
            )
        except asyncio.TimeoutError:
            break
        if text is None:
            break
        message = api.from_json(text)
        if isinstance(message, api.AlertMessage):
            received += 1
            first = message.events[0] if message.events else {}
            print(f"  alert #{received} [{message.subscription}] {first}")
    print(f"{received} alert(s) received")
    await ws.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--watch-s", type=float, default=5.0,
                        help="how long to wait on the alert socket")
    args = parser.parse_args()
    base = f"http://{args.host}:{args.port}"

    try:
        with urllib.request.urlopen(f"{base}/healthz") as resp:
            health = api.from_json(resp.read().decode())
    except OSError as err:
        print(f"no server at {base}: {err}", file=sys.stderr)
        print("start one with: PYTHONPATH=src python -m repro serve",
              file=sys.stderr)
        return 1
    print(f"server ok ({health.status}, api {health.api}, "
          f"schema v{api.SCHEMA_VERSION})")

    print("\n-- query " + "-" * 40)
    run_query(base, QUERY)
    print("\n-- explain " + "-" * 38)
    run_explain(base, QUERY)
    print("\n-- alerts " + "-" * 39)
    asyncio.run(watch_alerts(args.host, args.port, args.watch_s))
    return 0


if __name__ == "__main__":
    sys.exit(main())
