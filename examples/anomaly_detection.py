#!/usr/bin/env python
"""Anomaly AIQL queries: sliding windows, history states, moving averages.

Demonstrates the Sec. 4.3 features on the abnormal-behavior day of the
simulated enterprise (s3/s5/s6 scenarios): frequency thresholds, the SMA3
spike rule of the paper's Query 4/5, the EWMA normalized-deviation variant,
and history-state comparison for file-access bursts.

Run: ``python examples/anomaly_detection.py``
"""

from repro.core.system import AIQLSystem
from repro.workload.loader import build_enterprise


def main() -> None:
    print("deploying the enterprise...")
    enterprise = build_enterprise(events_per_host_day=200)
    system = AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )
    print(f"events: {enterprise.total_events}\n")

    print("--- s3: frequent network access (plain aggregation) ---")
    print(system.query('''
        agentid = 11
        (at "01/06/2017")
        proc p connect ip i
        return p, count(distinct i) as freq
        group by p
        having freq > 20
    ''').to_text(), "\n")

    print("--- s5: network spike via simple moving average (Query 4 rule) ---")
    print(system.query('''
        agentid = 13
        (at "01/06/2017")
        window = 1 min, step = 10 sec
        proc p write ip i[dstip = "203.0.113.128"] as evt
        return p, avg(evt.amount) as amt
        group by p
        having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
    ''').to_text(), "\n")

    print("--- s5 again, EWMA normalized deviation (Sec. 4.3) ---")
    print(system.query('''
        agentid = 13
        (at "01/06/2017")
        window = 1 min, step = 10 sec
        proc p write ip i[dstip = "203.0.113.128"] as evt
        return p, avg(evt.amount) as amt
        group by p
        having (amt - EWMA(amt, 0.9)) / EWMA(amt, 0.9) > 0.2
    ''').to_text(), "\n")

    print("--- s6: abnormal file access (history-state comparison) ---")
    print(system.query('''
        agentid = 14
        (at "01/06/2017")
        window = 2 min, step = 30 sec
        proc p read file f["%Finance%"] as evt
        return p, count(distinct f) as freq
        group by p
        having freq > 2 * (freq[1] + freq[2] + freq[3] + 1) / 3
    ''').to_text(), "\n")

    print(
        "note: windows earlier than the deepest history index are skipped;\n"
        "a group absent from a window contributes 0 to its series."
    )


if __name__ == "__main__":
    main()
