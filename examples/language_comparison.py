#!/usr/bin/env python
"""Conciseness: the same investigation in AIQL, SQL, Cypher and SPL.

Derives the semantically equivalent SQL / Neo4j Cypher / Splunk SPL for the
paper's largest case-study query (c4-8, 7 event patterns) and prints all
four side by side with the Sec. 6.4 metrics — then the Table 5 averages
over the whole 17-behavior conciseness corpus.

Run: ``python examples/language_comparison.py``
"""

from repro.baselines.conciseness import (
    compare,
    improvement_table,
    text_metrics,
    translate_all,
)
from repro.workload.corpus import CONCISENESS_QUERY_IDS, by_id


def main() -> None:
    qid = "c4-8"
    translated = translate_all(by_id(qid).text)

    for language in ("aiql", "sql", "cypher", "spl"):
        query = translated[language]
        words, characters = text_metrics(query.text)
        print(f"=== {language.upper()} "
              f"({query.constraints} constraints, {words} words, "
              f"{characters} characters) ===")
        print(query.text.strip())
        print()

    print("=== Table 5: average AIQL-relative ratios over 17 behaviors ===")
    rows = []
    for query_id in CONCISENESS_QUERY_IDS:
        rows.extend(compare(query_id, by_id(query_id).text))
    table = improvement_table(rows)
    print(f"{'metric':14s} {'SQL':>7s} {'Cypher':>8s} {'SPL':>7s}")
    for metric in ("constraints", "words", "characters"):
        print(
            f"{metric:14s} {table['sql'][metric]:6.2f}x "
            f"{table['cypher'][metric]:7.2f}x {table['spl'][metric]:6.2f}x"
        )
    print(
        "\npaper: SQL/Cypher/SPL contain at least 2.4x more constraints,\n"
        "3.1x more words and 4.7x more characters than AIQL."
    )


if __name__ == "__main__":
    main()
