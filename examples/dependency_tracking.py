#!/usr/bin/env python
"""Dependency AIQL queries: provenance chains across files and hosts.

Replays the paper's Sec. 6.3.1 dependency-tracking behaviors: backward
provenance of update executables (d1/d2) and the forward ramification of
the ``info_stealer`` malware across two hosts (d3 — the paper's Query 3,
including the cross-host ``->[connect]`` hop).

Run: ``python examples/dependency_tracking.py``
"""

from repro.core.system import AIQLSystem
from repro.engine.dependency import rewrite_dependency
from repro.lang.formatter import format_query
from repro.lang.parser import parse
from repro.workload.loader import build_enterprise

D3 = '''
(at "01/07/2017")
forward: proc p1["%/bin/cp%", agentid = 4] ->[write]
  file f1["/var/www/%info_stealer%"] <-[read] proc p2["%apache%"]
  ->[connect] proc p3[agentid = 5] ->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2
'''


def main() -> None:
    print("deploying the enterprise...")
    enterprise = build_enterprise(events_per_host_day=200)
    system = AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )
    print(f"events: {enterprise.total_events}\n")

    print("--- d1: where did chrome_update.exe come from? (backward) ---")
    print(system.query('''
        agentid = 7
        (at "01/07/2017")
        backward: proc u1["%chrome_update.exe"] ->[read]
          file f1["%chrome_update.exe"] <-[write] proc p1
        return u1, f1, p1
    ''').to_text(), "\n")

    print("--- d2: same question for java_update.exe ---")
    print(system.query('''
        agentid = 9
        (at "01/07/2017")
        backward: proc u1["%java_update.exe"] ->[read]
          file f1["%java_update.exe"] <-[write] proc p1
        return u1, f1, p1
    ''').to_text(), "\n")

    print("--- d3: forward tracking of info_stealer across hosts (Query 3) ---")
    print(system.query(D3).to_text(), "\n")

    print("--- how the engine executes d3: the rewritten multievent query ---")
    rewritten = rewrite_dependency(parse(D3))
    print(format_query(rewritten))
    print(
        "\nthe ->[connect] hop between two processes became two network\n"
        "patterns correlated on the flow tuple (both hosts record the same\n"
        "connection), plus the forward 'before' chain."
    )


if __name__ == "__main__":
    main()
