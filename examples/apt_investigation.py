#!/usr/bin/env python
"""The paper's Sec. 6.2 case study, end to end.

Deploys the simulated enterprise (15 hosts, 16 days, the Fig. 4 APT
injected on 2017-01-05), then replays the investigation narrative of
Sec. 6.2.1: start from the two anomaly detectors' alerts and iterate AIQL
queries backwards through the kill chain, c5 -> c1.

Run: ``python examples/apt_investigation.py``
"""

from repro.core.investigate import InvestigationSession
from repro.core.system import AIQLSystem
from repro.workload.corpus import by_id
from repro.workload.loader import build_enterprise


def main() -> None:
    print("deploying the enterprise (background noise + APT injection)...")
    enterprise = build_enterprise(events_per_host_day=200)
    system = AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )
    print(f"events: {enterprise.total_events}\n")

    session = InvestigationSession(system=system, name="APT case study")

    # -- step c5: the database server's transfer detector fired ------------
    print(">>> c5: investigating the large-transfer alert (Query 5)")
    result = session.run(
        "c5 anomaly starter",
        by_id("c5-anomaly").text,
        note="moving average (SMA3) over network writes to XXX.129",
    )
    print(result.to_text())
    suspect = sorted(session.finding("p"))[0]
    print(f"-> suspicious process: {suspect}\n")

    print(">>> c5: where did its data come from? (Query 6)")
    result = session.run("c5 data sources", by_id("c5-2").text)
    print(result.to_text())
    print("-> suspicious file: BACKUP1.DMP\n")

    print(">>> c5: who created the dump? who drove osql?")
    print(session.run("c5 dump creator", by_id("c5-3").text).to_text())
    print()
    print(">>> c5: the complete exfiltration query (Query 7)")
    print(session.run("c5 complete", by_id("c5-7").text).to_text())
    print()

    # -- step c4: how did the attacker get onto the DB server? -------------
    print(">>> c4: what started sbblv.exe? (dropper chain)")
    print(session.run("c4 dropper", by_id("c4-3").text).to_text())
    print()
    print(">>> c4: the largest query of the study (c4-8, 7 patterns)")
    print(session.run("c4 complete", by_id("c4-8").text).to_text())
    print()

    # -- step c3: privilege escalation on the client ------------------------
    print(">>> c3: credential theft on the Windows client")
    print(session.run("c3 gsecdump", by_id("c3-1").text).to_text())
    print()

    # -- step c2: the process-creation detector's alert ---------------------
    print(">>> c2: malware infection chain")
    print(session.run("c2 complete", by_id("c2-7").text).to_text())
    print()

    # -- step c1: initial compromise ----------------------------------------
    print(">>> c1: the phishing attachment")
    print(session.run("c1 phishing", by_id("c1-1").text).to_text())
    print()

    print(session.report())
    print(
        "\npaper: the same investigation took ~3 minutes in AIQL vs "
        "~5.9 h (PostgreSQL) / ~7.5 h (Neo4j) on 2.5 B events."
    )


if __name__ == "__main__":
    main()
