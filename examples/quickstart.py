#!/usr/bin/env python
"""Quickstart: ingest monitoring events, ask AIQL questions.

Builds a tiny two-host deployment by hand (no workload generator), then
runs the three kinds of AIQL query: a multievent pattern search, a
dependency-style chain, and a sliding-window anomaly query.

Run: ``python examples/quickstart.py``
"""

from repro import AIQLSystem

BASE = 1483228800.0  # 2017-01-01 00:00:00 UTC — matches (at "01/01/2017")


def ingest_scenario(system: AIQLSystem) -> None:
    """A miniature intrusion: shell -> dropper -> exfiltration."""
    ing = system.ingestor

    # benign noise on host 1
    shell = ing.process(1, 100, "bash", user="alice")
    editor = ing.process(1, 101, "vim", user="alice")
    notes = ing.file(1, "/home/alice/notes.txt", owner="alice")
    ing.emit(1, BASE + 100, "start", shell, editor)
    ing.emit(1, BASE + 130, "write", editor, notes, amount=2048)

    # the interesting chain on host 1
    wget = ing.process(1, 102, "wget", user="alice")
    dropper = ing.file(1, "/tmp/.dropper", owner="alice")
    malware = ing.process(1, 103, ".dropper", user="alice")
    c2 = ing.connection(1, "10.0.0.1", 40000, "203.0.113.99", 443)
    ing.emit(1, BASE + 200, "start", shell, wget)
    ing.emit(1, BASE + 210, "write", wget, dropper, amount=700000)
    ing.emit(1, BASE + 240, "start", shell, malware)
    ing.emit(1, BASE + 250, "read", malware, dropper, amount=700000)
    ing.emit(1, BASE + 300, "connect", malware, c2)
    # steady beaconing, then a burst
    for k in range(20):
        ing.emit(1, BASE + 320 + 10 * k, "write", malware, c2, amount=2048)
    for k in range(4):
        ing.emit(1, BASE + 540 + 10 * k, "write", malware, c2, amount=5000000)


def main() -> None:
    system = AIQLSystem()
    ingest_scenario(system)
    print(f"ingested {system.stats()['events']} events\n")

    print("--- multievent: who dropped and ran a file from /tmp? ---")
    result = system.query('''
        agentid = 1
        (at "01/01/2017")
        proc p1 write file f1["/tmp/%"] as evt1
        proc p2 read file f1 as evt2
        with evt1 before evt2
        return distinct p1, f1, p2
    ''')
    print(result.to_text(), "\n")

    print("--- dependency: forward-track the dropper's ramification ---")
    result = system.query('''
        (at "01/01/2017")
        forward: proc p1["%wget%"] ->[write] file f1["/tmp/%"]
                 <-[read] proc p2
        return p1, f1, p2
    ''')
    print(result.to_text(), "\n")

    print("--- anomaly: network transfer spikes (SMA3, paper Query 5) ---")
    result = system.query('''
        (at "01/01/2017")
        agentid = 1
        window = 1 min, step = 10 sec
        proc p write ip i as evt
        return p, avg(evt.amount) as amt
        group by p
        having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
    ''')
    print(result.to_text(), "\n")

    print("--- execution plan for the first query ---")
    print(system.explain('''
        agentid = 1
        (at "01/01/2017")
        proc p1 write file f1["/tmp/%"] as evt1
        proc p2 read file f1 as evt2
        with evt1 before evt2
        return distinct p1, f1, p2
    '''))


if __name__ == "__main__":
    main()
