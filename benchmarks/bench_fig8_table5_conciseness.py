"""Fig. 8 + Table 5: conciseness of AIQL vs SQL, Cypher and SPL.

For the 17 translatable behaviors (s5/s6 have no SQL/Cypher/SPL
equivalents, matching the paper) we derive semantically equivalent queries
and measure the three Sec. 6.4 metrics: number of constraints, number of
words, number of characters excluding spaces.  Paper headline: "SQL, Neo4j
Cypher, and Splunk SPL contain at least 2.4x more constraints, 3.1x more
words, and 4.7x more characters than AIQL"; shape requirement here: AIQL
strictly most concise on every behavior and every metric, with SQL the most
verbose overall.

Run: ``pytest benchmarks/bench_fig8_table5_conciseness.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.baselines.conciseness import compare, improvement_table
from repro.workload.corpus import CONCISENESS_QUERY_IDS, by_id

_ROWS: list = []


@pytest.mark.parametrize("qid", CONCISENESS_QUERY_IDS)
def test_translate(benchmark, qid):
    """Times the full 4-language translation pipeline per behavior."""
    rows = benchmark.pedantic(
        lambda: compare(qid, by_id(qid).text), rounds=3, iterations=1
    )
    by_lang = {r.language: r for r in rows}
    aiql = by_lang["aiql"]
    for lang in ("sql", "cypher", "spl"):
        assert by_lang[lang].words > aiql.words
        assert by_lang[lang].characters > aiql.characters
        assert by_lang[lang].constraints >= aiql.constraints
    _ROWS.extend(rows)


@pytest.mark.benchmark(group="summary")
def test_zz_fig8_table5_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_query: dict = {}
    for row in _ROWS:
        by_query.setdefault(row.qid, {})[row.language] = row

    for metric in ("constraints", "words", "characters"):
        print(f"\n=== Fig. 8 ({metric}) ===")
        print(f"{'query':6s} {'AIQL':>6s} {'SQL':>6s} {'Cypher':>7s} {'SPL':>6s}")
        for qid in CONCISENESS_QUERY_IDS:
            langs = by_query.get(qid, {})
            if not langs:
                continue
            vals = [getattr(langs[l], metric) for l in ("aiql", "sql", "cypher", "spl")]
            print(f"{qid:6s} {vals[0]:6d} {vals[1]:6d} {vals[2]:7d} {vals[3]:6d}")

    table = improvement_table(_ROWS)
    print("\n=== Table 5 (reproduced): average AIQL-relative ratios ===")
    print(f"{'metric':14s} {'AIQL/SQL':>9s} {'AIQL/Cypher':>12s} {'AIQL/SPL':>9s}")
    paper = {
        "constraints": (3.0, 2.4, 4.2),
        "words": (3.9, 3.1, 3.8),
        "characters": (5.3, 4.7, 4.7),
    }
    for metric in ("constraints", "words", "characters"):
        sql = table["sql"][metric]
        cypher = table["cypher"][metric]
        spl = table["spl"][metric]
        p = paper[metric]
        print(
            f"{metric:14s} {sql:8.2f}x {cypher:11.2f}x {spl:8.2f}x"
            f"   (paper: {p[0]}x / {p[1]}x / {p[2]}x)"
        )
        assert sql > 1.0 and cypher > 1.0 and spl > 1.0
    # Sec. 6.2.2: c4-8 conciseness spot check
    c48 = by_query["c4-8"] if "c4-8" in by_query else None
    if c48:
        print(
            "\nc4-8 (largest query): AIQL "
            f"{c48['aiql'].constraints}/{c48['aiql'].words}/"
            f"{c48['aiql'].characters} vs SQL "
            f"{c48['sql'].constraints}/{c48['sql'].words}/"
            f"{c48['sql'].characters}  (paper: 25/109/463 vs 77/432/2792)"
        )
