"""Table 3 + Fig. 5: end-to-end APT case-study efficiency.

The paper's headline experiment: the 26 case-study queries (+1 anomaly
starter) executed on AIQL, stock-layout PostgreSQL (monolithic join over an
unpartitioned heap) and Neo4j (Cypher-style backtracking over a property
graph).  The paper reports per-step totals (Table 3) and per-query times
(Fig. 5), with AIQL 124x over PostgreSQL and 157x over Neo4j on 2.5 B
events; at laptop scale the absolute factors shrink but the *shape* — AIQL
fastest, baselines degrading super-linearly with the number of event
patterns — must hold.

Run: ``pytest benchmarks/bench_table3_fig5_apt_endtoend.py --benchmark-only``
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from benchmarks.conftest import compile_text, prepare
from repro.workload.corpus import CASE_STUDY_QUERIES, C5_ANOMALY

ENGINES = ("aiql", "postgresql", "neo4j")

# (engine, qid) -> seconds; filled by the benchmarks, printed at the end.
_RESULTS: dict = defaultdict(dict)


def _record(engine: str, qid: str, seconds: float) -> None:
    _RESULTS[engine][qid] = seconds


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("query", CASE_STUDY_QUERIES, ids=lambda q: q.qid)
def test_case_study_query(benchmark, engines, engine, query):
    runner = prepare(engines, engine, query)
    result = benchmark.pedantic(runner, rounds=2, iterations=1)
    assert len(result) >= query.min_rows
    _record(engine, query.qid, benchmark.stats["mean"])


def test_anomaly_starter(benchmark, engines):
    """The Query 5 anomaly starter (AIQL only; SQL/Cypher cannot express it)."""
    runner = prepare(engines, "aiql", C5_ANOMALY)
    result = benchmark.pedantic(runner, rounds=2, iterations=1)
    assert "sbblv.exe" in result.column("p")
    _record("aiql", C5_ANOMALY.qid, benchmark.stats["mean"])


@pytest.mark.benchmark(group="summary")
def test_zz_table3_summary(benchmark, engines):
    """Aggregate per-step totals (the Table 3 reproduction) + speedups."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    steps = defaultdict(lambda: defaultdict(float))
    patterns = defaultdict(int)
    counts = defaultdict(int)
    for query in CASE_STUDY_QUERIES:
        step = query.group
        counts[step] += 1
        patterns[step] += len(compile_text(query.text).patterns)
        for engine in ENGINES:
            steps[step][engine] += _RESULTS[engine].get(query.qid, 0.0)

    print("\n=== Table 3 (reproduced): aggregate case-study statistics ===")
    header = (
        f"{'Step':5s} {'#Q':>3s} {'#Patt':>6s} "
        f"{'AIQL(s)':>9s} {'PostgreSQL(s)':>14s} {'Neo4j(s)':>9s}"
    )
    print(header)
    totals = defaultdict(float)
    for step in ("c1", "c2", "c3", "c4", "c5"):
        row = steps[step]
        print(
            f"{step:5s} {counts[step]:3d} {patterns[step]:6d} "
            f"{row['aiql']:9.3f} {row['postgresql']:14.3f} {row['neo4j']:9.3f}"
        )
        for engine in ENGINES:
            totals[engine] += row[engine]
    print(
        f"{'All':5s} {sum(counts.values()):3d} {sum(patterns.values()):6d} "
        f"{totals['aiql']:9.3f} {totals['postgresql']:14.3f} "
        f"{totals['neo4j']:9.3f}"
    )
    if totals["aiql"] > 0:
        print(
            f"speedup vs PostgreSQL: {totals['postgresql'] / totals['aiql']:.1f}x"
            f" (paper: 124x at 2.5B events)"
        )
        print(
            f"speedup vs Neo4j:      {totals['neo4j'] / totals['aiql']:.1f}x"
            f" (paper: 157x at 2.5B events)"
        )
    # Fig. 5 shape assertions: AIQL total must win against both baselines.
    assert totals["aiql"] < totals["postgresql"]
    assert totals["aiql"] < totals["neo4j"]
