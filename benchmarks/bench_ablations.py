"""Ablations for the design choices DESIGN.md calls out (paper Sec. 7).

* score model — the published constraint-count heuristic vs the Sec. 7
  statistical (cardinality) model, on the queries where the heuristic
  mispredicts;
* constrained execution on/off — relationship scheduling with vs without
  feeding prior results into pending data queries (= fetch-and-filter);
* partition pruning on/off — the same data query against the partitioned
  store vs the flat heap;
* distribution policy — domain vs arrival segment placement under the
  *same* scheduler (isolates the Sec. 6.3.3 claim from the join strategy);
* segment count sweep — parallel scan scaling of the MPP substrate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import compile_text
from repro.engine.executor import MultieventExecutor
from repro.engine.scheduler import FetchFilterScheduler, RelationshipScheduler
from repro.model.time import DAY, TimeWindow
from repro.storage.filters import EventFilter
from repro.storage.segments import SegmentedStore
from repro.workload.corpus import by_id
from repro.workload.loader import build_enterprise
from repro.workload.topology import APT_DAY

HEAVY_QUERY = "c4-8"


class TestScoreModelAblation:
    """Sec. 7's proposed statistical pruning model vs the published
    constraint-count heuristic, on the queries where the heuristic
    mispredicts (documented in EXPERIMENTS.md)."""

    @pytest.mark.parametrize("qid", ["d3", "v2", "c4-8"])
    @pytest.mark.parametrize("model", ["constraints", "cardinality"])
    def test_score_model(self, benchmark, enterprise, qid, model):
        store = enterprise.store("partitioned")
        ctx = compile_text(by_id(qid).text)
        benchmark.pedantic(
            lambda: RelationshipScheduler(store, score_model=model).run(ctx),
            rounds=3,
            iterations=1,
        )

    def test_cardinality_model_fetches_less_on_d3(self, enterprise):
        store = enterprise.store("partitioned")
        ctx = compile_text(by_id("d3").text)
        heuristic = RelationshipScheduler(store)
        heuristic.run(ctx)
        statistical = RelationshipScheduler(store, score_model="cardinality")
        statistical.run(ctx)
        print(
            f"\nd3 events fetched — constraint-count: "
            f"{heuristic.stats.events_fetched}, cardinality: "
            f"{statistical.stats.events_fetched}"
        )
        assert (
            statistical.stats.events_fetched
            <= heuristic.stats.events_fetched
        )


class TestConstrainedExecutionAblation:
    def test_with_constrained_execution(self, benchmark, enterprise):
        store = enterprise.store("partitioned")
        ctx = compile_text(by_id(HEAVY_QUERY).text)
        benchmark.pedantic(
            lambda: RelationshipScheduler(store).run(ctx), rounds=3, iterations=1
        )

    def test_without_constrained_execution(self, benchmark, enterprise):
        store = enterprise.store("partitioned")
        ctx = compile_text(by_id(HEAVY_QUERY).text)
        benchmark.pedantic(
            lambda: FetchFilterScheduler(store).run(ctx), rounds=3, iterations=1
        )

    def test_constrained_fetches_no_more(self, enterprise):
        store = enterprise.store("partitioned")
        ctx = compile_text(by_id(HEAVY_QUERY).text)
        rel = RelationshipScheduler(store)
        rel.run(ctx)
        ff = FetchFilterScheduler(store)
        ff.run(ctx)
        print(
            f"\nevents fetched — relationship: {rel.stats.events_fetched}, "
            f"fetch-and-filter: {ff.stats.events_fetched}"
        )
        assert rel.stats.events_fetched <= ff.stats.events_fetched


class TestPartitionPruningAblation:
    FLT = EventFilter(
        agent_ids=frozenset({3}),
        window=TimeWindow(APT_DAY, APT_DAY + DAY),
    )

    def test_partitioned_scan(self, benchmark, enterprise):
        store = enterprise.store("partitioned")
        events = benchmark.pedantic(
            lambda: store.scan(self.FLT), rounds=5, iterations=1
        )
        assert events

    def test_flat_scan(self, benchmark, enterprise):
        store = enterprise.store("flat")
        events = benchmark.pedantic(
            lambda: store.scan(self.FLT), rounds=5, iterations=1
        )
        assert events

    def test_pruning_reduces_partitions_touched(self, enterprise):
        store = enterprise.store("partitioned")
        touched = len(store._pruned(self.FLT))
        total = len(store.partition_keys)
        print(f"\npartitions touched: {touched}/{total}")
        assert touched < total / 4


class TestDistributionPolicyAblation:
    """Same relationship scheduler, only the segment placement differs."""

    @pytest.mark.parametrize("policy", ["domain", "arrival"])
    def test_policy(self, benchmark, enterprise, policy):
        store = enterprise.store(f"segmented_{policy}")
        ctx = compile_text(by_id(HEAVY_QUERY).text)
        executor = MultieventExecutor(store, parallel=True)
        result = benchmark.pedantic(
            lambda: executor.run(ctx), rounds=3, iterations=1
        )
        assert len(result) >= 1


class TestSegmentCountSweep:
    @pytest.mark.parametrize("segments", [1, 2, 5, 10])
    def test_scan_scaling(self, benchmark, segments):
        ent = build_enterprise(
            stores=("segmented_domain",),
            events_per_host_day=60,
            segments=segments,
        )
        store = ent.store("segmented_domain")
        assert isinstance(store, SegmentedStore)
        flt = EventFilter(window=TimeWindow(APT_DAY, APT_DAY + DAY))
        events = benchmark.pedantic(
            lambda: store.scan(flt), rounds=3, iterations=1
        )
        assert events
