"""Ingest-while-query: service throughput under live streaming ingest.

The ISSUE-2 acceptance benchmark.  A batch of identical-pattern queries
(distinct ``top N`` defeats query-level dedup) runs through the concurrent
query service while a :class:`~repro.workload.live.LiveReplay` streams
background events into the store at 0 / 1k / 10k events/second, with the
partition-scan cache on and off.  Live traffic lands in "today's"
partitions; the queries investigate the historical window — partition-
scoped invalidation keeps their cached scans hit-warm, where a global
flush would recompute every scan after every commit.

The acceptance probe asserts the scoping directly: with partitions A and B
cache-warm, a batch commit touching only A leaves B's entry serving hits.

Run:  PYTHONPATH=src python benchmarks/bench_live_ingest.py
      (add ``--check`` to exit nonzero if the probe fails;
      AIQL_BENCH_RATE scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

from repro.model.time import DAY, TimeWindow
from repro.service import QueryService, ScanCache, SharedExecutor, StreamSession
from repro.storage.filters import EventFilter
from repro.workload.live import LiveReplay
from repro.workload.topology import BASE_DAY

QUERY_TEMPLATE = """
    (from "01/02/2017" to "01/09/2017")
    proc p1 write file f1 as evt1[amount > 2000000]
    proc p2 read file f1 as evt2[amount > 2000000]
    with evt1 before evt2
    return distinct p1, f1, p2 top {n}
"""

INGEST_RATES = (0, 1_000, 10_000)
JOBS = 8
BATCH_SIZE = 24


def measure(workload_rate: int, ingest_rate: int, use_cache: bool) -> dict:
    # A fresh deployment per configuration: every cell queries the identical
    # store state, untouched by the previous cell's live stream.
    from repro.workload.loader import build_enterprise

    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=workload_rate
    )
    store = enterprise.store("partitioned")
    QueryService(store).run(QUERY_TEMPLATE.format(n=99))  # warm LIKE caches
    store.scan_cache = ScanCache(max_entries=1024) if use_cache else None
    executor = SharedExecutor(max_workers=JOBS)
    service = QueryService(store, executor=executor)
    session = StreamSession(enterprise.ingestor)
    replay_handle = None
    if ingest_rate:
        replay_handle = LiveReplay(session, rate=ingest_rate).start()

    queries = [QUERY_TEMPLATE.format(n=100 + i) for i in range(BATCH_SIZE)]
    latencies: List[float] = []
    started = time.perf_counter()
    futures = []
    for text in queries:
        t0 = time.perf_counter()
        future = service.submit(text)
        future.add_done_callback(
            lambda f, t0=t0: latencies.append(time.perf_counter() - t0)
        )
        futures.append(future)
    sizes = [len(f.result()) for f in futures]
    wall = time.perf_counter() - started
    while len(latencies) < len(queries):
        time.sleep(0.001)

    replay = replay_handle.stop() if replay_handle else None
    executor.shutdown()
    cache_stats = store.scan_cache.stats() if use_cache else {}
    store.scan_cache = None
    total = max(sizes)
    assert total > 0, "benchmark query returned no rows"
    assert all(n == min(total, 100 + i) for i, n in enumerate(sizes)), sizes
    return {
        "ingest_rate": ingest_rate,
        "cache": use_cache,
        "wall_s": wall,
        "qps": len(queries) / wall,
        "p95_ms": sorted(latencies)[int(len(latencies) * 0.95) - 1] * 1000,
        "ingested": replay.events if replay else 0,
        "achieved_ev_s": replay.achieved_rate if replay else 0.0,
        "cache_stats": cache_stats,
    }


def partition_scoped_probe(workload_rate: int) -> bool:
    """A commit touching one partition leaves the others' scans hit-warm."""
    from repro.workload.loader import build_enterprise

    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=workload_rate
    )
    store = enterprise.store("partitioned")
    store.scan_cache = ScanCache(max_entries=1024)
    cache = store.scan_cache
    session = StreamSession(enterprise.ingestor, batch_size=10**9)
    host = session.process(1, 9999, "probe-daemon")
    spool = session.file(1, "/var/probe/spool")

    day2 = EventFilter(window=TimeWindow(BASE_DAY + DAY, BASE_DAY + 2 * DAY))
    day3 = EventFilter(window=TimeWindow(BASE_DAY + 2 * DAY, BASE_DAY + 3 * DAY))
    store.scan(day2)
    store.scan(day3)

    # Commit a batch into day 2 only.
    for i in range(32):
        session.append(1, BASE_DAY + DAY + 100.0 + i, "write", host, spool)
    session.commit()

    hits_before = cache.hits
    misses_before = cache.misses
    fresh_day2 = store.scan(day2)
    warm_day3 = store.scan(day3)
    day2_recomputed = cache.misses > misses_before
    day3_hit_warm = cache.hits > hits_before
    saw_batch = any(e.subject_id == host.id for e in fresh_day2)
    ok = day2_recomputed and day3_hit_warm and saw_batch and warm_day3
    print(f"\npartition-scoped invalidation probe: "
          f"touched partition recomputed={day2_recomputed}, "
          f"batch visible={saw_batch}, "
          f"untouched partitions hit-warm={day3_hit_warm} "
          f"-> {'OK' if ok else 'FAIL'}")
    store.scan_cache = None
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the partition-scoped "
                             "invalidation probe passes")
    args = parser.parse_args(argv)

    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))
    results = []
    for use_cache in (False, True):
        for ingest_rate in INGEST_RATES:
            print(f"deploying fresh enterprise (rate={rate}) for "
                  f"ingest={ingest_rate} cache={'on' if use_cache else 'off'}"
                  f"...", file=sys.stderr)
            results.append(measure(rate, ingest_rate, use_cache))

    print(f"\n=== ingest-while-query: {BATCH_SIZE} queries, {JOBS} workers, "
          f"live ingest at 0/1k/10k ev/s ===")
    print(f"{'ingest/s':>8s} {'cache':>5s} {'wall s':>8s} {'q/s':>8s} "
          f"{'p95 ms':>8s} {'ingested':>9s} {'ev/s':>8s}  scan cache")
    for r in results:
        cs = r["cache_stats"]
        cache_col = (
            f"hits={cs['hits']} misses={cs['misses']} "
            f"inval={cs['invalidations']}" if cs else "-"
        )
        print(f"{r['ingest_rate']:8d} {'on' if r['cache'] else 'off':>5s} "
              f"{r['wall_s']:8.3f} {r['qps']:8.1f} {r['p95_ms']:8.1f} "
              f"{r['ingested']:9d} {r['achieved_ev_s']:8.0f}  {cache_col}")

    ok = partition_scoped_probe(rate)
    if args.check and not ok:
        print("FAIL: batch commit did not leave untouched partitions warm",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
