"""Shard fault-tolerance acceptance: recovery time, durability, degraded reads.

The ISSUE-9 acceptance benchmark (machine-readable output in
``BENCH_shard_recovery.json``).  Cells:

* **recovery** — SIGKILL one worker of a durable 4-shard deployment
  mid-corpus, then issue a scatter scan: the coordinator detects the
  dead pipe inline, quarantines, respawns (WAL replay + entity-registry
  replay) and re-gathers.  Time-to-recovery is the wall clock from the
  post-kill scan to its complete answer, reported against the healthy
  scan latency.  Recovery must be lossless (full row count, zero
  ``lost_events``, exactly one restart).
* **durability** — a seeded chaos plan (``kill@1:batch#2``) kills a
  worker mid-commit while every day-batch spans all four shards.  The
  failed batch must report a precise acked/failed split, its torn
  slices must never surface in any scan, and every *acknowledged* batch
  must survive a full deployment restart from disk: zero lost acked
  batches.
* **degraded** — a RAM-only deployment under ``shard_read_policy=
  "degraded"`` with a zero restart budget loses a worker for good:
  scans must answer with exactly the surviving shards' committed
  slices, and the completeness annotation must be *exact* — the missing
  shard id and a missed-row estimate equal to the victim's acked event
  count.

Acceptance gates (``--check`` exits nonzero):

* time-to-recovery under kill <= 5 s at the smoke rate (rate <= 60;
  at larger rates WAL replay grows with the corpus, so the timing gate
  is reported but not enforced — the lossless checks gate at every
  rate);
* zero lost acked batches across kill + restart;
* degraded-read annotations exact.

Run:  PYTHONPATH=src python benchmarks/bench_shard_recovery.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the corpus, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.model.time import DAY
from repro.shard import ShardCommitError, ShardedStore
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.workload.loader import build_enterprise

DAYS = 8
REPEATS = 5
SMOKE_RATE = 60  # the timing gate only enforces at/below this rate
RECOVERY_BUDGET_S = 5.0

# Agents drawn from four agent-groups (agents_per_group=10), so every
# day-batch routes slices to all four shards — multi-shard commits.
SPREAD_AGENTS = (1, 2, 11, 12, 21, 22, 31, 32)


def median_ms(runner) -> float:
    runner()  # warm caches once
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        runner()
        samples.append((time.perf_counter() - started) * 1000)
    return statistics.median(samples)


def _kill_worker(store: ShardedStore, shard: int) -> None:
    proc = store._procs[shard]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)


def _entities(ingestor: Ingestor, agents):
    return {
        agent: (
            ingestor.process(agent, 100, "bash"),
            ingestor.file(agent, f"/var/log/host{agent}.log"),
        )
        for agent in agents
    }


def _day_batch(ingestor, entities, day, per_agent=3):
    batch = []
    for agent, (shell, log) in entities.items():
        for i in range(per_agent):
            batch.append(
                ingestor.build_event(
                    agent,
                    day * DAY + 60.0 * agent + 10 * (i + 1),
                    "write",
                    shell,
                    log,
                    amount=64 * (i + 1),
                )
            )
    return batch


def bench_recovery(rate: int, root: Path) -> dict:
    """Kill a durable worker, time the inline heal-and-regather."""
    system = AIQLSystem(
        SystemConfig(
            shards=4,
            data_dir=str(root / "recovery"),
            wal_sync=False,
            compact_interval_s=3600,
            shard_heartbeat_interval_s=0,
        )
    )
    try:
        build_enterprise(
            stores=(),
            ingestor=system.ingestor,
            events_per_host_day=rate,
            days=DAYS,
            stream_batch_size=512,
        )
        total = len(system.store)
        flt = EventFilter()
        healthy_ms = median_ms(lambda: system.store.scan(flt))

        victim = 2
        _kill_worker(system.store, victim)
        started = time.perf_counter()
        rows = system.store.scan(flt)  # dead pipe -> inline recovery
        recovery_s = time.perf_counter() - started
        health = system.stats()["shard_health"]
        return {
            "events": total,
            "healthy_scan_ms": round(healthy_ms, 3),
            "recovery_s": round(recovery_s, 3),
            "rows_after_recovery": len(rows),
            "lossless": len(rows) == total,
            "restarts": health["restarts"],
            "lost_events": health["lost_events"],
            "failed_shards": health["failed_shards"],
        }
    finally:
        system.close()


def bench_durability(root: Path) -> dict:
    """Kill a worker mid-commit; acked batches must survive a restart."""
    data_dir = root / "durability"
    config = SystemConfig(
        shards=4,
        data_dir=str(data_dir),
        wal_sync=False,
        shard_chaos="kill@1:batch#2",
        shard_heartbeat_interval_s=0,
    )
    ingestor = Ingestor()
    store = ShardedStore(ingestor, config)
    ingestor.attach(store)
    entities = _entities(ingestor, SPREAD_AGENTS)
    committed, failed = [], None
    for day in range(DAYS):
        batch = _day_batch(ingestor, entities, day)
        try:
            ingestor.commit(batch)
            committed.append(batch)
        except ShardCommitError as exc:
            failed = (batch, exc)
    acked_ids = {e.event_id for batch in committed for e in batch}
    torn_ids = {e.event_id for e in failed[0]} if failed else set()
    scanned = {e.event_id for e in store.scan(EventFilter())}
    health = store.stats()["shard_health"]
    store.close()

    reopened = ShardedStore(
        Ingestor(),
        SystemConfig(
            shards=4,
            data_dir=str(data_dir),
            wal_sync=False,
            shard_heartbeat_interval_s=0,
        ),
    )
    try:
        survived = {e.event_id for e in reopened.scan(EventFilter())}
    finally:
        reopened.close()
    lost_batches = sum(
        1
        for batch in committed
        if any(e.event_id not in survived for e in batch)
    )
    return {
        "batches_committed": len(committed),
        "fault_fired": failed is not None,
        "failed_shards": list(failed[1].failed_shards) if failed else [],
        "acked_shards": list(failed[1].acked_shards) if failed else [],
        "restarts": health["restarts"],
        "torn_slices_hidden": not (scanned & torn_ids),
        "scan_is_exactly_acked": scanned == acked_ids,
        "lost_acked_batches": lost_batches,
        "lost_acked_events": len(acked_ids - survived),
    }


def bench_degraded() -> dict:
    """Lose a RAM-only worker for good; annotation must be exact."""
    config = SystemConfig(
        shards=4,
        shard_read_policy="degraded",
        shard_max_restarts=0,
        shard_heartbeat_interval_s=0,
    )
    ingestor = Ingestor()
    store = ShardedStore(ingestor, config)
    ingestor.attach(store)
    entities = _entities(ingestor, SPREAD_AGENTS)
    committed = []
    for day in range(4):
        batch = _day_batch(ingestor, entities, day)
        ingestor.commit(batch)
        committed.append(batch)
    try:
        victim = 2
        acked_before = store._shard_acked[victim]
        _kill_worker(store, victim)
        store.supervisor.check()  # quarantine; zero budget -> failed
        started = time.perf_counter()
        result = store.scan_columns(EventFilter())
        degraded_ms = (time.perf_counter() - started) * 1000
        rows = {e.event_id for e in result.events()}
        expected = {
            e.event_id
            for batch in committed
            for e in batch
            if store.shard_of(store.scheme.key_for(e.agent_id, e.start_time))
            != victim
        }
        note = result.completeness
        annotation_exact = (
            note is not None
            and note.missing_shards == (victim,)
            and note.estimated_missed_rows == acked_before
            and note.watermark == store._committed
        )
        return {
            "degraded_scan_ms": round(degraded_ms, 3),
            "rows": len(rows),
            "rows_exact": rows == expected,
            "victim_acked_events": acked_before,
            "annotation": note.to_dict() if note else None,
            "annotation_exact": annotation_exact,
        }
    finally:
        store.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_shard_recovery.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))

    root = Path(tempfile.mkdtemp(prefix="bench-shard-recovery-"))
    try:
        print(f"recovery cell at rate={rate}...", file=sys.stderr)
        recovery = bench_recovery(rate, root)
        print("durability cell...", file=sys.stderr)
        durability = bench_durability(root)
        print("degraded cell...", file=sys.stderr)
        degraded = bench_degraded()

        checks = {
            "recovery_lossless": (
                recovery["lossless"]
                and recovery["lost_events"] == 0
                and recovery["restarts"] == 1
                and recovery["failed_shards"] == []
            ),
            "durability_fault_fired": durability["fault_fired"],
            "durability_torn_slices_hidden": (
                durability["torn_slices_hidden"]
                and durability["scan_is_exactly_acked"]
            ),
            "durability_zero_lost_acked_batches": (
                durability["lost_acked_batches"] == 0
                and durability["lost_acked_events"] == 0
            ),
            "degraded_rows_exact": degraded["rows_exact"],
            "degraded_annotation_exact": degraded["annotation_exact"],
        }
        if rate <= SMOKE_RATE:
            # WAL replay time grows with the corpus, so the absolute
            # budget only gates at the smoke rate CI runs.
            checks["recovery_under_5s"] = (
                recovery["recovery_s"] <= RECOVERY_BUDGET_S
            )
        result = {
            "bench": "shard_recovery",
            "workload": {
                "rate": rate,
                "days": DAYS,
                "shards": 4,
                "recovery_budget_s": RECOVERY_BUDGET_S,
            },
            "recovery": recovery,
            "durability": durability,
            "degraded": degraded,
            "checks": checks,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        if args.check and not all(checks.values()):
            failed = sorted(k for k, v in checks.items() if not v)
            print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
