"""Pattern-count scaling (the Fig. 5 growth-shape claim, Sec. 6.2.2 obs. 3).

"All AIQL queries finish within 15 seconds, and the performance of the
queries grows linearly with the number of event patterns (rather than the
exponential growth in PostgreSQL and Neo4j)."

This bench constructs a family of chain queries with k = 1..7 event
patterns over the APT attack day (each k-query extends the (k-1)-query by
one pattern, like the iterative investigation does) and measures AIQL vs
the monolithic-join baseline at each k.  The reproduction target: AIQL's
time grows roughly linearly in k while the baseline grows super-linearly.

Run: ``pytest benchmarks/bench_scaling_patterns.py --benchmark-only``
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from benchmarks.conftest import compile_text
from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.executor import MultieventExecutor

# the c4 kill chain, one pattern per link (the paper's deepest chain)
_PATTERNS = [
    'proc ps["%sqlservr.exe"] start proc p0["%cmd.exe"] as evt1',
    'proc p0 write file f0["%dropper.vbs"] as evt2',
    'proc p0 start proc p1["%wscript.exe"] as evt3',
    "proc p1 read file f0 as evt4",
    'proc p1 write file f1["%sbblv.exe"] as evt5',
    'proc p1 start proc p2["%sbblv.exe"] as evt6',
    'proc p2 connect ip i1[dstip = "203.0.113.129"] as evt7',
]


def chain_query(k: int) -> str:
    patterns = _PATTERNS[:k]
    rels = ", ".join(f"evt{i} before evt{i + 1}" for i in range(1, k))
    lines = ['agentid = 3 (at "01/05/2017")'] + patterns
    if rels:
        lines.append(f"with {rels}")
    lines.append("return count distinct ps")
    return "\n".join(lines)


_RESULTS: dict = defaultdict(dict)


@pytest.mark.parametrize("k", range(1, 8))
@pytest.mark.parametrize("engine_name", ["aiql", "postgresql"])
def test_chain_scaling(benchmark, engines, enterprise, engine_name, k):
    ctx = compile_text(chain_query(k))
    if engine_name == "aiql":
        engine = MultieventExecutor(enterprise.store("partitioned"))
    else:
        engine = MonolithicJoinEngine(enterprise.store("flat"))
    result = benchmark.pedantic(lambda: engine.run(ctx), rounds=5, iterations=1)
    assert result.rows[0][0] >= 1
    # best-of-rounds: sub-millisecond AIQL timings are noise-dominated and
    # the growth-shape assertion needs the stable floor, not the mean
    _RESULTS[engine_name][k] = benchmark.stats["min"]


@pytest.mark.benchmark(group="summary")
def test_zz_scaling_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n=== pattern-count scaling (seconds per query) ===")
    print(f"{'k':>2s} {'AIQL':>10s} {'PostgreSQL':>12s} {'ratio':>7s}")
    for k in range(1, 8):
        aiql = _RESULTS["aiql"].get(k, 0.0)
        pg = _RESULTS["postgresql"].get(k, 0.0)
        ratio = pg / aiql if aiql else float("nan")
        print(f"{k:2d} {aiql:10.5f} {pg:12.5f} {ratio:7.1f}")
    # Shape assertions on absolute per-pattern slopes (relative growth from
    # a sub-millisecond base is noise): the baseline must pay far more per
    # added pattern, and AIQL's deepest chain must still be cheaper than
    # the baseline's single-pattern query.
    if _RESULTS["aiql"].get(1) and _RESULTS["postgresql"].get(1):
        aiql_slope = (_RESULTS["aiql"][7] - _RESULTS["aiql"][1]) / 6
        pg_slope = (_RESULTS["postgresql"][7] - _RESULTS["postgresql"][1]) / 6
        print(
            f"per-pattern slope: AIQL {aiql_slope * 1000:.3f} ms, "
            f"PostgreSQL {pg_slope * 1000:.3f} ms"
        )
        assert pg_slope > 5 * aiql_slope
        assert _RESULTS["aiql"][7] < _RESULTS["postgresql"][1]
