"""Tables 1-2: the data model schema, printed and timed at ingest scale.

Tables 1 and 2 of the paper are descriptive (the entity/event attribute
schema).  This module (a) prints both tables from the live data model so
EXPERIMENTS.md can quote them, and (b) benchmarks the ingest path — the
substrate those tables describe — end to end.
"""

from __future__ import annotations

from repro.model.entities import ATTRIBUTES_BY_TYPE, EntityType
from repro.model.events import EVENT_ATTRIBUTES, OPERATIONS_BY_OBJECT
from repro.storage.database import EventStore
from repro.storage.ingest import Ingestor
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import HOSTS


def test_table1_table2_schema(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n=== Table 1 (reproduced): entity attributes ===")
    for etype in EntityType:
        attrs = ", ".join(ATTRIBUTES_BY_TYPE[etype])
        print(f"{etype.value:6s} {attrs}")
    print("\n=== Table 2 (reproduced): event attributes ===")
    print(", ".join(EVENT_ATTRIBUTES))
    print("\noperations by object type:")
    for etype, ops in OPERATIONS_BY_OBJECT.items():
        print(f"  {etype.value:6s} {', '.join(sorted(o.value for o in ops))}")
    assert "exe_name" in ATTRIBUTES_BY_TYPE[EntityType.PROCESS]
    assert "optype" in EVENT_ATTRIBUTES


def test_ingest_throughput(benchmark):
    """Events/second through validation + partitioning + indexing."""

    def ingest_one_day() -> int:
        ingestor = Ingestor()
        store = EventStore(registry=ingestor.registry)
        ingestor.attach(store)
        config = GeneratorConfig(
            seed=7, hosts=HOSTS[:5], days=1, events_per_host_day=400
        )
        return BackgroundGenerator(ingestor, config).run()

    events = benchmark.pedantic(ingest_one_day, rounds=3, iterations=1)
    assert events > 1000
    rate = events / benchmark.stats["mean"]
    print(f"\ningest throughput: {rate:,.0f} events/s")
