"""Sharded scatter/gather scans vs the single-process store.

The ISSUE-7 acceptance benchmark (machine-readable output in
``BENCH_shard.json``).  Cells:

* **scatter_scan** — a LIKE+IN-heavy selective filter over non-indexed
  attributes (entity indexes off, so every shard pays the full compiled
  scan of its slice) at 1, 2 and 4 shards; speedups are 1-shard latency
  over N-shard latency.  Every cell asserts the gathered results are
  identical to the single-process reference on ALL FOUR backends.
* **multi_pattern** — an end-to-end APT-style investigation through the
  scheduler on a 2-shard deployment: join narrowing pushes the
  constrained re-query filters down to every shard.  Asserts identical
  rows to the single-process reference.
* **compacted** — the same scatter scan over a durable 2-shard
  deployment after compaction pushed most days into per-shard cold
  segments: the wire path over hot+cold merged results stays exact.

Scaling floor: >= 2.8x scan throughput from 1 to 4 shards, gated on
``rate >= 300`` AND ``os.cpu_count() >= 4`` — scatter/gather cannot beat
the GIL on fewer cores than shards, and the CI smoke rate is dominated
by fixed per-command overheads; the differential (identity) checks gate
at every rate and core count.

Run:  PYTHONPATH=src python benchmarks/bench_sharded_scan.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine import compile_query
from repro.engine.executor import MultieventExecutor
from repro.workload.loader import build_enterprise

DAYS = 20
RETENTION_DAYS = 2
REPEATS = 11
SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")

_USERS = '"u1", "u2", "u3", "u4", "u5", "root", "www-data"'

# LIKE + IN over cmd/user/owner: none of these attributes is hash-indexed,
# so the scatter scan is bound by each shard's compiled kernel over its
# whole slice — the case sharding parallelizes.
SELECTIVE_PATTERN = f"""
    proc p1[cmd = "%e%", user in ({_USERS})]
    write file f1[name = "%o%", owner in ({_USERS})] as evt1
    return distinct p1, f1
"""

MULTI_PATTERN = """
    agentid = 1
    proc p1[cmd = "%outlook%"] start proc p2[cmd = "%excel%"] as evt1
    proc p2 write file f1[owner in ("u1", "u2", "u3")] as evt2
    proc p2 start proc p3[cmd = "%payload%"] as evt3
    with evt1 before evt2, evt2 before evt3
    return distinct p1, p2, f1, p3
"""


def median_ms(runner) -> float:
    runner()  # warm caches once
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        runner()
        samples.append((time.perf_counter() - started) * 1000)
    return statistics.median(samples)


def by_time(events):
    return sorted(events, key=lambda e: (e.start_time, e.event_id))


def build_sharded(rate: int, shards: int, data_dir=None, retention=None):
    system = AIQLSystem(
        SystemConfig(
            shards=shards,
            data_dir=None if data_dir is None else str(data_dir),
            retention_days=retention,
            compact_interval_s=3600,  # compaction driven explicitly below
            wal_sync=False,  # population speed; durability benched elsewhere
        )
    )
    build_enterprise(
        stores=(),
        ingestor=system.ingestor,
        events_per_host_day=rate,
        days=DAYS,
        stream_batch_size=512,
    )
    return system


def bench_scatter_scan(sharded: dict, references: dict) -> dict:
    flt = compile_query(SELECTIVE_PATTERN).patterns[0].filter
    expected = None
    identical_backends = {}
    for backend in BACKENDS:
        rows = by_time(references[backend].scan(flt, use_entity_index=False))
        if expected is None:
            expected = rows
        identical_backends[backend] = rows == expected

    cells = {}
    base_ms = None
    for shards, system in sorted(sharded.items()):
        run = lambda: system.store.scan(flt, use_entity_index=False)  # noqa: E731
        rows = run()  # gathered results arrive already (t0, id)-sorted
        ms = median_ms(run)
        if shards == 1:
            base_ms = ms
        cells[f"shards_{shards}"] = {
            "median_ms": round(ms, 3),
            "rows": len(rows),
            "identical": rows == expected,
            "speedup_vs_1shard": round(base_ms / ms, 2) if base_ms else None,
        }
    cells["events_scanned"] = len(references["partitioned"])
    cells["reference_backends_agree"] = all(identical_backends.values())
    cells["identical_per_backend"] = identical_backends
    return cells


def bench_multi_pattern(system, reference) -> dict:
    ctx = compile_query(MULTI_PATTERN)
    expected = set(MultieventExecutor(reference).run(ctx).rows)
    executor = MultieventExecutor(system.store)
    run = lambda: executor.run(ctx)  # noqa: E731
    rows = set(run().rows)
    return {
        "median_ms": round(median_ms(run), 3),
        "rows": len(rows),
        "identical": rows == expected,
        "patterns": len(ctx.patterns),
    }


def bench_compacted(rate: int, root: Path, references: dict) -> dict:
    system = build_sharded(
        rate, 2, data_dir=root / "compacted", retention=RETENTION_DAYS
    )
    try:
        report = system.store.compact(retention_days=RETENTION_DAYS)
        flt = compile_query(SELECTIVE_PATTERN).patterns[0].filter
        expected = by_time(
            references["partitioned"].scan(flt, use_entity_index=False)
        )
        run = lambda: system.store.scan(flt, use_entity_index=False)  # noqa: E731
        rows = run()
        return {
            "median_ms": round(median_ms(run), 3),
            "events_migrated_cold": report.events_migrated,
            "rows": len(rows),
            "identical": rows == expected and report.moved,
        }
    finally:
        system.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_shard.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))
    cpu_count = os.cpu_count() or 1

    root = Path(tempfile.mkdtemp(prefix="bench-shard-"))
    sharded = {}
    try:
        print(f"building {DAYS}-day corpora at rate={rate}...", file=sys.stderr)
        references = build_enterprise(
            stores=BACKENDS, events_per_host_day=rate, days=DAYS
        ).stores
        for shards in SHARD_COUNTS:
            sharded[shards] = build_sharded(rate, shards)

        print("running cells...", file=sys.stderr)
        scatter = bench_scatter_scan(sharded, references)
        multi = bench_multi_pattern(sharded[2], references["partitioned"])
        compacted = bench_compacted(rate, root, references)

        speedup_2 = scatter["shards_2"]["speedup_vs_1shard"]
        speedup_4 = scatter["shards_4"]["speedup_vs_1shard"]
        checks = {
            "reference_backends_agree": scatter["reference_backends_agree"],
            "scatter_identical_all_shard_counts": all(
                scatter[f"shards_{n}"]["identical"] for n in SHARD_COUNTS
            ),
            "multi_pattern_identical": multi["identical"],
            "compacted_identical": compacted["identical"],
        }
        if rate >= 300 and cpu_count >= 4:
            # The scaling floor needs real cores to scale onto and a
            # workload big enough that per-command overheads amortize.
            checks["sharded_scan_2_8x"] = speedup_4 >= 2.8
        result = {
            "bench": "sharded_scan",
            "workload": {
                "rate": rate,
                "days": DAYS,
                "retention_days": RETENTION_DAYS,
                "events": len(references["partitioned"]),
                "cpu_count": cpu_count,
                "shard_counts": list(SHARD_COUNTS),
            },
            "scatter_scan": scatter,
            "speedup_1_to_2": speedup_2,
            "speedup_1_to_4": speedup_4,
            "multi_pattern": multi,
            "compacted": compacted,
            "checks": checks,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        if args.check and not all(checks.values()):
            failed = sorted(k for k, v in checks.items() if not v)
            print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
            return 1
        return 0
    finally:
        for system in sharded.values():
            system.close()
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
