"""Tiered storage: hot/cold/mixed latency, zone-map pruning, recovery time.

The ISSUE-3 acceptance benchmark, first entry in the repo's perf
trajectory (machine-readable output in ``BENCH_tier.json``):

* **10x larger-than-retention corpus** — a 20-day workload with a 2-day
  hot retention horizon: after compaction 90% of the data lives in
  compressed cold segments.
* **Hot-window latency** — queries whose window lies inside the retention
  horizon must stay within 10% of the plain (RAM-only) store's latency:
  the cold tier's only cost on that path is the zone-map prune loop.
* **Cold/mixed windows** — answer correctly through the compressed
  segments, with >= 80% of out-of-window cold segments pruned by zone
  maps without decompression (both asserted with ``--check``).
* **Recovery time vs WAL length** — crash-recover data dirs whose WALs
  hold growing batch counts, timing snapshotless replay.

Run:  PYTHONPATH=src python benchmarks/bench_tiered_storage.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine import compile_query
from repro.engine.executor import MultieventExecutor
from repro.workload.loader import build_enterprise

DAYS = 20
RETENTION_DAYS = 2  # hot tier holds 1/10th of the corpus
REPEATS = 21

# Windows relative to the 20-day corpus (2017-01-01 .. 2017-01-21):
# the last two days stay hot; everything earlier compacts cold.
QUERIES = {
    "hot": """
        (from "01/19/2017" to "01/21/2017")
        proc p1 write file f1 as evt1
        return distinct p1, f1 top 5
    """,
    "cold": """
        (from "01/02/2017" to "01/04/2017")
        proc p1 write file f1 as evt1
        return distinct p1, f1 top 5
    """,
    "mixed": """
        (from "01/12/2017" to "01/21/2017")
        proc p1 write file f1 as evt1
        return distinct p1, f1 top 5
    """,
}


def median_ms(runner) -> float:
    runner()  # warm caches/indexes once
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        runner()
        samples.append((time.perf_counter() - started) * 1000)
    return statistics.median(samples)


def build_baseline(rate: int):
    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=rate, days=DAYS
    )
    return enterprise.store("partitioned")


def build_tiered(rate: int, data_dir: Path) -> AIQLSystem:
    system = AIQLSystem(
        SystemConfig(
            data_dir=str(data_dir),
            retention_days=RETENTION_DAYS,
            compact_interval_s=3600,  # compaction driven explicitly below
            wal_sync=False,  # population speed; durability timed separately
        )
    )
    build_enterprise(
        stores=(),
        ingestor=system.ingestor,
        events_per_host_day=rate,
        days=DAYS,
        stream_batch_size=512,
    )
    return system


def measure_latencies(baseline_store, tiered_store) -> dict:
    """Median execution latency per window, plain store vs tiered."""
    out = {}
    for name, text in QUERIES.items():
        ctx = compile_query(text)
        base_rows = MultieventExecutor(baseline_store).run(ctx).rows
        base_ms = median_ms(lambda: MultieventExecutor(baseline_store).run(ctx))
        tier_rows = MultieventExecutor(tiered_store).run(ctx).rows
        tier_ms = median_ms(lambda: MultieventExecutor(tiered_store).run(ctx))
        out[name] = {
            "baseline_ms": round(base_ms, 3),
            "tiered_ms": round(tier_ms, 3),
            "ratio": round(tier_ms / base_ms, 3) if base_ms else None,
            "rows": len(tier_rows),
            "rows_match_baseline": set(tier_rows) == set(base_rows),
        }
    return out


def measure_prune_rate(tiered_store) -> dict:
    """Zone-map effectiveness for the hot-window query: every cold segment
    is out of window, so each one scanned is a pruning failure."""
    cold = tiered_store.cold
    cold.segments_considered = 0
    cold.segments_pruned = 0
    cold.segments_scanned = 0
    ctx = compile_query(QUERIES["hot"])
    MultieventExecutor(tiered_store).run(ctx)
    return {
        "segments": len(cold.zones),
        "considered": cold.segments_considered,
        "pruned": cold.segments_pruned,
        "scanned": cold.segments_scanned,
        "prune_rate": round(cold.prune_rate(), 4),
    }


def measure_recovery(root: Path, batch_counts=(50, 200, 800)) -> list:
    """Crash-recovery wall time as the WAL grows (no snapshot: pure replay)."""
    results = []
    for batches in batch_counts:
        data_dir = root / f"recover-{batches}"
        system = AIQLSystem(
            SystemConfig(data_dir=str(data_dir), compact_interval_s=3600)
        )
        proc = system.ingestor.process(1, 101, "streamer.exe")
        fobj = system.ingestor.file(1, "/var/log/stream.log")
        session = system.stream(batch_size=32)
        base = 1483228800.0
        for i in range(batches * 32):
            session.append(1, base + 30.0 * i, "write", proc, fobj)
        session.commit()
        wal_bytes = system._wal.size_bytes()
        total = system.ingestor.events_ingested
        del session, system  # crash: no close, no checkpoint

        started = time.perf_counter()
        recovered = AIQLSystem.recover(str(data_dir))
        seconds = time.perf_counter() - started
        ok = recovered.ingestor.events_ingested == total
        recovered.close()
        results.append(
            {
                "wal_batches": batches,
                "wal_events": total,
                "wal_bytes": wal_bytes,
                "recovery_s": round(seconds, 4),
                "events_per_s": round(total / seconds) if seconds else None,
                "lossless": ok,
            }
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_tier.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))

    root = Path(tempfile.mkdtemp(prefix="bench-tier-"))
    try:
        print(f"building {DAYS}-day corpus at rate={rate} "
              f"(retention {RETENTION_DAYS} day(s))...", file=sys.stderr)
        baseline = build_baseline(rate)
        tiered_system = build_tiered(rate, root / "data")
        total = tiered_system.ingestor.events_ingested

        report = tiered_system.compact()
        tiered_system.checkpoint()
        hot_events = len(tiered_system.store.hot)
        print(f"{total} events; {report.events_migrated} migrated into "
              f"{report.segments_written} segments, {hot_events} stay hot",
              file=sys.stderr)

        latencies = measure_latencies(baseline, tiered_system.store)
        prune = measure_prune_rate(tiered_system.store)
        recovery = measure_recovery(root)
        tiered_system.close()

        cold_stats = tiered_system.store.cold.stats()
        checks = {
            "hot_within_10pct": latencies["hot"]["ratio"] <= 1.10,
            "cold_correct": all(
                cell["rows_match_baseline"] for cell in latencies.values()
            ),
            "prune_rate_ge_80pct": prune["prune_rate"] >= 0.80,
            "recovery_lossless": all(r["lossless"] for r in recovery),
        }
        result = {
            "bench": "tiered_storage",
            "workload": {
                "rate": rate,
                "days": DAYS,
                "retention_days": RETENTION_DAYS,
                "events": total,
                "hot_events": hot_events,
                "cold_events": cold_stats["events"],
                "cold_bytes": cold_stats["bytes"],
                "cold_segments": cold_stats["segments"],
            },
            "latency": latencies,
            "zone_maps": prune,
            "recovery": recovery,
            "checks": checks,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        if args.check and not all(checks.values()):
            failed = sorted(k for k, v in checks.items() if not v)
            print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
