"""Concurrent query service: throughput/latency at 1/8/32 in-flight queries.

The ISSUE-1 acceptance benchmark: a batch of *identical-pattern* queries
(same event patterns, distinct ``top N`` so query-level dedup cannot
collapse them) is pushed through :class:`repro.service.QueryService` at
three concurrency levels, with the partition-scan cache on and off.  The
cache amortizes the per-partition scans across the batch, so cache-on
throughput at 8 concurrent queries must be >= 2x cache-off.

Run:  PYTHONPATH=src python benchmarks/bench_concurrent_service.py
      (add ``--check`` to exit nonzero if the 2x criterion fails;
      AIQL_BENCH_RATE scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from typing import List

from repro.service import QueryService, ScanCache, SharedExecutor

# Identical pattern, distinct text (the varying ``top N`` defeats
# query-level dedup but not the scan cache).  Deliberately scan-heavy: no
# entity predicates the attribute indexes could narrow, and a multi-day
# window, so every data query walks many partitions.
QUERY_TEMPLATE = """
    (from "01/02/2017" to "01/09/2017")
    proc p1 write file f1 as evt1[amount > 2000000]
    proc p2 read file f1 as evt2[amount > 2000000]
    with evt1 before evt2
    return distinct p1, f1, p2 top {n}
"""

CONCURRENCY_LEVELS = (1, 8, 32)
BATCH_SIZE = 32


def measure(store, concurrency: int, use_cache: bool) -> dict:
    store.scan_cache = ScanCache(max_entries=1024) if use_cache else None
    executor = SharedExecutor(max_workers=concurrency)
    service = QueryService(store, executor=executor)
    queries = [
        QUERY_TEMPLATE.format(n=100 + i) for i in range(BATCH_SIZE)
    ]
    latencies: List[float] = []
    started = time.perf_counter()
    futures = []
    for text in queries:
        t0 = time.perf_counter()
        future = service.submit(text)
        future.add_done_callback(
            lambda f, t0=t0: latencies.append(time.perf_counter() - t0)
        )
        futures.append(future)
    sizes = [len(f.result()) for f in futures]
    wall = time.perf_counter() - started
    # result() can return before the done-callback appended the last
    # latency sample; wait for the stragglers before computing stats.
    while len(latencies) < len(queries):
        time.sleep(0.001)
    executor.shutdown()
    cache_stats = store.scan_cache.stats() if use_cache else {}
    store.scan_cache = None
    # Identical patterns, differing only in top N: row counts must be the
    # shared total capped at each query's own limit.
    total = max(sizes)
    assert all(n == min(total, 100 + i) for i, n in enumerate(sizes)), sizes
    assert total > 0, "benchmark query returned no rows"
    return {
        "concurrency": concurrency,
        "cache": use_cache,
        "wall_s": wall,
        "qps": len(queries) / wall,
        "mean_ms": statistics.mean(latencies) * 1000,
        "p95_ms": sorted(latencies)[int(len(latencies) * 0.95) - 1] * 1000,
        "cache_stats": cache_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless cache-on >= 2x cache-off at "
                             "8 concurrent queries")
    args = parser.parse_args(argv)

    from repro.workload.loader import build_enterprise

    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))
    print(f"deploying enterprise (rate={rate})...", file=sys.stderr)
    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=rate
    )
    store = enterprise.store("partitioned")
    # Warm the entity-attribute LIKE caches once so both scenarios start
    # from the same index state.
    QueryService(store).run(QUERY_TEMPLATE.format(n=99))

    results = []
    for concurrency in CONCURRENCY_LEVELS:
        for use_cache in (False, True):
            results.append(measure(store, concurrency, use_cache))

    print(f"\n=== concurrent query service: {BATCH_SIZE} identical-pattern "
          f"queries ===")
    print(f"{'conc':>4s} {'cache':>5s} {'wall s':>8s} {'q/s':>8s} "
          f"{'mean ms':>8s} {'p95 ms':>8s}  scan cache")
    for r in results:
        cs = r["cache_stats"]
        cache_col = (
            f"hits={cs['hits']} misses={cs['misses']} "
            f"shared={cs['shared_waits']}" if cs else "-"
        )
        print(f"{r['concurrency']:4d} {'on' if r['cache'] else 'off':>5s} "
              f"{r['wall_s']:8.3f} {r['qps']:8.1f} {r['mean_ms']:8.1f} "
              f"{r['p95_ms']:8.1f}  {cache_col}")

    by_key = {(r["concurrency"], r["cache"]): r for r in results}
    speedup = by_key[(8, True)]["qps"] / by_key[(8, False)]["qps"]
    print(f"\ncache speedup at 8 concurrent queries: {speedup:.1f}x "
          f"(acceptance: >= 2x)")
    if args.check and speedup < 2.0:
        print("FAIL: below the 2x acceptance threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
