"""Compiled scan kernels: interpreted vs compiled filter evaluation.

The ISSUE-4 acceptance benchmark (machine-readable output in
``BENCH_scan.json``).  Four cells, every one asserting the compiled path
returns *byte-identical* results to the interpreted oracle:

* **single_pattern** — a LIKE+IN-heavy single-pattern filter over
  non-indexed attributes (the worst case for index narrowing: every
  candidate event pays the full match), scanned through the partitioned
  store with the entity indexes off.  Floor: >= 3x scan throughput.
* **multi_pattern** — an end-to-end APT-style investigation (parser ->
  scheduler -> constrained scans -> joins) whose patterns constrain
  non-indexed attributes, so data queries are scan-bound.  Floor: >= 1.5x.
* **columnar** — the ISSUE-6 cell: block-at-a-time kernel dispatch
  (``kernel.select`` over typed column blocks) vs the per-event compiled
  closures, both fully compiled, on the same single-pattern hot scan.
  Floor: >= 3x scan throughput over the closure path (and >= 5.5M
  events/s absolute at the default workload rate).
* **cold_only** — a cold-window query through the columnar cold path
  (structural prefilter on raw columns before any ``SystemEvent`` is
  materialized), with the per-segment result cache disabled so the cell
  measures the scan itself, not memoization.
* **mixed_window** — the BENCH_tier regression cell: a window spanning
  both tiers, tiered store vs the RAM-only baseline, with the shipped
  defaults (partition-scan cache + per-segment cold result cache).
  Floor: ratio <= 1.5x (down from 5.02x in BENCH_tier.json); the
  columnar refactor holds it <= 1.1x at the default rate.

Run:  PYTHONPATH=src python benchmarks/bench_scan_kernels.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine import compile_query
from repro.engine.executor import MultieventExecutor
from repro.storage.kernels import use_columnar, use_kernels
from repro.workload.loader import build_enterprise

DAYS = 20
RETENTION_DAYS = 2
REPEATS = 15

_USERS = '"u1", "u2", "u3", "u4", "u5", "root", "www-data"'

# LIKE + IN over cmd/user/owner: none of these attributes is hash-indexed,
# so every candidate event pays the full per-event match — the pure
# interpreted-vs-compiled comparison.
SINGLE_PATTERN = f"""
    proc p1[cmd = "%e%", user in ({_USERS})]
    write file f1[name = "%o%", owner in ({_USERS})] as evt1
    return distinct p1, f1
"""

# The paper's c2-4-style APT investigation on the attack host, expressed
# over non-indexed attributes (cmd/owner) so every unconstrained data query
# pays the full per-event match: phishing client spawns the macro host,
# which stages a file and launches the payload.  Joins ride p2's entity id
# (postings-list narrowings), keeping the cell scan-bound end to end.
MULTI_PATTERN = """
    agentid = 1
    proc p1[cmd = "%outlook%"] start proc p2[cmd = "%excel%"] as evt1
    proc p2 write file f1[owner in ("u1", "u2", "u3")] as evt2
    proc p2 start proc p3[cmd = "%payload%"] as evt3
    with evt1 before evt2, evt2 before evt3
    return distinct p1, p2, f1, p3
"""

# Windows relative to the 20-day corpus (2017-01-01 .. 2017-01-21): the
# last two days stay hot, everything earlier compacts cold.
COLD_WINDOW = '(from "01/02/2017" to "01/04/2017")'
MIXED_WINDOW = '(from "01/12/2017" to "01/21/2017")'

COLD_QUERY = f"""
    {COLD_WINDOW}
    proc p1 write file f1 as evt1
    return distinct p1, f1 top 5
"""

MIXED_QUERY = f"""
    {MIXED_WINDOW}
    proc p1 write file f1 as evt1
    return distinct p1, f1 top 5
"""


def median_ms(runner) -> float:
    runner()  # warm caches/indexes once
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        runner()
        samples.append((time.perf_counter() - started) * 1000)
    return statistics.median(samples)


def compare_modes(run_interpreted, run_compiled, rows_of) -> dict:
    """Median latency per mode + identical-results assertion material."""
    with use_kernels(False):
        interpreted_rows = rows_of(run_interpreted())
        interpreted_ms = median_ms(run_interpreted)
    with use_kernels(True):
        compiled_rows = rows_of(run_compiled())
        compiled_ms = median_ms(run_compiled)
    return {
        "interpreted_ms": round(interpreted_ms, 3),
        "compiled_ms": round(compiled_ms, 3),
        "speedup": round(interpreted_ms / compiled_ms, 2) if compiled_ms else None,
        "rows": len(compiled_rows),
        "identical": compiled_rows == interpreted_rows,
    }


def bench_single_pattern(store) -> dict:
    flt = compile_query(SINGLE_PATTERN).patterns[0].filter
    run = lambda: store.scan(flt, use_entity_index=False)  # noqa: E731
    cell = compare_modes(run, run, list)
    events = len(store)
    cell["events_scanned"] = events
    cell["interpreted_events_per_s"] = round(
        events / (cell["interpreted_ms"] / 1000)
    )
    cell["compiled_events_per_s"] = round(
        events / (cell["compiled_ms"] / 1000)
    )
    return cell


def bench_columnar(store) -> dict:
    """Block-at-a-time kernels vs per-event compiled closures.

    Both modes run fully compiled (``use_kernels(True)``); only the
    dispatch differs — ``use_columnar`` flips between one
    ``kernel.select`` call per column block and one closure call per
    materialized event.
    """
    flt = compile_query(SINGLE_PATTERN).patterns[0].filter
    run = lambda: store.scan(flt, use_entity_index=False)  # noqa: E731
    with use_kernels(True):
        with use_columnar(False):
            closure_rows = run()
            closure_ms = median_ms(run)
        with use_columnar(True):
            columnar_rows = run()
            columnar_ms = median_ms(run)
    events = len(store)
    return {
        "closure_ms": round(closure_ms, 3),
        "columnar_ms": round(columnar_ms, 3),
        "speedup": round(closure_ms / columnar_ms, 2) if columnar_ms else None,
        "rows": len(columnar_rows),
        "identical": columnar_rows == closure_rows,
        "events_scanned": events,
        "closure_events_per_s": round(events / (closure_ms / 1000)),
        "columnar_events_per_s": round(events / (columnar_ms / 1000)),
    }


def bench_multi_pattern(store) -> dict:
    ctx = compile_query(MULTI_PATTERN)
    executor = MultieventExecutor(store)
    run = lambda: executor.run(ctx)  # noqa: E731
    cell = compare_modes(run, run, lambda result: set(result.rows))
    cell["patterns"] = len(ctx.patterns)
    return cell


def bench_cold_only(tiered_store) -> dict:
    ctx = compile_query(COLD_QUERY)
    executor = MultieventExecutor(tiered_store)
    run = lambda: executor.run(ctx)  # noqa: E731
    return compare_modes(run, run, lambda result: set(result.rows))


def bench_mixed_window(baseline_store, tiered_store) -> dict:
    """BENCH_tier methodology: tiered vs RAM-only latency, kernels on."""
    ctx = compile_query(MIXED_QUERY)
    base_rows = set(MultieventExecutor(baseline_store).run(ctx).rows)
    base_ms = median_ms(lambda: MultieventExecutor(baseline_store).run(ctx))
    tier_rows = set(MultieventExecutor(tiered_store).run(ctx).rows)
    tier_ms = median_ms(lambda: MultieventExecutor(tiered_store).run(ctx))
    return {
        "baseline_ms": round(base_ms, 3),
        "tiered_ms": round(tier_ms, 3),
        "ratio": round(tier_ms / base_ms, 3) if base_ms else None,
        "rows": len(tier_rows),
        "identical": tier_rows == base_rows,
    }


def build_tiered(rate: int, data_dir: Path, cold_result_cache: int) -> AIQLSystem:
    system = AIQLSystem(
        SystemConfig(
            data_dir=str(data_dir),
            retention_days=RETENTION_DAYS,
            compact_interval_s=3600,  # compaction driven explicitly below
            wal_sync=False,  # population speed; durability benched elsewhere
            cold_scan_cache_entries=cold_result_cache,
        )
    )
    build_enterprise(
        stores=(),
        ingestor=system.ingestor,
        events_per_host_day=rate,
        days=DAYS,
        stream_batch_size=512,
    )
    system.compact()
    system.checkpoint()
    return system


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_scan.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))

    root = Path(tempfile.mkdtemp(prefix="bench-scan-"))
    try:
        print(f"building {DAYS}-day corpora at rate={rate}...", file=sys.stderr)
        baseline = build_enterprise(
            stores=("partitioned",), events_per_host_day=rate, days=DAYS
        ).store("partitioned")
        # Two tiered deployments: the cold-only cell measures the scan
        # path itself (per-segment result cache off); the mixed cell runs
        # the shipped defaults.
        uncached = build_tiered(rate, root / "uncached", cold_result_cache=0)
        shipped = build_tiered(rate, root / "shipped", cold_result_cache=128)

        print("running cells...", file=sys.stderr)
        single = bench_single_pattern(baseline)
        columnar = bench_columnar(baseline)
        multi = bench_multi_pattern(baseline)
        cold = bench_cold_only(uncached.store)
        mixed = bench_mixed_window(baseline, shipped.store)
        uncached.close()
        shipped.close()

        checks = {
            "single_pattern_3x": single["speedup"] >= 3.0,
            "columnar_3x": columnar["speedup"] >= 3.0,
            "multi_pattern_1_5x": multi["speedup"] >= 1.5,
            "mixed_window_1_5x": mixed["ratio"] <= 1.5,
            "results_identical": all(
                cell["identical"]
                for cell in (single, columnar, multi, cold, mixed)
            ),
        }
        if rate >= 300:
            # Absolute floors only hold on the full-size workload; the CI
            # perf-smoke runs a scaled-down rate where fixed overheads
            # (parse, result assembly) dominate the timings.
            checks["columnar_5_5m_events_per_s"] = (
                columnar["columnar_events_per_s"] >= 5_500_000
            )
            checks["mixed_window_1_1x"] = mixed["ratio"] <= 1.1
        result = {
            "bench": "scan_kernels",
            "workload": {
                "rate": rate,
                "days": DAYS,
                "retention_days": RETENTION_DAYS,
                "events": len(baseline),
            },
            "single_pattern": single,
            "columnar": columnar,
            "multi_pattern": multi,
            "cold_only": cold,
            "mixed_window": mixed,
            "checks": checks,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        if args.check and not all(checks.values()):
            failed = sorted(k for k, v in checks.items() if not v)
            print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
