"""Shared benchmark fixtures: a benchmark-scale deployment of Sec. 6.

The deployment is larger than the test-suite one (more background events)
so the cost asymmetries between scheduling strategies are visible, while
still finishing in minutes on a laptop.  Scale with ``AIQL_BENCH_RATE``
(background events per host-day, default 150).
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.graph import GraphEngine, GraphStore
from repro.baselines.mpp import aiql_parallel_engine, greenplum_engine
from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.dependency import compile_dependency
from repro.engine.executor import MultieventExecutor
from repro.lang.ast import DependencyQuery
from repro.lang.context import compile_multievent
from repro.lang.parser import parse
from repro.workload.loader import build_enterprise

BENCH_RATE = int(os.environ.get("AIQL_BENCH_RATE", "1000"))


def compile_text(text: str):
    tree = parse(text)
    if isinstance(tree, DependencyQuery):
        return compile_dependency(tree)
    return compile_multievent(tree)


@pytest.fixture(scope="session")
def enterprise():
    return build_enterprise(
        stores=(
            "partitioned",
            "flat",
            "segmented_domain",
            "segmented_arrival",
        ),
        events_per_host_day=BENCH_RATE,
    )


@pytest.fixture(scope="session")
def engines(enterprise):
    """Every engine of the evaluation, over identical data."""
    partitioned = enterprise.store("partitioned")
    flat = enterprise.store("flat")
    graph = GraphStore.from_events(enterprise.registry, iter(flat))
    return {
        # end-to-end systems (Table 3 / Fig. 5)
        "aiql": MultieventExecutor(partitioned, scheduling="relationship"),
        "aiql_anomaly": AnomalyExecutor(partitioned, scheduling="relationship"),
        "postgresql": MonolithicJoinEngine(flat),
        "neo4j": GraphEngine(graph),
        # scheduling-only comparison over the optimized store (Fig. 6)
        "postgresql_sched": MonolithicJoinEngine(partitioned),
        "aiql_ff": MultieventExecutor(partitioned, scheduling="fetch_filter"),
        "aiql_ff_anomaly": AnomalyExecutor(partitioned, scheduling="fetch_filter"),
        # parallel comparison (Fig. 7)
        "greenplum": greenplum_engine(enterprise.store("segmented_arrival")),
        "greenplum_anomaly": AnomalyExecutor(
            enterprise.store("segmented_arrival"),
            scheduling="fetch_filter",
            parallel=True,
        ),
        "aiql_parallel": aiql_parallel_engine(
            enterprise.store("segmented_domain")
        ),
        "aiql_parallel_anomaly": AnomalyExecutor(
            enterprise.store("segmented_domain"),
            scheduling="relationship",
            parallel=True,
        ),
    }


def prepare(engines, engine_name: str, query):
    """Compile once; return a zero-arg runner so benchmarks time execution
    only (parse + semantic analysis are sub-millisecond and not what the
    paper's Figs. 5-7 measure)."""
    ctx = compile_text(query.text)
    if ctx.kind == "anomaly":
        anomaly_map = {
            "aiql": "aiql_anomaly",
            "aiql_ff": "aiql_ff_anomaly",
            "postgresql_sched": "aiql_ff_anomaly",
            "aiql_parallel": "aiql_parallel_anomaly",
            "greenplum": "greenplum_anomaly",
        }
        engine = engines[anomaly_map.get(engine_name, engine_name)]
    else:
        engine = engines[engine_name]
    return lambda: engine.run(ctx)


def run_query(engines, engine_name: str, query):
    """Compile + execute one corpus query on the named engine."""
    return prepare(engines, engine_name, query)()
