"""Network service under open-loop load: throughput, overload, alerts.

The ISSUE-10 acceptance benchmark (machine-readable output in
``BENCH_serve.json``).  Three cells against a live sharded deployment
served by :class:`repro.server.AIQLServer`:

* **steady** — an open-loop fleet (:mod:`repro.workload.load`) drives a
  constant request rate of corpus queries at the HTTP endpoint for a
  fixed window.  Floors: sustain >= 90% of the target rate with
  coordinated-omission-free p99 under the budget and zero hard errors
  (429s count as shed, and the steady cell must not shed).
* **overload** — the same fleet at several times the server's capacity
  (``server_max_inflight`` pinned low).  Floors: the server sheds with
  429 + Retry-After instead of queueing without bound — a nonzero
  reject count, *bounded* p99 on the accepted requests, zero hard
  errors.
* **alerts** — a WebSocket listener holds a standing query while live
  ingest commits and the HTTP fleet runs.  Floors: alerts arrive and
  the server reports zero dropped alert pushes.

Run:  PYTHONPATH=src python benchmarks/bench_service_load.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the request rate, default 500 req/s)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro import api
from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.workload.live import LiveReplay
from repro.workload.load import AlertListener, run_fleet_sync
from repro.workload.loader import build_enterprise

STEADY_RATE_FRACTION = 0.90  # sustain >= 90% of the target
STEADY_P99_BUDGET_MS = 250.0
OVERLOAD_P99_BUDGET_MS = 2_000.0  # accepted requests stay bounded
DURATION_S = float(os.environ.get("AIQL_BENCH_DURATION", "10"))
SHARDS = int(os.environ.get("AIQL_BENCH_SHARDS", "2"))

# A small rotating set of cheap selective queries: the cell measures the
# *service* (admission, protocol, executor handoff), not cold scans —
# the in-flight dedup and scan caches keep the engine leg warm, which is
# exactly how a dashboard-style workload behaves.
QUERIES = (
    "agentid = 1\nproc p1 start proc p2\nreturn p1, p2",
    'agentid = 2\nproc p1["%cmd%"] start proc p2\nreturn p1, p2',
    "agentid = 3\nproc p1 read file f1 as evt1\nreturn p1, f1 top 5",
    'agentid = 1\nproc p1 write file f1["%.log"] as evt1\nreturn p1, f1',
)

WATCH_QUERY = "proc p1 write file f1 as evt1\nreturn p1, f1"


def _deploy(
    rate_per_host_day: int,
    max_inflight: int,
    queue_depth: int = 64,
    client_queue: int = 16,
) -> AIQLSystem:
    system = AIQLSystem(
        SystemConfig(
            shards=SHARDS,
            server_max_inflight=max_inflight,
            server_queue_depth=queue_depth,
            server_client_queue_depth=client_queue,
        )
    )
    build_enterprise(
        stores=(),
        ingestor=system.ingestor,
        events_per_host_day=rate_per_host_day,
    )
    return system


def bench_steady(handle, rate: float) -> dict:
    report = run_fleet_sync(
        handle.host,
        handle.port,
        rate=rate,
        duration_s=DURATION_S,
        queries=QUERIES,
        clients=8,
    )
    return report.to_dict()


def bench_overload(handle, rate: float, max_inflight: int) -> dict:
    report = run_fleet_sync(
        handle.host,
        handle.port,
        rate=rate,
        duration_s=DURATION_S,
        queries=QUERIES,
        clients=8,
    )
    out = report.to_dict()
    out["max_inflight"] = max_inflight
    return out


def bench_alerts(system, handle, rate: float) -> dict:
    listener = AlertListener(
        handle.host, handle.port, WATCH_QUERY, name="bench-watch"
    ).start()
    session = system.stream(batch_size=128)
    replay = LiveReplay(session, rate=5_000).start()
    fleet = run_fleet_sync(
        handle.host,
        handle.port,
        rate=rate,
        duration_s=DURATION_S,
        queries=QUERIES,
        clients=4,
    )
    ingest = replay.stop()
    deadline = time.time() + 10.0
    while not listener.alerts and time.time() < deadline:
        time.sleep(0.2)
    alerts = listener.stop()
    server_stats = handle.server.stats()
    latencies = sorted(
        a.latency_ms for a in alerts if a.latency_ms is not None
    )
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))] if latencies else None
    return {
        "alerts_received": len(alerts),
        "alerts_sent": server_stats["alerts_sent"],
        "alerts_dropped": server_stats["alerts_dropped"],
        "alert_latency_p99_ms": p99,
        "ingested_events": ingest.events,
        "concurrent_http": {
            "achieved_rate": fleet.to_dict()["achieved_rate"],
            "errors": fleet.errors,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()
    rate = float(os.environ.get("AIQL_BENCH_RATE", "500"))

    print(f"deploying {SHARDS}-shard system...", file=sys.stderr)
    system = _deploy(rate_per_host_day=40, max_inflight=8)
    handle = system.serve(port=0).start_background()
    try:
        print(f"steady cell at {rate} req/s for {DURATION_S}s...",
              file=sys.stderr)
        steady = bench_steady(handle, rate)

        print("alerts cell (WS listener + live ingest + HTTP load)...",
              file=sys.stderr)
        alerts = bench_alerts(system, handle, rate=max(rate / 5, 20.0))
    finally:
        handle.stop()
        system.close()

    # Overload runs against its own deployment with inflight pinned to 1
    # and a near-zero queue, at several times that capacity, so shedding
    # engages deterministically — the check is that excess arrivals get
    # 429s while *accepted* requests keep bounded latency.
    overload_rate = max(rate * 2, 400.0)
    print(f"overload cell (max_inflight=1, queue=2, {overload_rate} req/s)...",
          file=sys.stderr)
    system2 = _deploy(
        rate_per_host_day=40, max_inflight=1, queue_depth=2, client_queue=1
    )
    handle2 = system2.serve(port=0).start_background()
    try:
        overload = bench_overload(handle2, rate=overload_rate, max_inflight=1)
    finally:
        handle2.stop()
        system2.close()

    checks = {
        "steady_sustains_rate": (
            steady["achieved_rate"] >= STEADY_RATE_FRACTION * rate
        ),
        "steady_p99_bounded": (
            steady["latency_ms"]["p99"] <= STEADY_P99_BUDGET_MS
        ),
        "steady_no_shedding": steady["rejected"] == 0,
        "steady_no_errors": steady["errors"] == 0,
        "overload_sheds_429": overload["rejected"] > 0,
        "overload_accepted_p99_bounded": (
            overload["latency_ms"]["p99"] <= OVERLOAD_P99_BUDGET_MS
        ),
        "overload_no_errors": overload["errors"] == 0,
        "alerts_delivered": alerts["alerts_received"] > 0,
        "zero_dropped_alerts": alerts["alerts_dropped"] == 0,
    }
    result = {
        "bench": "service_load",
        "workload": {
            "rate": rate,
            "duration_s": DURATION_S,
            "shards": SHARDS,
            "schema_version": api.SCHEMA_VERSION,
        },
        "steady": steady,
        "overload": overload,
        "alerts": alerts,
        "checks": checks,
    }
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if args.check and not all(checks.values()):
        failed = sorted(k for k, v in checks.items() if not v)
        print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
