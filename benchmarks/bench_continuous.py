"""Continuous standing queries: push-through, alert latency, detection.

The ISSUE-5 acceptance benchmark (machine-readable output in
``BENCH_stream.json``).  Two cells:

* **push_throughput** — the full evaluation corpus is replayed through a
  :class:`~repro.service.continuous.ContinuousQueryEngine` carrying 8
  standing queries (a mix of one-, two- and three-pattern detections),
  in stream-sized batches.  Floor: >= 50k events/s sustained.
* **alert_latency** — :class:`~repro.workload.alerts.AlertReplay`
  streams a day of background noise with the paper's APT injected on
  top, through a live session with the detection queries standing.
  Floors: p99 batch-commit->alert latency <= 100 ms, zero missed
  ground-truth detections.

Run:  PYTHONPATH=src python benchmarks/bench_continuous.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.model.time import DAY
from repro.service.continuous import ContinuousQueryEngine
from repro.storage.filters import EventFilter
from repro.workload.alerts import WATCH_QUERIES, AlertReplay
from repro.workload.loader import build_enterprise
from repro.workload.topology import ATTACKER_IP

BATCH_SIZE = 512
THROUGHPUT_FLOOR = 50_000.0  # events/s with 8 standing queries
LATENCY_P99_FLOOR_MS = 100.0

# Five more standing detections on top of the three ground-truth watch
# queries of workload.alerts: eight total, mixing selectivities and
# pattern counts so the push path pays realistic kernel + join costs.
EXTRA_QUERIES = (
    (
        "webshell-write",
        """
        proc p1["%apache%"] write file f1["%.php"] as evt1
        return p1, f1
        """,
    ),
    (
        "mail-backdoor",
        """
        proc p1["%outlook%"] connect ip i1[dstport = 4444] as evt1
        return p1, i1
        """,
    ),
    (
        "attacker-contact",
        f"""
        proc p1 connect ip i1[dstip = "{ATTACKER_IP}"] as evt1
        return p1, i1
        """,
    ),
    (
        "sam-read",
        """
        proc p1 read file f1["%SAM"] as evt1
        return p1, f1
        """,
    ),
    (
        "dropper-chain",
        """
        proc p1["%cmd%"] write file f1["%.vbs"] as evt1
        proc p2["%wscript%"] read file f1 as evt2
        proc p2 start proc p3 as evt3
        with evt1 before evt2, evt2 before evt3
        return p1, f1, p2, p3
        """,
    ),
)


def bench_push_throughput(enterprise) -> dict:
    """Replay the corpus through an engine with 8 standing queries."""
    # Replay in data-time order (the loader appends the attack scenarios
    # after all background days, so id order would push them pre-expired).
    events = sorted(
        enterprise.store("partitioned").scan(EventFilter()),
        key=lambda e: (e.start_time, e.event_id),
    )
    # One-day horizon (matching AlertReplay): the corpus compresses a day
    # of data time into a couple of batches, so an hour-scale horizon
    # would expire a batch's own matches before they could pair.
    engine = ContinuousQueryEngine(
        enterprise.registry, default_window_s=DAY
    )
    for query in WATCH_QUERIES:
        engine.subscribe(query.text, name=query.name)
    for name, text in EXTRA_QUERIES:
        engine.subscribe(text, name=name)

    started = time.perf_counter()
    for lo in range(0, len(events), BATCH_SIZE):
        engine.push(events[lo : lo + BATCH_SIZE])
    wall = time.perf_counter() - started
    stats = engine.stats()
    return {
        "events": len(events),
        "standing_queries": len(engine.subscriptions),
        "batches": stats["batches_pushed"],
        "wall_s": round(wall, 3),
        "events_per_s": round(len(events) / wall) if wall else None,
        "alerts": sum(s["alerts_emitted"] for s in stats["per_query"]),
        "window_events": sum(
            sum(s["window_sizes"]) for s in stats["per_query"]
        ),
    }


def bench_alert_latency(rate: int) -> dict:
    """One live day (noise + APT) against the standing detections."""
    system = AIQLSystem(SystemConfig())
    score = AlertReplay(system, events_per_host_day=rate).run()
    return score.to_dict()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_stream.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))

    print(f"building corpus at rate={rate}...", file=sys.stderr)
    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=rate
    )

    print("running cells...", file=sys.stderr)
    throughput = bench_push_throughput(enterprise)
    latency = bench_alert_latency(rate)

    checks = {
        "push_50k_events_per_s": (
            throughput["events_per_s"] is not None
            and throughput["events_per_s"] >= THROUGHPUT_FLOOR
        ),
        "alert_p99_under_100ms": (
            latency["latency_p99_ms"] is not None
            and latency["latency_p99_ms"] <= LATENCY_P99_FLOOR_MS
        ),
        "zero_missed_detections": latency["missed"] == [],
    }
    result = {
        "bench": "continuous",
        "workload": {"rate": rate, "events": throughput["events"]},
        "push_throughput": throughput,
        "alert_latency": latency,
        "checks": checks,
    }
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if args.check and not all(checks.values()):
        failed = sorted(k for k, v in checks.items() if not v)
        print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
