"""Fig. 7: scheduling comparison on parallel (MPP) storage.

The 19 performance queries over the 5-segment store: *Greenplum
scheduling* (monolithic hash-join plan over arrival-order-distributed
segments, every scan touching the whole fleet) vs *AIQL* (relationship
scheduling over the semantics-aware (agent, day) distribution, with
segment pruning and parallel scans).  The paper reports a 16x average
speedup and near-parity on the cheap queries.

Run: ``pytest benchmarks/bench_fig7_scheduling_greenplum.py --benchmark-only``
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from benchmarks.conftest import prepare
from repro.workload.corpus import PERFORMANCE_QUERIES

ENGINES = ("greenplum", "aiql_parallel")
_RESULTS: dict = defaultdict(dict)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("query", PERFORMANCE_QUERIES, ids=lambda q: q.qid)
def test_parallel_scheduling(benchmark, engines, engine, query):
    runner = prepare(engines, engine, query)
    result = benchmark.pedantic(runner, rounds=2, iterations=1)
    assert len(result) >= query.min_rows
    _RESULTS[engine][query.qid] = benchmark.stats["mean"]


@pytest.mark.benchmark(group="summary")
def test_zz_fig7_summary(benchmark, enterprise):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n=== Fig. 7 (reproduced): parallel scheduling, seconds ===")
    print(f"{'query':6s} {'Greenplum':>10s} {'AIQL':>9s} {'ratio':>7s}")
    totals = defaultdict(float)
    ratios = []
    for query in PERFORMANCE_QUERIES:
        gp = _RESULTS["greenplum"].get(query.qid, 0.0)
        aiql = _RESULTS["aiql_parallel"].get(query.qid, 0.0)
        ratio = gp / aiql if aiql else float("nan")
        ratios.append(ratio)
        print(f"{query.qid:6s} {gp:10.4f} {aiql:9.4f} {ratio:7.1f}")
        totals["greenplum"] += gp
        totals["aiql"] += aiql
    print(
        f"{'total':6s} {totals['greenplum']:10.4f} {totals['aiql']:9.4f}"
    )
    avg = sum(r for r in ratios if r == r) / len(ratios)
    print(f"average speedup over Greenplum scheduling: {avg:.1f}x (paper: 16x)")
    print(
        "segment skew — domain: "
        f"{enterprise.store('segmented_domain').skew():.3f}, arrival: "
        f"{enterprise.store('segmented_arrival').skew():.3f}"
    )
    assert totals["aiql"] < totals["greenplum"]
