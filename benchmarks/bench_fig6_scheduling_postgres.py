"""Fig. 6: scheduling comparison on single-node storage.

The 19 performance queries (a1-a5, d1-d3, v1-v5, s1-s6) executed with three
scheduling strategies over the *same optimized storage* (Sec. 6.3.2 rules
out the storage speedup on purpose):

* PostgreSQL scheduling — the monolithic written-order join;
* AIQL FF — fetch-and-filter (19x over PostgreSQL in the paper);
* AIQL — relationship-based scheduling (40x in the paper).

Run: ``pytest benchmarks/bench_fig6_scheduling_postgres.py --benchmark-only``
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from benchmarks.conftest import prepare
from repro.workload.corpus import PERFORMANCE_QUERIES

ENGINES = ("postgresql_sched", "aiql_ff", "aiql")
_RESULTS: dict = defaultdict(dict)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("query", PERFORMANCE_QUERIES, ids=lambda q: q.qid)
def test_scheduling(benchmark, engines, engine, query):
    runner = prepare(engines, engine, query)
    result = benchmark.pedantic(runner, rounds=2, iterations=1)
    assert len(result) >= query.min_rows
    _RESULTS[engine][query.qid] = benchmark.stats["mean"]


@pytest.mark.benchmark(group="summary")
def test_zz_fig6_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n=== Fig. 6 (reproduced): single-node scheduling, seconds ===")
    print(f"{'query':6s} {'PostgreSQL':>11s} {'AIQL FF':>9s} {'AIQL':>9s}")
    totals = defaultdict(float)
    for query in PERFORMANCE_QUERIES:
        row = [_RESULTS[e].get(query.qid, 0.0) for e in ENGINES]
        print(f"{query.qid:6s} {row[0]:11.4f} {row[1]:9.4f} {row[2]:9.4f}")
        for engine, value in zip(ENGINES, row):
            totals[engine] += value
    pg, ff, aiql = (totals[e] for e in ENGINES)
    print(f"{'total':6s} {pg:11.4f} {ff:9.4f} {aiql:9.4f}")
    if aiql > 0 and ff > 0:
        print(f"AIQL FF speedup over PostgreSQL scheduling: {pg / ff:.1f}x "
              f"(paper: 19x)")
        print(f"AIQL speedup over PostgreSQL scheduling:    {pg / aiql:.1f}x "
              f"(paper: 40x)")
    # shape: FF between PostgreSQL and relationship-based scheduling
    assert aiql <= ff <= pg or aiql < pg  # FF may tie AIQL on tiny queries
    assert aiql < pg
