"""Observability overhead: metrics + tracing cost on the hot query path.

The ISSUE-8 acceptance benchmark (machine-readable output in
``BENCH_obs.json``).  Cells, all over the APT-style multi-pattern
investigation from the scan-kernel bench:

* **query_disabled** — metrics off, no trace: the baseline every other
  cell is measured against (instrumentation guards still present).
* **query_metrics**  — metrics registry enabled.
* **query_traced**   — metrics enabled *and* the query runs under an
  active span tree (the EXPLAIN ANALYZE path).
* **ingest** — live-stream commit throughput with metrics on vs off.
* **disabled_guard_model** — there is no uninstrumented build to diff
  against, so the "disabled" overhead is modeled directly: the per-call
  cost of a disabled counter/trace hook is micro-benchmarked, multiplied
  by a generous estimate of hook executions per query, and compared to
  the measured workload latency.

The query cells run a mixed investigation workload per sample — one
broad triage sweep plus several highly selective APT-pattern queries —
because that is what the engine serves in practice and because a pure
sub-millisecond point query would measure the fixed ~tens-of-µs
per-query span/counter cost against almost no work.  Cells are sampled
in interleaved rounds (off/metrics/traced per round) and compared on
min-of-rounds, the standard low-noise estimator for CPU-bound cells.

Acceptance (``--check``): enabled overhead (metrics, and metrics+trace)
<= 5% of the disabled baseline on the mixed workload; the modeled
disabled-guard cost <= 1%.

Run:  PYTHONPATH=src python benchmarks/bench_observability.py
      (``--check`` exits nonzero on acceptance failures; AIQL_BENCH_RATE
      scales the workload, default 300 events/host-day)
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine import compile_query
from repro.engine.executor import MultieventExecutor
from repro.obs import REGISTRY, Trace, set_metrics_enabled
from repro.obs.trace import activate
from repro.workload.loader import build_enterprise

ROUNDS = 25
SELECTIVE_PER_SAMPLE = 5
GUARD_CALLS = 200_000

# Same APT-style investigation bench_scan_kernels.py uses: scan-bound
# multi-pattern scheduling with narrowed re-queries and joins — the path
# carrying the densest instrumentation.
MULTI_PATTERN = """
    agentid = 1
    proc p1[cmd = "%outlook%"] start proc p2[cmd = "%excel%"] as evt1
    proc p2 write file f1[owner in ("u1", "u2", "u3")] as evt2
    proc p2 start proc p3[cmd = "%payload%"] as evt3
    with evt1 before evt2, evt2 before evt3
    return distinct p1, p2, f1, p3
"""

# Broad triage sweep: unconstrained patterns defeat both pruning and the
# entity index, so every partition's columns are scanned and thousands
# of rows materialize — the scan/materialize-bound end of the workload.
SWEEP = """
    proc p1 write file f1 as e1
    return distinct p1, f1
"""


def bench_query_cells(store) -> dict:
    apt = compile_query(MULTI_PATTERN)
    sweep = compile_query(SWEEP)
    executor = MultieventExecutor(store)

    def workload():
        executor.run(sweep)
        for _ in range(SELECTIVE_PER_SAMPLE):
            executor.run(apt)

    def workload_traced():
        with activate(Trace("query")):
            executor.run(sweep)
        for _ in range(SELECTIVE_PER_SAMPLE):
            with activate(Trace("query")):
                executor.run(apt)

    def sample(runner, metrics: bool) -> float:
        set_metrics_enabled(metrics)
        started = time.perf_counter()
        runner()
        return (time.perf_counter() - started) * 1000

    cells = [
        ("query_disabled", workload, False),
        ("query_metrics", workload, True),
        ("query_traced", workload_traced, True),
    ]
    for _, runner, metrics in cells:  # warm caches/kernels once per cell
        sample(runner, metrics)
    samples: dict = {name: [] for name, _, _ in cells}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()  # GC pauses otherwise dominate cell-to-cell deltas
    try:
        for round_no in range(ROUNDS):
            # Interleave cells and rotate their order every round so any
            # systematic drift (thermal, frequency) hits all cells equally.
            start = round_no % len(cells)
            for name, runner, metrics in cells[start:] + cells[:start]:
                samples[name].append(sample(runner, metrics))
    finally:
        if gc_was_enabled:
            gc.enable()
        set_metrics_enabled(True)

    mins = {name: min(values) for name, values in samples.items()}
    rows_plain = set(executor.run(apt).rows)
    with activate(Trace("query")):
        rows_traced = set(executor.run(apt).rows)

    out: dict = {
        name: {
            "min_ms": round(min(values), 4),
            "median_ms": round(statistics.median(values), 4),
        }
        for name, values in samples.items()
    }
    out["metrics_overhead"] = round(
        mins["query_metrics"] / mins["query_disabled"], 4
    )
    out["traced_overhead"] = round(
        mins["query_traced"] / mins["query_disabled"], 4
    )
    out["identical"] = rows_traced == rows_plain
    return out


def bench_ingest(rate: int) -> dict:
    """Live-stream commit throughput, metrics on vs off."""

    def throughput() -> float:
        system = AIQLSystem(SystemConfig())
        try:
            started = time.perf_counter()
            build_enterprise(
                stores=(),
                ingestor=system.ingestor,
                events_per_host_day=rate,
                days=4,
                stream_batch_size=256,
            )
            elapsed = time.perf_counter() - started
            return system.ingestor.events_ingested / elapsed
        finally:
            system.close()

    set_metrics_enabled(False)
    off = throughput()
    set_metrics_enabled(True)
    on = throughput()
    return {
        "events_per_s_disabled": round(off),
        "events_per_s_metrics": round(on),
        "ratio": round(off / on, 4) if on else None,
    }


def bench_disabled_guard_model(store, workload_ms: float) -> dict:
    """Model the cost of disabled instrumentation on one workload sample.

    Every disabled metric mutation is one flag check; every disabled
    trace hook is one ``ContextVar.get``.  The per-call cost of both is
    micro-benchmarked, and the number of hook executions one workload
    sample actually performs is *counted* (``sys.setprofile`` over one
    disabled run, tallying calls into ``repro/obs`` code).  Their product
    is the disabled overhead the 1% gate holds against the measured
    workload latency.
    """
    set_metrics_enabled(False)
    counter = REGISTRY.counter("aiql_bench_guard_probe_total", "probe")
    started = time.perf_counter()
    for _ in range(GUARD_CALLS):
        counter.inc()
    guard_ns = (time.perf_counter() - started) / GUARD_CALLS * 1e9

    from repro.obs.trace import trace_add

    started = time.perf_counter()
    for _ in range(GUARD_CALLS):
        trace_add("probe")
    hook_ns = (time.perf_counter() - started) / GUARD_CALLS * 1e9

    # Count disabled hook executions in one workload sample.
    apt = compile_query(MULTI_PATTERN)
    sweep = compile_query(SWEEP)
    executor = MultieventExecutor(store)
    hook_calls = 0
    marker = os.path.join("repro", "obs") + os.sep

    def profiler(frame, event, arg):  # noqa: ANN001 - sys.setprofile hook
        nonlocal hook_calls
        if event == "call" and marker in frame.f_code.co_filename:
            hook_calls += 1

    sys.setprofile(profiler)
    try:
        executor.run(sweep)
        for _ in range(SELECTIVE_PER_SAMPLE):
            executor.run(apt)
    finally:
        sys.setprofile(None)
    set_metrics_enabled(True)

    modeled_ms = hook_calls * max(guard_ns, hook_ns) / 1e6
    return {
        "guard_ns_per_call": round(guard_ns, 1),
        "trace_hook_ns_per_call": round(hook_ns, 1),
        "hooks_per_sample": hook_calls,
        "modeled_ms_per_sample": round(modeled_ms, 5),
        "fraction_of_workload": (
            round(modeled_ms / workload_ms, 5) if workload_ms else None
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if acceptance criteria fail")
    parser.add_argument("--output", default="BENCH_obs.json")
    args = parser.parse_args()
    rate = int(os.environ.get("AIQL_BENCH_RATE", "300"))

    print(f"building corpus at rate={rate}...", file=sys.stderr)
    system = AIQLSystem(SystemConfig())
    build_enterprise(stores=(), ingestor=system.ingestor,
                     events_per_host_day=rate)
    try:
        print("running query cells...", file=sys.stderr)
        query = bench_query_cells(system.store)
        print("running ingest cell...", file=sys.stderr)
        ingest = bench_ingest(rate)
        model = bench_disabled_guard_model(
            system.store, query["query_disabled"]["min_ms"]
        )

        checks = {
            "metrics_overhead_5pct": query["metrics_overhead"] <= 1.05,
            "traced_overhead_5pct": query["traced_overhead"] <= 1.05,
            "disabled_guard_1pct": model["fraction_of_workload"] <= 0.01,
            "results_identical": query["identical"],
        }
        result = {
            "bench": "observability",
            "workload": {"rate": rate, "events": len(system.store)},
            "query": query,
            "ingest": ingest,
            "disabled_guard_model": model,
            "checks": checks,
        }
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        if args.check and not all(checks.values()):
            failed = sorted(k for k, v in checks.items() if not v)
            print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
            return 1
        return 0
    finally:
        system.close()
        set_metrics_enabled(True)


if __name__ == "__main__":
    sys.exit(main())
