"""The error taxonomy: every public failure maps to its documented code."""

import pytest

from repro import api
from repro.api.schema import SchemaError
from repro.lang.errors import AIQLError, AIQLSemanticError, AIQLSyntaxError
from repro.server.admission import Overloaded
from repro.service.continuous import ContinuousError
from repro.shard.coordinator import ShardCommitError, ShardError, ShardTimeout


class TestClassify:
    CASES = [
        (AIQLSyntaxError("bad token", line=2, column=5), "aiql.syntax", 400, False),
        (AIQLSemanticError("unknown entity", hint="try proc"), "aiql.semantic", 400, False),
        (AIQLError("odd"), "aiql.invalid", 400, False),
        (SchemaError("bad payload"), "request.invalid", 400, False),
        (ContinuousError("too many"), "aiql.subscription", 400, False),
        (Overloaded("full", retry_after_s=0.5), "server.overloaded", 429, True),
        (ShardTimeout("slow shard"), "shard.timeout", 503, True),
        (
            ShardCommitError("half", acked_shards=[0], failed_shards=[1]),
            "shard.commit_failed",
            503,
            True,
        ),
        (ShardError("gone"), "shard.unavailable", 503, True),
        (RuntimeError("boom"), "server.internal", 500, False),
    ]

    @pytest.mark.parametrize(
        "exc,code,status,retryable", CASES, ids=[c[1] for c in CASES]
    )
    def test_mapping_is_stable(self, exc, code, status, retryable):
        env = api.classify(exc)
        assert env.code == code
        assert env.http_status == status
        assert env.retryable is retryable
        assert str(exc) in env.message or env.message

    def test_syntax_location_in_detail(self):
        env = api.classify(AIQLSyntaxError("bad", line=3, column=7))
        assert env.detail["line"] == 3 and env.detail["column"] == 7

    def test_semantic_hint_in_detail(self):
        env = api.classify(AIQLSemanticError("x", hint="use proc"))
        assert env.detail["hint"] == "use proc"

    def test_overloaded_carries_retry_after(self):
        env = api.classify(Overloaded("full", retry_after_s=1.5))
        assert env.retry_after_s == 1.5

    def test_commit_failure_names_the_shards(self):
        env = api.classify(
            ShardCommitError("half", acked_shards=[0, 2], failed_shards=[1])
        )
        assert env.detail["acked_shards"] == (0, 2)
        assert env.detail["failed_shards"] == (1,)

    def test_envelope_round_trips_the_wire(self):
        env = api.classify(Overloaded("full", retry_after_s=0.25))
        assert api.from_json(env.to_json()) == env


class TestRendering:
    def test_render_names_the_code(self):
        env = api.envelope(api.Code.SYNTAX, "syntax error at line 1")
        text = api.render(env)
        assert text.startswith("error[aiql.syntax]:")
        assert "syntax error" in text

    def test_render_mentions_retry_after(self):
        env = api.envelope(api.Code.OVERLOADED, "full", retry_after_s=2.0)
        assert "retry after 2.0s" in api.render(env)

    def test_exit_codes(self):
        assert api.exit_code(api.envelope(api.Code.SYNTAX, "x")) == 1
        assert api.exit_code(api.envelope(api.Code.REQUEST_INVALID, "x")) == 2
        assert api.exit_code(api.envelope(api.Code.NOT_FOUND, "x")) == 2
        assert api.exit_code(api.envelope(api.Code.SHARD_TIMEOUT, "x")) == 1


class TestEnvelopeBuilder:
    def test_unknown_code_defaults_to_500(self):
        assert api.envelope("future.code", "x").http_status == 500

    def test_none_detail_values_dropped(self):
        env = api.envelope(api.Code.SYNTAX, "x", line=None, column=3)
        assert "line" not in env.detail and env.detail["column"] == 3
