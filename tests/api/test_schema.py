"""The versioned wire schema: codecs, version gating, constructors."""

import json

import pytest

from repro import api
from repro.api.schema import _jsonable
from repro.engine.result import ResultSet


class TestRoundTrips:
    MESSAGES = [
        api.QueryRequest(text="proc p read file f\nreturn p"),
        api.QueryRequest(text="q", client_id="c-1", page_rows=7),
        api.QueryPage(
            columns=("p1", "p2"),
            rows=(("bash[42]", "vim[7]"), ("a", "b")),
            page=0,
            total_rows=2,
            last=True,
            meta={"elapsed_ms": 1.25},
        ),
        api.SubscribeRequest(query="proc p read file f\nreturn p", name="w"),
        api.SubscribeAck(name="w", patterns=2, window_s=3600.0),
        api.UnsubscribeRequest(name="w"),
        api.AlertMessage(
            subscription="w",
            query="q",
            key=(3, 9),
            time=1234.5,
            latency_ms=0.7,
            events=({"id": 3, "agent": 1, "op": "read"},),
        ),
        api.ErrorEnvelope(
            code="aiql.syntax",
            message="syntax error",
            http_status=400,
            retryable=False,
            detail={"line": 2},
        ),
        api.StatsPayload(stats={"events": 10}, metrics={"c": 1}),
        api.HealthPayload(),
        api.ExplainReportPayload(
            query="q", kind="multievent", plan=("kind: multievent",), rows=3
        ),
    ]

    @pytest.mark.parametrize(
        "message", MESSAGES, ids=[m.TYPE for m in MESSAGES]
    )
    def test_json_round_trip_is_identity(self, message):
        assert api.from_json(message.to_json()) == message

    def test_payload_carries_version_and_type(self):
        payload = api.HealthPayload().to_payload()
        assert payload["v"] == api.SCHEMA_VERSION
        assert payload["type"] == "health"


class TestVersionGating:
    def test_newer_version_rejected(self):
        payload = api.HealthPayload().to_payload()
        payload["v"] = api.SCHEMA_VERSION + 1
        with pytest.raises(api.SchemaError, match="newer"):
            api.from_payload(payload)

    def test_missing_version_rejected(self):
        payload = api.HealthPayload().to_payload()
        del payload["v"]
        with pytest.raises(api.SchemaError, match="schema version"):
            api.from_payload(payload)

    def test_unknown_type_rejected(self):
        with pytest.raises(api.SchemaError, match="unknown wire message"):
            api.from_payload({"v": 1, "type": "nope"})

    def test_unknown_fields_ignored_for_forward_compat(self):
        # Additive optional fields keep the version: an old client must
        # decode a payload carrying fields it does not know.
        payload = api.HealthPayload().to_payload()
        payload["shiny_new_field"] = 42
        assert api.from_payload(payload) == api.HealthPayload()

    def test_missing_required_field_rejected(self):
        with pytest.raises(api.SchemaError):
            api.from_payload({"v": 1, "type": "query_request"})

    def test_not_json_rejected(self):
        with pytest.raises(api.SchemaError, match="not JSON"):
            api.from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(api.SchemaError, match="object"):
            api.from_json("[1, 2]")


class TestWireValue:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert api.wire_value(value) == value

    def test_lists_normalize_to_tuples(self):
        assert api.wire_value([1, [2, 3]]) == (1, (2, 3))

    def test_non_scalars_coerce_to_str(self):
        class Odd:
            def __str__(self):
                return "odd"

        assert api.wire_value(Odd()) == "odd"
        assert api.wire_value({"k": Odd()}) == {"k": "odd"}

    def test_jsonable_dumps_tuples_as_lists(self):
        assert json.dumps(_jsonable((1, (2,)))) == "[1, [2]]"


class TestQueryRequestValidation:
    def test_empty_text_rejected(self):
        with pytest.raises(api.SchemaError, match="non-empty"):
            api.QueryRequest(text="   ")

    def test_bad_page_rows_rejected(self):
        with pytest.raises(api.SchemaError, match="page_rows"):
            api.QueryRequest(text="q", page_rows=0)

    def test_subscribe_empty_query_rejected(self):
        with pytest.raises(api.SchemaError, match="non-empty"):
            api.SubscribeRequest(query="")


class TestPaging:
    def _result(self, n):
        return ResultSet(
            columns=("a", "b"),
            rows=[(i, f"v{i}") for i in range(n)],
            meta={},
        )

    def test_single_page(self):
        pages = api.pages_from_result(self._result(3), page_rows=10)
        assert len(pages) == 1
        assert pages[0].last and pages[0].total_rows == 3

    def test_multi_page_split_and_meta_on_last(self):
        pages = api.pages_from_result(
            self._result(25), page_rows=10, elapsed_ms=4.2
        )
        assert [len(p.rows) for p in pages] == [10, 10, 5]
        assert [p.last for p in pages] == [False, False, True]
        assert pages[0].meta == {} and pages[-1].meta == {"elapsed_ms": 4.2}
        # every page is self-describing
        assert all(p.columns == ("a", "b") for p in pages)

    def test_empty_result_is_one_empty_page(self):
        pages = api.pages_from_result(self._result(0), page_rows=10)
        assert len(pages) == 1
        assert pages[0].last and pages[0].rows == ()

    def test_reassembly_inverts_paging(self):
        result = self._result(25)
        pages = api.pages_from_result(result, page_rows=7)
        # ... through the JSON wire, as a client would see them
        wire = [api.from_json(p.to_json()) for p in pages]
        columns, rows, meta = api.result_from_pages(wire)
        assert columns == ("a", "b")
        assert rows == [tuple(api.wire_value(v) for v in r) for r in result.rows]

    def test_completeness_annotation_rides_the_last_page(self):
        result = self._result(2)
        result.meta["completeness"] = {"missing_shards": (1,), "estimated_missed_rows": 5}
        pages = api.pages_from_result(result, page_rows=1)
        assert pages[-1].meta["completeness"]["missing_shards"] == (1,)
        assert pages[0].meta == {}

    def test_reassembly_rejects_non_pages(self):
        with pytest.raises(api.SchemaError, match="query_page"):
            api.result_from_pages([api.HealthPayload()])
