"""Slow-query log: threshold, bounded ring, consistent stats."""

import pytest

from repro.obs.slowlog import SlowQueryLog


class TestSlowQueryLog:
    def test_below_threshold_not_recorded(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert log.observe("q", elapsed_s=0.05) is None
        assert log.entries() == []
        assert log.stats() == {
            "threshold_ms": 100.0,
            "observed": 1,
            "recorded": 0,
            "entries": 0,
        }

    def test_at_or_above_threshold_recorded(self):
        log = SlowQueryLog(threshold_ms=100.0)
        entry = log.observe("slow q", elapsed_s=0.25, rows=3,
                            detail={"kind": "multievent"})
        assert entry is not None
        assert entry.text == "slow q"
        assert entry.elapsed_ms == 250.0
        assert entry.rows == 3
        assert entry.detail == {"kind": "multievent"}
        assert log.entries() == [entry]

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.observe("a", 0.0)
        log.observe("b", 0.001)
        assert [e.text for e in log.entries()] == ["a", "b"]

    def test_ring_bounded_newest_kept(self):
        log = SlowQueryLog(threshold_ms=0.0, max_entries=2)
        for name in ("a", "b", "c"):
            log.observe(name, 1.0)
        assert [e.text for e in log.entries()] == ["b", "c"]
        assert log.stats()["recorded"] == 3
        assert log.stats()["entries"] == 2

    def test_clear_empties_ring_keeps_counters(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.observe("a", 1.0)
        log.clear()
        assert log.entries() == []
        assert log.stats()["recorded"] == 1

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1.0, max_entries=0)
