"""Metrics registry: counters, gauges, histograms, exposition, snapshot."""

import threading

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
    flatten_gauges,
    log_buckets,
)


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestLogBuckets:
    def test_powers_cover_range(self):
        bounds = log_buckets(1.0, 8.0)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_final_bound_reaches_hi(self):
        bounds = log_buckets(1.0, 5.0)
        assert bounds[-1] >= 5.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, factor=1.0)

    def test_default_buckets_are_sorted(self):
        assert list(SECONDS_BUCKETS) == sorted(SECONDS_BUCKETS)
        assert list(BYTES_BUCKETS) == sorted(BYTES_BUCKETS)


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_isolate_series(self, registry):
        c = registry.counter("c_total", "help", labelnames=("shard",))
        c.inc(shard="0")
        c.inc(3, shard="1")
        assert c.value(shard="0") == 1
        assert c.value(shard="1") == 3
        assert c.samples() == [(("0",), 1.0), (("1",), 3.0)]

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("c_total", "help", labelnames=("shard",))
        with pytest.raises(ValueError):
            c.inc(host="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("c_total", "help")
        c.inc(10)
        assert c.value() == 0
        registry.enabled = True
        c.inc(1)
        assert c.value() == 1

    def test_untouched_counter_reads_zero(self, registry):
        assert registry.counter("c_total", "help").value() == 0.0


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("g", "help")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_callback_sampled_on_read(self, registry):
        state = {"v": 7.0}
        g = registry.gauge("g", "help", callback=lambda: state["v"])
        assert g.samples() == [((), 7.0)]
        state["v"] = 9.0
        assert g.samples() == [((), 9.0)]

    def test_callback_errors_swallowed(self, registry):
        g = registry.gauge("g", "help", callback=lambda: 1 / 0)
        assert g.samples() == []  # sampling failed, no value recorded


class TestHistogram:
    def test_observe_count_sum(self, registry):
        h = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 105.0

    def test_quantile_returns_bucket_bound(self, registry):
        h = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 4.0

    def test_overflow_lands_in_inf_bucket(self, registry):
        h = registry.histogram("h", "help", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == float("inf")

    def test_empty_quantile_is_zero(self, registry):
        h = registry.histogram("h", "help", buckets=(1.0,))
        assert h.quantile(0.5) == 0.0

    def test_labelled_series_are_independent(self, registry):
        h = registry.histogram("h", "help", labelnames=("shard",),
                               buckets=(1.0, 2.0))
        h.observe(0.5, shard="0")
        h.observe(1.5, shard="1")
        assert h.count(shard="0") == 1
        assert h.count(shard="1") == 1
        assert h.sum(shard="1") == 1.5

    def test_disabled_observe_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        h = registry.histogram("h", "help", buckets=(1.0,))
        h.observe(0.5)
        assert h.count() == 0


class TestRegistry:
    def test_reregistration_returns_same_object(self, registry):
        a = registry.counter("c_total", "one wording")
        b = registry.counter("c_total", "another wording")
        assert a is b

    def test_type_mismatch_rejected(self, registry):
        registry.counter("m", "help")
        with pytest.raises(ValueError):
            registry.gauge("m", "help")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("m", "help", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", "help", labelnames=("b",))

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        c = registry.counter("c_total", "help")
        h = registry.histogram("h", "help", buckets=(1.0,))
        c.inc()
        h.observe(0.5)
        registry.reset()
        assert registry.get("c_total") is c
        assert c.value() == 0
        assert h.count() == 0

    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("c_total", "help")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestRender:
    def test_counter_exposition(self, registry):
        c = registry.counter("aiql_x_total", "things", labelnames=("shard",))
        c.inc(2, shard="1")
        text = registry.render()
        assert "# HELP aiql_x_total things" in text
        assert "# TYPE aiql_x_total counter" in text
        assert 'aiql_x_total{shard="1"} 2' in text

    def test_zero_sample_unlabelled_metric_still_rendered(self, registry):
        registry.counter("aiql_y_total", "help")
        assert "aiql_y_total 0" in registry.render()

    def test_histogram_cumulative_buckets(self, registry):
        h = registry.histogram("aiql_h", "help", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = registry.render()
        assert 'aiql_h_bucket{le="1"} 1' in text
        assert 'aiql_h_bucket{le="2"} 2' in text
        assert 'aiql_h_bucket{le="+Inf"} 3' in text
        assert "aiql_h_sum 11" in text
        assert "aiql_h_count 3" in text

    def test_extra_gauges_appended(self, registry):
        text = registry.render(extra_gauges={"aiql_system_events": 42})
        assert "aiql_system_events 42" in text

    def test_snapshot_shape(self, registry):
        c = registry.counter("c_total", "help")
        c.inc(3)
        h = registry.histogram("h", "help", buckets=(1.0,))
        h.observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"] == {"kind": "counter", "values": {"": 3.0}}
        series = snap["h"]["series"][""]
        assert series["count"] == 1
        assert series["sum"] == 0.5
        assert series["p50"] == 1.0


class TestFlattenGauges:
    def test_nested_dicts_flatten(self):
        out = flatten_gauges("aiql_system", {"wal": {"bytes": 10}, "events": 2})
        assert out == {"aiql_system_wal_bytes": 10.0, "aiql_system_events": 2.0}

    def test_non_numeric_and_lists_skipped(self):
        out = flatten_gauges("p", {"path": "/tmp/x", "shard_events": [1, 2]})
        assert out == {}

    def test_bools_become_floats(self):
        assert flatten_gauges("p", {"durable": True}) == {"p_durable": 1.0}

    def test_hostile_key_characters_sanitized(self):
        out = flatten_gauges("p", {"a.b-c": 1})
        assert out == {"p_a_b_c": 1.0}
