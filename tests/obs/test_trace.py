"""Span trees, contextvar activation, and the no-trace fast path."""

import json

from repro.obs.trace import (
    Span,
    Trace,
    activate,
    active_trace,
    trace_add,
    trace_annotate,
    trace_span,
)


class TestSpan:
    def test_add_accumulates_counters(self):
        span = Span("scan")
        span.add("rows", 3)
        span.add("rows", 2)
        assert span.counters == {"rows": 5.0}

    def test_annotate_merges_attrs(self):
        span = Span("scan")
        span.annotate(pattern=0)
        span.annotate(rows=4)
        assert span.attrs == {"pattern": 0, "rows": 4}

    def test_to_text_renders_attrs_counters_children(self):
        root = Span("query", started=0.0, ended=0.004)
        child = Span("scan", started=0.001, ended=0.002)
        child.annotate(pattern=1)
        child.add("rows_scanned", 10)
        root.children.append(child)
        text = root.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  scan [pattern=1 rows_scanned=10]")
        assert "(1.00 ms)" in lines[1]

    def test_to_dict_round_trips_through_json(self):
        span = Span("query", started=0.0, ended=0.5)
        span.children.append(Span("parse", started=0.0, ended=0.1))
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "query"
        assert payload["duration_ms"] == 500.0
        assert payload["children"][0]["name"] == "parse"

    def test_find_returns_self_and_descendants(self):
        root = Span("query")
        a = Span("scan")
        b = Span("scan")
        join = Span("join")
        root.children.extend([a, join])
        join.children.append(b)
        assert root.find("scan") == [a, b]
        assert root.find("query") == [root]


class TestTrace:
    def test_push_pop_builds_tree(self):
        trace = Trace("query")
        outer = trace.push("schedule")
        inner = trace.push("scan")
        assert trace.current is inner
        trace.pop(inner)
        assert trace.current is outer
        trace.pop(outer)
        assert trace.current is trace.root
        assert trace.root.children == [outer]
        assert outer.children == [inner]

    def test_finish_closes_everything(self):
        trace = Trace("query")
        span = trace.push("scan")
        root = trace.finish()
        assert root is trace.root
        assert span.ended is not None
        assert root.ended is not None

    def test_child_durations_sum_within_parent(self):
        trace = Trace("query")
        for _ in range(3):
            span = trace.push("scan")
            trace.pop(span)
        root = trace.finish()
        child_total = sum(c.duration_s for c in root.children)
        assert child_total <= root.duration_s + 1e-9


class TestActivation:
    def test_activate_sets_and_restores(self):
        assert active_trace() is None
        trace = Trace("query")
        with activate(trace) as active:
            assert active is trace
            assert active_trace() is trace
        assert active_trace() is None
        assert trace.root.ended is not None

    def test_trace_span_attaches_to_active(self):
        with activate(Trace("query")) as trace:
            with trace_span("scan", pattern=2) as span:
                assert span is not None
                assert trace.current is span
                trace_add("rows_scanned", 7)
                trace_annotate(rows=1)
        scan = trace.root.children[0]
        assert scan.attrs == {"pattern": 2, "rows": 1}
        assert scan.counters == {"rows_scanned": 7.0}

    def test_hooks_are_noops_without_trace(self):
        with trace_span("scan") as span:
            assert span is None
        trace_add("rows", 5)  # must not raise
        trace_annotate(rows=5)

    def test_spans_close_on_exception(self):
        trace = Trace("query")
        try:
            with activate(trace):
                with trace_span("scan"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_trace() is None
        assert trace.root.children[0].ended is not None
