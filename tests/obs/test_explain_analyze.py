"""EXPLAIN ANALYZE ground truth on the paper's Fig. 4 APT query (c1-1).

The span tree's per-pattern cardinalities and prune/cache annotations are
asserted against independent scans of the same store — the annotations
must be facts about the execution, not estimates.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.data_query import DataQuery
from repro.obs import REGISTRY, set_metrics_enabled
from repro.workload.corpus import by_id
from repro.workload.loader import build_enterprise

APT_QUERY = by_id("c1-1").text  # Fig. 4: outlook -> IMAP ip -> %.xlsm


@pytest.fixture(scope="module")
def system():
    deployment = AIQLSystem(SystemConfig())
    build_enterprise(
        stores=(), ingestor=deployment.ingestor, events_per_host_day=40
    )
    yield deployment
    deployment.close()


class TestExplainAnalyzeGroundTruth:
    def test_span_tree_shape(self, system):
        report = system.explain(APT_QUERY)
        assert report.kind == "multievent"
        assert report.root is not None
        assert report.root.name == "query"
        names = [c.name for c in report.root.children]
        assert names[0] == "parse"
        assert "schedule" in names
        assert len(report.spans("join")) >= 1

    def test_per_pattern_cardinalities_match_store(self, system):
        report = system.explain(APT_QUERY)
        ctx = system.compile(APT_QUERY)
        spans = report.pattern_spans()
        assert len(spans) == len(ctx.patterns)
        order = report.scheduler["order"]
        assert [s.attrs["pattern"] for s in spans] == order

        # The first-executed pattern runs unconstrained, so its filter is
        # exactly the compiled pattern filter — scan it independently.
        first = spans[0]
        assert "constrained" not in first.attrs
        flt = DataQuery.for_pattern(ctx.patterns[order[0]]).filter
        truth = len(system.store.scan(flt))
        assert first.attrs["rows"] == truth
        assert first.counters["rows_selected"] == truth
        assert first.counters["rows_scanned"] >= truth

        # Scanned + pruned partitions account for every partition.
        total_partitions = system.store.stats()["partitions"]
        assert (
            first.counters["partitions_scanned"]
            + first.counters["partitions_pruned"]
            == total_partitions
        )
        # Narrowed re-queries are marked and carry their narrowing inputs.
        constrained = [s for s in spans if s.attrs.get("constrained")]
        assert constrained
        for span in constrained:
            assert "narrowed_by" in span.attrs

        # The scheduler's fetched-event total is the sum of span rows.
        fetched = sum(s.attrs["rows"] for s in spans)
        assert fetched == report.scheduler["events_fetched"]

    def test_second_run_is_served_from_scan_cache(self, system):
        system.explain(APT_QUERY)  # warm every partition entry
        report = system.explain(APT_QUERY)
        first = report.pattern_spans()[0]
        assert first.counters["cache_misses"] == 0
        assert (
            first.counters["cache_hits"]
            == first.counters["partitions_scanned"]
        )

    def test_traced_result_equals_untraced(self, system):
        traced = system.explain(APT_QUERY)
        plain = system.query(APT_QUERY)
        assert traced.rows == len(plain)

    def test_text_rendering_carries_annotations(self, system):
        text = system.explain(APT_QUERY).to_text()
        assert "score=" in text
        assert "rows_scanned=" in text
        assert "partitions_pruned=" in text
        assert "scheduler order:" in text

    def test_json_rendering(self, system):
        import json

        payload = json.loads(system.explain(APT_QUERY).to_json())
        assert payload["kind"] == "multievent"
        assert payload["trace"]["name"] == "query"
        assert payload["rows"] >= 1

    def test_static_explain_has_no_spans(self, system):
        report = system.explain(APT_QUERY, analyze=False)
        assert report.root is None
        assert report.pattern_spans() == []
        assert "score=" in str(report)
        # The containment shim still works but is deprecated (v1 API).
        with pytest.warns(DeprecationWarning):
            assert "score=" in report

    def test_tracing_disabled_falls_back_to_static(self):
        system = AIQLSystem(SystemConfig(tracing=False))
        try:
            report = system.explain("proc p read file f\nreturn p")
            assert report.root is None
        finally:
            system.close()
            set_metrics_enabled(True)


class TestSystemObservabilitySurface:
    def test_query_metrics_accumulate(self, system):
        counter = REGISTRY.get("aiql_queries_total")
        before = counter.value()
        system.query(APT_QUERY)
        assert counter.value() == before + 1

    def test_explain_analyze_counts_as_a_query(self, system):
        # Same convention as PostgreSQL: EXPLAIN ANALYZE executes, so it
        # shows up in the query statistics; plan-only explain does not.
        counter = REGISTRY.get("aiql_queries_total")
        before = counter.value()
        system.explain(APT_QUERY)
        assert counter.value() == before + 1
        system.explain(APT_QUERY, analyze=False)
        assert counter.value() == before + 1

    def test_metrics_text_exposition(self, system):
        text = system.metrics_text()
        assert "# TYPE aiql_queries_total counter" in text
        assert "aiql_query_seconds_bucket" in text
        assert "aiql_system_events" in text  # flattened system stats gauge

    def test_metrics_snapshot_is_plain_data(self, system):
        snap = system.metrics_snapshot()
        assert snap["aiql_queries_total"]["kind"] == "counter"

    def test_slow_query_log_records_through_facade(self):
        system = AIQLSystem(SystemConfig(slow_query_ms=0.0))
        try:
            build_enterprise(
                stores=(), ingestor=system.ingestor, events_per_host_day=5
            )
            system.query("proc p read file f\nreturn count p")
            entries = system.slow_queries()
            assert len(entries) == 1
            assert "proc p read file f" in entries[0].text
            assert system.stats()["slow_queries"]["recorded"] == 1
        finally:
            system.close()
            set_metrics_enabled(True)

    def test_metrics_disabled_config_stops_accounting(self):
        system = AIQLSystem(SystemConfig(metrics=False))
        try:
            assert not REGISTRY.enabled
            counter = REGISTRY.get("aiql_queries_total")
            before = counter.value()
            system.query("proc p read file f\nreturn count p")
            assert counter.value() == before
        finally:
            system.close()
            set_metrics_enabled(True)
