"""Concurrency stress: query threads racing a streaming writer.

The live-ingestion contract under test:

* **No torn batches** — each partition publishes its sub-batch with one
  visibility bump and the store's committed watermark moves only after all
  of them have, so a racing scan sees whole batches only, even when a
  batch spans partitions.
* **Prefix consistency** — a scan that observes an agent's event with
  sequence number *k* also observes every earlier sequence number.
* **Post-watermark visibility (read-your-writes)** — a query issued after
  ``commit()`` returned watermark *W* observes all *W* events.
"""

import threading

from repro.model.time import DAY, TimeWindow
from repro.service.cache import ScanCache
from repro.service.query_service import QueryService
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme

BATCH = 8
BATCHES = 40
READERS = 4


def make_live_store(cache=True):
    ingestor = Ingestor()
    store = EventStore(
        registry=ingestor.registry,
        scheme=PartitionScheme(agents_per_group=1),
        scan_cache=ScanCache(max_entries=128) if cache else None,
    )
    ingestor.attach(store)
    session = StreamSession(ingestor, batch_size=10**9)  # manual commits only
    return ingestor, store, session


class TestTornBatches:
    def _run(self, make_filter):
        """Readers assert batch-aligned, prefix-consistent snapshots while
        the writer commits BATCHES batches, each spanning TWO partitions
        (agents 1 and 2 with agents_per_group=1): the commit must be atomic
        across partitions, not merely within each one."""
        ingestor, store, session = make_live_store()
        actors = {
            agent: (
                session.process(agent, 10, "bash"),
                session.file(agent, "/data/hot"),
            )
            for agent in (1, 2)
        }
        done = threading.Event()
        failures = []

        def writer():
            try:
                for batch in range(BATCHES):
                    for i in range(BATCH):
                        agent = 1 + i % 2  # interleave the two partitions
                        proc, target = actors[agent]
                        session.append(
                            agent, 5.0 + batch * BATCH + i, "read", proc, target
                        )
                    session.commit()
            finally:
                done.set()

        def reader():
            while not done.is_set():
                events = store.scan(make_filter())
                if len(events) % BATCH != 0:
                    failures.append(f"torn batch: saw {len(events)} events")
                    return
                for agent in (1, 2):
                    seqs = sorted(e.seq for e in events if e.agent_id == agent)
                    if seqs != list(range(1, len(seqs) + 1)):
                        failures.append(f"seq gap agent {agent}: {seqs[:10]}")
                        return

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not failures, failures
        assert session.watermark == BATCH * BATCHES
        assert len(store.partition_keys) == 2
        final = store.scan(make_filter())
        assert len(final) == BATCH * BATCHES

    def test_unconstrained_scan_path(self):
        # No constraints: the scan walks range(visible) directly.
        self._run(EventFilter)

    def test_time_index_scan_path(self):
        # A bounded window routes candidates through the time index.
        self._run(lambda: EventFilter(window=TimeWindow(0.0, DAY)))

    def test_postings_scan_path(self):
        # Subject-id sets route candidates through the postings lists.
        ingestor, store, session = make_live_store()
        proc = session.process(1, 10, "bash")
        target = session.file(1, "/data/hot")
        subject_ids = frozenset({proc.id})
        done = threading.Event()
        failures = []

        def writer():
            try:
                for batch in range(BATCHES):
                    for i in range(BATCH):
                        session.append(
                            1, 5.0 + batch * BATCH + i, "read", proc, target
                        )
                    session.commit()
            finally:
                done.set()

        def reader():
            flt = EventFilter(subject_ids=subject_ids)
            while not done.is_set():
                count = len(store.scan(flt))
                if count % BATCH != 0:
                    failures.append(f"torn batch via postings: {count}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not failures, failures


class TestWatermarkVisibility:
    def test_query_after_watermark_sees_the_batch(self):
        ingestor, store, session = make_live_store()
        proc = session.process(1, 10, "bash")
        query = (
            "agentid = 1\n"
            "proc p1 read file f1 as evt1\n"
            "return p1, f1"
        )
        service = QueryService(store)
        for batch in range(5):
            target = session.file(1, f"/data/b{batch}")
            for i in range(BATCH):
                session.append(
                    1, 5.0 + batch * BATCH + i, "read", proc, target
                )
            watermark = session.commit()
            assert len(store) == watermark
            # A fresh query issued after the commit observes every event
            # counted by the watermark (one result row per match).
            assert len(service.run(query)) == watermark

    def test_concurrent_aiql_queries_observe_whole_batches(self):
        ingestor, store, session = make_live_store()
        proc = session.process(1, 10, "bash")
        target = session.file(1, "/data/hot")
        query = (
            "agentid = 1\n"
            "proc p1 read file f1 as evt1\n"
            "return p1, f1"
        )
        done = threading.Event()
        failures = []

        def writer():
            try:
                for batch in range(20):
                    for i in range(BATCH):
                        session.append(
                            1, 5.0 + batch * BATCH + i, "read", proc, target
                        )
                    session.commit()
            finally:
                done.set()

        def analyst():
            # A private service per thread: in-flight dedup across threads
            # would let two analysts share one (older) snapshot, which is
            # legal but defeats the monotonicity assertion below.
            service = QueryService(store)
            last = 0
            while not done.is_set():
                rows = len(service.run(query))
                if rows % BATCH != 0:
                    failures.append(f"torn batch through engine: {rows}")
                    return
                if rows < last:
                    failures.append(f"non-monotone reads: {rows} < {last}")
                    return
                last = rows

        threads = [threading.Thread(target=analyst) for _ in range(READERS)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not failures, failures
        service = QueryService(store)
        assert len(service.run(query)) == 20 * BATCH
