"""ContinuousQueryEngine: subscriptions, windows, delta joins, alerts."""

import time

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.model.time import DAY
from repro.service.continuous import (
    Alert,
    ContinuousError,
    ContinuousQueryEngine,
)
from repro.storage.ingest import Ingestor

DAY0 = 1_483_228_800.0  # 2017-01-01

SINGLE = 'proc p1["bash"] read file f1["%secret%"] as evt1 return p1, f1'
PAIR = """
    proc p1["bash"] write file f1 as evt1
    proc p2["python"] read file f1 as evt2
    with evt1 before evt2
    return p1, f1, p2
"""


def make_engine(**kwargs):
    ingestor = Ingestor()
    kwargs.setdefault("default_window_s", DAY)
    return ingestor, ContinuousQueryEngine(ingestor.registry, **kwargs)


def build(ingestor, agent=1):
    bash = ingestor.process(agent, 10, "bash")
    python = ingestor.process(agent, 11, "python")
    secret = ingestor.file(agent, "/data/secret.txt")
    plain = ingestor.file(agent, "/data/notes.txt")
    return bash, python, secret, plain


def event(ingestor, t, op, subject, obj, agent=1):
    return ingestor.build_event(agent, t, op, subject, obj)


class TestSubscribe:
    def test_subscribe_compiles_kernels_once(self):
        _, engine = make_engine()
        sub = engine.subscribe(PAIR)
        assert len(sub.kernels) == 2
        assert sub.active
        assert engine.subscriptions == (sub,)

    def test_rejects_anomaly_queries(self):
        _, engine = make_engine()
        anomaly = """
            agentid = 3
            (from "01/01/2017" to "01/02/2017")
            window = 10 min
            step = 10 min
            proc p write ip i1 as evt
            return p, sum(evt.amount) as total
            having total > 1000
        """
        with pytest.raises(ContinuousError, match="multievent"):
            engine.subscribe(anomaly)

    def test_rejects_aggregates_and_top(self):
        _, engine = make_engine()
        with pytest.raises(ContinuousError, match="matched tuple"):
            engine.subscribe(
                "proc p1 read file f1 as evt1 return p1, count(f1)"
            )
        with pytest.raises(ContinuousError, match="matched tuple"):
            engine.subscribe("proc p1 read file f1 as evt1 return p1 top 3")

    def test_subscription_limit(self):
        _, engine = make_engine(max_subscriptions=1)
        engine.subscribe(SINGLE)
        with pytest.raises(ContinuousError, match="limit"):
            engine.subscribe(SINGLE)

    def test_duplicate_name_rejected(self):
        _, engine = make_engine()
        engine.subscribe(SINGLE, name="watch")
        with pytest.raises(ContinuousError, match="already exists"):
            engine.subscribe(SINGLE, name="watch")

    def test_window_clamped_to_max(self):
        _, engine = make_engine(max_window_s=60.0)
        sub = engine.subscribe(SINGLE, window_s=3600.0)
        assert sub.horizon_s == 60.0

    def test_invalid_window_rejected(self):
        _, engine = make_engine()
        with pytest.raises(ContinuousError, match="window_s"):
            engine.subscribe(SINGLE, window_s=0)

    def test_engine_parameter_validation(self):
        ingestor = Ingestor()
        for kwargs in (
            {"default_window_s": 0},
            {"max_window_s": -1},
            {"max_subscriptions": 0},
            {"alert_queue": 0},
        ):
            with pytest.raises(ValueError):
                ContinuousQueryEngine(ingestor.registry, **kwargs)

    def test_unsubscribe_stops_alerts(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        sub = engine.subscribe(SINGLE)
        engine.unsubscribe(sub)
        assert not sub.active
        assert engine.push([event(ingestor, DAY0, "read", bash, secret)]) == []
        engine.unsubscribe(sub)  # idempotent


class TestSinglePattern:
    def test_matching_event_alerts_on_push(self):
        ingestor, engine = make_engine()
        bash, python, secret, plain = build(ingestor)
        seen = []
        sub = engine.subscribe(SINGLE, callback=seen.append)
        emitted = engine.push(
            [
                event(ingestor, DAY0, "read", bash, secret),
                event(ingestor, DAY0 + 1, "read", bash, plain),  # wrong file
                event(ingestor, DAY0 + 2, "read", python, secret),  # wrong proc
            ]
        )
        assert [a.key for a in emitted] == [(1,)]
        assert seen == emitted
        assert sub.alerts_emitted == 1
        assert emitted[0].query == sub.name
        assert emitted[0].time == DAY0

    def test_duplicate_tuple_not_re_emitted(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        engine.subscribe(SINGLE)
        evt = event(ingestor, DAY0, "read", bash, secret)
        assert len(engine.push([evt])) == 1
        assert engine.push([evt]) == []

    def test_empty_push_is_noop(self):
        _, engine = make_engine()
        engine.subscribe(SINGLE)
        assert engine.push([]) == []
        assert engine.stats()["batches_pushed"] == 0

    def test_latency_stamped_when_started_given(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        engine.subscribe(SINGLE)
        started = time.perf_counter()
        (alert,) = engine.push(
            [event(ingestor, DAY0, "read", bash, secret)], started=started
        )
        assert alert.latency_s is not None and alert.latency_s >= 0
        (other,) = engine.push(
            [event(ingestor, DAY0 + 1, "read", bash, secret)]
        )
        assert other.latency_s is None


class TestMultiPattern:
    def test_join_completes_across_batches(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        sub = engine.subscribe(PAIR)
        write = event(ingestor, DAY0, "write", bash, secret)
        assert engine.push([write]) == []  # half a tuple: no alert yet
        read = event(ingestor, DAY0 + 5, "read", python, secret)
        (alert,) = engine.push([read])
        assert alert.key == (write.event_id, read.event_id)
        assert sub.window_snapshot() == {
            0: (write.event_id,),
            1: (read.event_id,),
        }

    def test_temporal_order_enforced(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        engine.subscribe(PAIR)
        # read arrives first in data time: 'evt1 before evt2' fails
        read = event(ingestor, DAY0, "read", python, secret)
        write = event(ingestor, DAY0 + 5, "write", bash, secret)
        assert engine.push([read]) == []
        assert engine.push([write]) == []

    def test_entity_join_enforced(self):
        ingestor, engine = make_engine()
        bash, python, secret, plain = build(ingestor)
        engine.subscribe(PAIR)
        assert (
            engine.push(
                [
                    event(ingestor, DAY0, "write", bash, secret),
                    event(ingestor, DAY0 + 1, "read", python, plain),
                ]
            )
            == []
        )

    def test_same_batch_tuple_counted_once(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        sub = engine.subscribe(PAIR)
        write = event(ingestor, DAY0, "write", bash, secret)
        read = event(ingestor, DAY0 + 1, "read", python, secret)
        emitted = engine.push([write, read])
        assert [a.key for a in emitted] == [(write.event_id, read.event_id)]
        assert sub.alerts_emitted == 1

    def test_self_relationship_on_seed_pattern(self):
        # Both relationship endpoints resolve to pattern 0 (subject and
        # object of the same pattern): applied by filtering the seed set.
        ingestor, engine = make_engine()
        alice = ingestor.process(1, 20, "bash", user="alice")
        owned = ingestor.file(1, "/home/alice/notes", owner="alice")
        foreign = ingestor.file(1, "/home/bob/notes", owner="bob")
        engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            "with p1.user = f1.owner\nreturn p1, f1"
        )
        hit = event(ingestor, DAY0, "write", alice, owned)
        miss = event(ingestor, DAY0 + 1, "write", alice, foreign)
        emitted = engine.push([hit, miss])
        assert [a.key for a in emitted] == [(hit.event_id,)]
        # A batch whose whole delta fails the self-relationship: no alert.
        assert engine.push(
            [event(ingestor, DAY0 + 2, "write", alice, foreign)]
        ) == []

    def test_composite_join_failure_after_narrowing(self):
        # Each narrowing value-set admits every candidate, but no single
        # window row satisfies both relationships at once: the join (not
        # the narrowed prefilter) must reject the combination.
        ingestor, engine = make_engine()
        u1 = ingestor.process(1, 20, "worker", user="u1")
        u2 = ingestor.process(1, 21, "worker", user="u2")
        file_a = ingestor.file(1, "/data/a")
        file_b = ingestor.file(1, "/data/b")
        sub = engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            "proc p2 read file f1 as evt2\n"
            "with p1.user = p2.user\nreturn p1, p2"
        )
        engine.push(
            [
                event(ingestor, DAY0, "write", u1, file_a),
                event(ingestor, DAY0 + 1, "write", u2, file_b),
            ]
        )
        emitted = engine.push(
            [
                event(ingestor, DAY0 + 2, "read", u2, file_a),
                event(ingestor, DAY0 + 3, "read", u1, file_b),
            ]
        )
        assert emitted == []
        # Sanity: a consistent pair does alert.
        (alert,) = engine.push(
            [event(ingestor, DAY0 + 4, "read", u1, file_a)]
        )
        assert alert.query == sub.name

    def test_giant_value_narrowing_skipped_but_join_exact(self):
        # >256 distinct join values: the optimizer guard skips the IN-list
        # narrowing (id-set narrowings still apply); the join stays exact.
        ingestor, engine = make_engine()
        shared = ingestor.file(1, "/data/shared")
        writers = [
            ingestor.process(1, 100 + i, "worker", user=f"u{i}")
            for i in range(260)
        ]
        engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            "proc p2 read file f1 as evt2\n"
            "with p1.user = p2.user\nreturn p1, p2"
        )
        read = event(ingestor, DAY0, "read", writers[7], shared)
        engine.push([read])
        # 260 new writers join against the windowed read: the user-value
        # set is too big to narrow with, so only the id-set narrowing and
        # the join itself constrain the pairing.
        emitted = engine.push(
            [
                event(ingestor, DAY0 + 1 + i, "write", w, shared)
                for i, w in enumerate(writers)
            ]
        )
        assert [a.events[0].subject_id for a in emitted] == [writers[7].id]

    def test_disjoint_pattern_window_short_circuits(self):
        # The temporal narrowing intersected with the pattern's own window
        # is empty: the compiled constant-false kernel skips the join.
        ingestor, engine = make_engine(default_window_s=float("inf"))
        bash, python, secret, _ = build(ingestor)
        engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            'proc p2 read file f1 as evt2 (at "01/02/2017")\n'
            "with evt1 before evt2\nreturn p1, p2"
        )
        early_read = event(ingestor, DAY0 + DAY + 10, "read", python, secret)
        engine.push([early_read])
        # Writer arrives after pattern 2's whole window: nothing can ever
        # satisfy 'evt1 before evt2' inside (at 01/02).
        late_write = event(ingestor, DAY0 + 5 * DAY, "write", bash, secret)
        assert engine.push([late_write]) == []

    def test_non_equality_only_relationship_leaves_query_unnarrowed(self):
        # No equality/temporal rel to narrow with: the window candidates
        # flow to the join untouched.
        ingestor, engine = make_engine()
        u1 = ingestor.process(1, 20, "worker", user="u1")
        u2 = ingestor.process(1, 21, "worker", user="u2")
        file_a = ingestor.file(1, "/data/a")
        file_b = ingestor.file(1, "/data/b")
        engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            "proc p2 read file f2 as evt2\n"
            "with p1.user != p2.user\nreturn p1, p2"
        )
        w = event(ingestor, DAY0, "write", u1, file_a)
        engine.push([w])
        (alert,) = engine.push([event(ingestor, DAY0 + 1, "read", u2, file_b)])
        assert alert.key[0] == w.event_id

    def test_non_equality_relationship_joins_unnarrowed(self):
        # '!=' cannot narrow the window re-query; the join checks it.
        ingestor, engine = make_engine()
        u1 = ingestor.process(1, 20, "worker", user="u1")
        u2 = ingestor.process(1, 21, "worker", user="u2")
        shared = ingestor.file(1, "/data/shared")
        engine.subscribe(
            "proc p1 write file f1 as evt1\n"
            "proc p2 read file f1 as evt2\n"
            "with p1.user != p2.user\nreturn p1, p2"
        )
        w = event(ingestor, DAY0, "write", u1, shared)
        engine.push([w])
        assert engine.push([event(ingestor, DAY0 + 1, "read", u1, shared)]) == []
        (alert,) = engine.push(
            [event(ingestor, DAY0 + 2, "read", u2, shared)]
        )
        assert alert.key[0] == w.event_id

    def test_new_writer_pairs_with_windowed_reader(self):
        # Delta term of a pattern *earlier* than the changed one: the old
        # window of pattern 1 joins a new pattern-0 event.
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        engine.subscribe(PAIR)
        w1 = event(ingestor, DAY0, "write", bash, secret)
        r1 = event(ingestor, DAY0 + 10, "read", python, secret)
        engine.push([w1, r1])
        w2 = event(ingestor, DAY0 + 5, "write", bash, secret)
        (alert,) = engine.push([w2])
        assert alert.key == (w2.event_id, r1.event_id)


class TestWindows:
    def test_eviction_drops_out_of_horizon_events(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        sub = engine.subscribe(PAIR, window_s=100.0)
        write = event(ingestor, DAY0, "write", bash, secret)
        engine.push([write])
        # Advance the stream past the horizon with a non-matching event.
        filler = event(ingestor, DAY0 + 500, "read", bash, secret)
        engine.push([filler])
        assert sub.window_snapshot()[0] == ()
        assert sub.events_evicted == 1
        # A reader arriving now cannot pair with the evicted write.
        read = event(ingestor, DAY0 + 501, "read", python, secret)
        assert engine.push([read]) == []

    def test_expired_on_arrival_never_enters_window(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        sub = engine.subscribe(PAIR, window_s=100.0)
        late = event(ingestor, DAY0, "write", bash, secret)
        fresh = event(ingestor, DAY0 + 500, "read", python, secret)
        engine.push([fresh, late])  # same batch: late is out of horizon
        assert sub.window_snapshot()[0] == ()
        assert sub.events_matched == 1

    def test_idle_pattern_window_still_slides(self):
        ingestor, engine = make_engine()
        bash, python, secret, _ = build(ingestor)
        sub = engine.subscribe(SINGLE, window_s=100.0)
        engine.push([event(ingestor, DAY0, "read", bash, secret)])
        assert sub.window_snapshot()[0] != ()
        # Non-matching traffic advances the high-water mark and evicts.
        engine.push([event(ingestor, DAY0 + 1000, "write", python, secret)])
        assert sub.window_snapshot()[0] == ()

    def test_seen_keys_pruned_with_the_window(self):
        # The dedup set must not grow for the lifetime of a bounded-
        # horizon subscription: keys whose events slid out of horizon are
        # pruned (they can never be re-derived), amortized over evictions.
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        sub = engine.subscribe(SINGLE, window_s=100.0)
        for i in range(200):
            engine.push([event(ingestor, DAY0 + i * 10, "read", bash, secret)])
        assert sub.alerts_emitted == 200
        assert sub.events_evicted > 100
        assert len(sub.seen) < 100  # pruned, not 200

    def test_unbounded_window_never_evicts(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        sub = engine.subscribe(SINGLE, window_s=float("inf"))
        engine.push([event(ingestor, DAY0, "read", bash, secret)])
        engine.push([event(ingestor, DAY0 + 10 * DAY, "read", bash, secret)])
        assert len(sub.window_snapshot()[0]) == 2
        assert sub.events_evicted == 0


class TestAlertQueue:
    def test_queue_bounded_oldest_dropped(self):
        ingestor, engine = make_engine(alert_queue=2)
        bash, _, secret, _ = build(ingestor)
        engine.subscribe(SINGLE)
        events = [
            event(ingestor, DAY0 + i, "read", bash, secret) for i in range(4)
        ]
        engine.push(events)
        assert len(engine.alerts) == 2
        assert engine.alerts_dropped == 2
        drained = engine.drain()
        assert [a.key for a in drained] == [(events[2].event_id,),
                                            (events[3].event_id,)]
        assert engine.drain() == []

    def test_callback_may_reenter_the_engine(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        drained = []

        def reenter(alert: Alert) -> None:
            drained.extend(engine.drain())  # reentrant: must not deadlock

        sub = engine.subscribe(SINGLE, callback=reenter)
        engine.push([event(ingestor, DAY0, "read", bash, secret)])
        assert [a.key for a in drained] == [(1,)]
        assert sub.callback_errors == 0

    def test_callback_error_contained(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)

        def boom(alert: Alert) -> None:
            raise RuntimeError("consumer bug")

        sub = engine.subscribe(SINGLE, callback=boom)
        (alert,) = engine.push([event(ingestor, DAY0, "read", bash, secret)])
        assert alert.key
        assert sub.callback_errors == 1

    def test_stats_shape(self):
        ingestor, engine = make_engine()
        bash, _, secret, _ = build(ingestor)
        engine.subscribe(SINGLE, name="watch")
        engine.push([event(ingestor, DAY0, "read", bash, secret)])
        stats = engine.stats()
        assert stats["subscriptions"] == 1
        assert stats["events_pushed"] == 1
        assert stats["alerts_queued"] == 1
        assert stats["per_query"][0]["name"] == "watch"
        assert stats["per_query"][0]["alerts_emitted"] == 1


class TestSystemWiring:
    def test_stream_commits_feed_subscriptions(self):
        system = AIQLSystem(SystemConfig())
        seen = []
        system.subscribe(SINGLE, callback=seen.append, name="watch")
        with system.stream(batch_size=2) as session:
            bash = session.process(1, 10, "bash")
            secret = session.file(1, "/data/secret.txt")
            session.append(1, DAY0, "read", bash, secret)
            assert seen == []  # staged, not committed
            session.append(1, DAY0 + 1, "write", bash, secret)  # auto-commit
        assert [a.key for a in seen] == [(1,)]
        assert seen[0].latency_s is not None
        assert system.stats()["continuous"]["subscriptions"] == 1
        assert [a.key for a in system.alerts()] == [(1,)]
        assert system.alerts() == []

    def test_subscribe_after_stream_open_still_alerts(self):
        system = AIQLSystem(SystemConfig())
        session = system.stream(batch_size=100)
        seen = []
        system.subscribe(SINGLE, callback=seen.append)
        bash = session.process(1, 10, "bash")
        secret = session.file(1, "/data/secret.txt")
        session.append(1, DAY0, "read", bash, secret)
        session.commit()
        assert len(seen) == 1

    def test_config_knobs_flow_into_engine(self):
        system = AIQLSystem(
            SystemConfig(
                continuous_window_s=120.0,
                continuous_max_window_s=240.0,
                continuous_max_subscriptions=2,
                continuous_alert_queue=8,
            )
        )
        sub = system.subscribe(SINGLE)
        assert sub.horizon_s == 120.0
        clamped = system.subscribe(SINGLE, window_s=1e9)
        assert clamped.horizon_s == 240.0
        with pytest.raises(ContinuousError):
            system.subscribe(SINGLE)
        assert system.continuous.alerts.maxlen == 8

    def test_config_validation(self):
        for kwargs in (
            {"continuous_window_s": 0},
            {"continuous_max_window_s": 0},
            {"continuous_max_subscriptions": 0},
            {"continuous_alert_queue": 0},
        ):
            with pytest.raises(ValueError):
                SystemConfig(**kwargs)

    def test_alerts_empty_without_engine(self):
        assert AIQLSystem(SystemConfig()).alerts() == []


class TestCommitHooks:
    def test_hook_error_contained(self):
        system = AIQLSystem(SystemConfig())
        session = system.stream(batch_size=100)

        def bad_hook(batch, started):
            raise RuntimeError("hook bug")

        session.on_commit(bad_hook)
        bash = session.process(1, 10, "bash")
        secret = session.file(1, "/data/s")
        session.append(1, DAY0, "read", bash, secret)
        session.commit()
        assert session.hook_errors == 1
        assert session.stats()["hook_errors"] == 1
        assert session.stats()["commit_hooks"] == 2  # system's + bad_hook

    def test_hooks_observe_batches_in_order(self):
        system = AIQLSystem(SystemConfig())
        session = system.stream(batch_size=2)
        batches = []
        session.on_commit(lambda batch, started: batches.append(
            tuple(e.event_id for e in batch)
        ))
        bash = session.process(1, 10, "bash")
        secret = session.file(1, "/data/s")
        for i in range(5):
            session.append(1, DAY0 + i, "read", bash, secret)
        session.commit()
        assert batches == [(1, 2), (3, 4), (5,)]
