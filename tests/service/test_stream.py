"""StreamSession: batched atomic commits, watermark, exactly-once validation."""

import pytest

from repro.model.time import DAY
from repro.service.cache import ScanCache
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.filters import EventFilter
from repro.storage.flat import FlatStore
from repro.storage.ingest import IngestError, Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore


def make_session(batch_size=4, cache=True, extra_stores=()):
    ingestor = Ingestor()
    store = EventStore(
        registry=ingestor.registry,
        scheme=PartitionScheme(agents_per_group=1),
        scan_cache=ScanCache(max_entries=64) if cache else None,
    )
    ingestor.attach(store)
    for name in extra_stores:
        if name == "flat":
            ingestor.attach(FlatStore(registry=ingestor.registry))
        elif name == "segmented":
            ingestor.attach(
                SegmentedStore(registry=ingestor.registry, segments=3)
            )
    session = StreamSession(ingestor, batch_size=batch_size)
    return ingestor, store, session


def entities(ingestor, agent_id=1):
    proc = ingestor.process(agent_id, 10, "bash")
    target = ingestor.file(agent_id, f"/data/a{agent_id}")
    return proc, target


class TestStreamSession:
    def test_append_is_invisible_until_commit(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        session.append(1, 5.0, "read", proc, target)
        assert len(store) == 0
        assert session.pending == 1
        watermark = session.commit()
        assert watermark == 1
        assert len(store) == 1
        assert session.pending == 0

    def test_auto_commit_at_batch_size(self):
        _, store, session = make_session(batch_size=3)
        proc, target = entities(session)
        session.append(1, 5.0, "read", proc, target)
        session.append(1, 6.0, "read", proc, target)
        assert len(store) == 0
        session.append(1, 7.0, "read", proc, target)  # fills the batch
        assert len(store) == 3
        assert session.batches_committed == 1

    def test_watermark_monotone_and_read_your_writes(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        marks = []
        for batch in range(3):
            for i in range(4):
                session.append(1, batch * 10.0 + i, "read", proc, target)
            marks.append(session.commit())
            # Read-your-writes: a scan after observing the watermark sees
            # every committed event.
            assert len(store.scan(EventFilter())) == marks[-1]
        assert marks == sorted(marks) == [4, 8, 12]

    def test_empty_commit_is_noop(self):
        _, _, session = make_session()
        before = session.watermark
        assert session.commit() == before
        assert session.batches_committed == 0

    def test_context_manager_commits_tail(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        with session:
            session.append(1, 5.0, "read", proc, target)
        assert len(store) == 1

    def test_invalid_event_rejected_at_append_and_not_staged(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        with pytest.raises(IngestError):
            session.append(1, 5.0, "start", proc, target)  # can't start a file
        assert session.pending == 0
        session.commit()
        assert len(store) == 0

    def test_invalid_batch_size_rejected(self):
        ingestor = Ingestor()
        with pytest.raises(ValueError):
            StreamSession(ingestor, batch_size=0)

    def test_entity_helpers_delegate_to_ingestor(self):
        ingestor, store, session = make_session()
        proc = session.process(1, 10, "bash")
        target = session.file(1, "/x")
        conn = session.connection(1, "10.0.0.1", 1000, "10.0.0.2", 443)
        assert session.registry is ingestor.registry
        assert {proc.id, target.id, conn.id} <= set(
            e.id for e in ingestor.registry
        )

    def test_emit_alias_streams(self):
        _, store, session = make_session(batch_size=2)
        proc, target = entities(session)
        session.emit(1, 5.0, "read", proc, target)
        session.emit(1, 6.0, "write", proc, target)
        assert len(store) == 2  # auto-committed

    def test_ipc_entity_helpers_delegate(self):
        ingestor, _, session = make_session()
        value = session.registry_value(1, "HKLM/SOFTWARE/Probe", "v0")
        fifo = session.pipe(1, "/run/probe-pipe")
        assert ingestor.registry.get(value.id) is value
        assert ingestor.registry.get(fifo.id) is fifo
        assert session.clock is ingestor.clock

    def test_counters_and_stats(self):
        _, _, session = make_session(batch_size=10)
        proc, target = entities(session)
        session.append(1, 5.0, "read", proc, target)
        session.append(1, 6.0, "read", proc, target)
        assert session.events_ingested == 2  # committed + staged
        assert session.stats() == {
            "appended": 2,
            "committed": 0,
            "pending": 2,
            "batches": 0,
            "batch_size": 10,
            "commit_hooks": 0,
            "hook_errors": 0,
        }
        session.commit()
        stats = session.stats()
        assert stats["committed"] == 2 and stats["pending"] == 0
        assert stats["batches"] == 1


class TestValidationHoisting:
    def test_batch_validated_exactly_once_regardless_of_store_count(self):
        ingestor, _, session = make_session(
            batch_size=100, extra_stores=("flat", "segmented")
        )
        proc, target = entities(session)
        for i in range(10):
            session.append(1, float(i), "read", proc, target)
        session.commit()
        # 3 attached stores, but each event was validated exactly once.
        assert ingestor.validations == 10

    def test_emit_path_also_validates_once(self):
        ingestor, _, _ = make_session(extra_stores=("flat",))
        proc, target = entities(ingestor)
        ingestor.emit(1, 5.0, "read", proc, target)
        assert ingestor.validations == 1

    def test_all_stores_receive_identical_batch(self):
        ingestor, store, session = make_session(
            batch_size=100, extra_stores=("flat", "segmented")
        )
        proc, target = entities(session)
        for i in range(7):
            session.append(1, float(i), "read", proc, target)
        session.commit()
        flat, segmented = ingestor._stores[1], ingestor._stores[2]
        reference = [e.event_id for e in store]
        assert sorted(e.event_id for e in flat) == reference
        assert sorted(e.event_id for e in segmented) == reference


class TestPartitionScopedInvalidation:
    def test_commit_invalidates_only_touched_partitions(self):
        _, store, session = make_session(batch_size=100)
        proc1, target1 = entities(session, agent_id=1)
        proc2, target2 = entities(session, agent_id=2)
        session.append(1, 5.0, "read", proc1, target1)
        session.append(2, 5.0, "read", proc2, target2)
        session.commit()
        flt1 = EventFilter(agent_ids=frozenset({1}))
        flt2 = EventFilter(agent_ids=frozenset({2}))
        store.scan(flt1)
        store.scan(flt2)
        cache = store.scan_cache
        hits_before = cache.hits
        # Batch touches only agent 1's partition.
        session.append(1, 6.0, "write", proc1, target1)
        session.append(1, 7.0, "write", proc1, target1)
        session.commit()
        assert store.scan(flt2) and cache.hits == hits_before + 1  # warm
        assert len(store.scan(flt1)) == 3  # fresh, sees the batch

    def test_commit_invalidates_once_per_partition_not_per_event(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        session.append(1, 5.0, "read", proc, target)
        session.commit()
        store.scan(EventFilter(agent_ids=frozenset({1})))
        cache = store.scan_cache
        invalidations_before = cache.invalidations
        for i in range(20):  # one partition, twenty events
            session.append(1, 6.0 + i, "write", proc, target)
        session.commit()
        assert cache.invalidations == invalidations_before + 1

    def test_batch_spanning_partitions_touches_each_once(self):
        _, store, session = make_session(batch_size=100)
        proc, target = entities(session)
        for day in range(3):
            for i in range(5):
                session.append(1, day * DAY + float(i), "read", proc, target)
        session.commit()
        assert len(store.partition_keys) == 3
        assert session.batches_committed == 1
        assert len(store) == 15
