"""Shared executor: one pool per process, never one per scan."""

import threading

from repro.engine.parallel import scan_split
from repro.model.time import DAY, TimeWindow
from repro.service.pool import (
    SharedExecutor,
    get_shared_executor,
    shutdown_shared_executor,
)
from repro.storage.database import EventStore
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme


def _populated_store(executor=None):
    ingestor = Ingestor()
    store = EventStore(
        registry=ingestor.registry,
        scheme=PartitionScheme(agents_per_group=1),
        executor=executor,
    )
    ingestor.attach(store)
    for agent in (1, 2, 3):
        proc = ingestor.process(agent, 100, "bash")
        target = ingestor.file(agent, "/etc/passwd")
        for day in range(4):
            ingestor.emit(agent, day * DAY + 100.0 * agent, "read", proc, target)
    return store


class TestNoPoolPerScan:
    def test_scan_modules_no_longer_construct_pools(self):
        """Regression: the per-call ThreadPoolExecutor construction in
        scan_split and EventStore.scan is gone for good."""
        import repro.engine.parallel as parallel_mod
        import repro.storage.database as database_mod
        import repro.storage.segments as segments_mod

        for mod in (parallel_mod, database_mod, segments_mod):
            assert not hasattr(mod, "ThreadPoolExecutor"), mod.__name__

    def test_many_scans_create_at_most_one_pool(self):
        executor = SharedExecutor(max_workers=2)
        store = _populated_store(executor=executor)
        flt = EventFilter(window=TimeWindow(start=0.0, end=4 * DAY))
        expected = store.scan(flt, parallel=False)
        assert executor.pools_created == 0  # serial scans never touch it
        for _ in range(10):
            assert store.scan(flt, parallel=True) == expected
            assert scan_split(store, flt, executor=executor) == expected
        assert executor.pools_created == 1
        executor.shutdown()

    def test_scan_split_default_uses_process_pool(self):
        store = _populated_store()
        flt = EventFilter(window=TimeWindow(start=0.0, end=4 * DAY))
        shared = get_shared_executor()
        before = shared.pools_created
        assert scan_split(store, flt) == store.scan(flt)
        assert shared.pools_created <= max(before, 1)


class TestProcessWideShutdown:
    def test_idempotent_and_safe_before_first_use(self):
        shutdown_shared_executor()
        shutdown_shared_executor()  # twice in a row must be a no-op

    def test_pool_lazily_rebuilds_after_shutdown(self):
        shared = get_shared_executor()
        before = shared.pools_created
        assert shared.map_all(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        shutdown_shared_executor()
        # The instance survives; the next fan-out builds a fresh pool, so
        # one system closing never breaks another still running.
        assert shared.map_all(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert shared.pools_created >= before
        assert get_shared_executor() is shared

    def test_shutdown_from_own_worker_does_not_deadlock(self):
        shared = get_shared_executor()
        # Two items so map_all actually uses the pool; the shutdown call
        # inside a worker must skip the self-join.
        assert shared.map_all(
            lambda _: shutdown_shared_executor() or "ok", [0, 1]
        ) == ["ok", "ok"]


class TestMapAll:
    def test_preserves_order(self):
        executor = SharedExecutor(max_workers=4)
        assert executor.map_all(lambda x: x * 2, range(10)) == [
            x * 2 for x in range(10)
        ]
        executor.shutdown()

    def test_single_item_runs_inline(self):
        executor = SharedExecutor(max_workers=2)
        thread_ids = executor.map_all(
            lambda _: threading.get_ident(), ["only"]
        )
        assert thread_ids == [threading.get_ident()]
        assert executor.pools_created == 0
        executor.shutdown()

    def test_nested_fanout_runs_inline_and_does_not_deadlock(self):
        executor = SharedExecutor(max_workers=1)

        def outer(_):
            # With one worker, a nested pool submission would deadlock;
            # map_all must detect it is on a worker and run inline.
            assert executor.in_worker()
            return executor.map_all(lambda x: x + 1, [1, 2, 3])

        results = executor.map_all(outer, [0, 0])
        assert results == [[2, 3, 4], [2, 3, 4]]
        executor.shutdown()

    def test_cross_pool_fanout_stays_parallel(self):
        pool_a = SharedExecutor(max_workers=1)
        pool_b = SharedExecutor(max_workers=2)

        def outer(_):
            # A worker of pool A is NOT a worker of pool B: fanning out on
            # B must use B's pool, not degrade to inline execution.
            assert pool_a.in_worker() and not pool_b.in_worker()
            return pool_b.map_all(lambda x: x * 10, [1, 2, 3])

        assert pool_a.map_all(outer, [0, 0]) == [[10, 20, 30]] * 2
        assert pool_b.pools_created == 1
        pool_a.shutdown()
        pool_b.shutdown()
