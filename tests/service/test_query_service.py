"""QueryService: concurrent execution, dedup, cache wiring, correctness."""

import threading

import pytest

from repro import AIQLSystem, SystemConfig
from repro.service import QueryService, ScanCache, SharedExecutor
from repro.workload.corpus import ALL_QUERIES

BASE = 1483228800.0  # 2017-01-01 UTC

DROPPER_QUERY = '''
    agentid = 1
    (at "01/01/2017")
    proc p1 write file f1["/tmp/%"] as evt1
    proc p2 read file f1 as evt2
    with evt1 before evt2
    return distinct p1, f1, p2
'''


def _dropper_system(**config_kwargs) -> AIQLSystem:
    system = AIQLSystem(config=SystemConfig(**config_kwargs))
    ing = system.ingestor
    shell = ing.process(1, 100, "bash", user="alice")
    wget = ing.process(1, 102, "wget", user="alice")
    dropper = ing.file(1, "/tmp/.dropper", owner="alice")
    malware = ing.process(1, 103, ".dropper", user="alice")
    ing.emit(1, BASE + 200, "start", shell, wget)
    ing.emit(1, BASE + 210, "write", wget, dropper, amount=700000)
    ing.emit(1, BASE + 240, "start", shell, malware)
    ing.emit(1, BASE + 250, "read", malware, dropper, amount=700000)
    return system


# A mixed slice of the paper's corpus: multievent + anomaly kinds.
def _corpus_sample(n=6):
    sample = [q for q in ALL_QUERIES if q.kind in ("multievent", "anomaly")]
    return sample[:n]


class TestConcurrentCorrectness:
    def test_concurrent_results_match_serial(self, enterprise):
        store = enterprise.store("partitioned")
        system = AIQLSystem.over(store, ingestor=enterprise.ingestor)
        queries = [q.text for q in _corpus_sample()]
        serial = [system.query(text).rows for text in queries]
        concurrent = [r.rows for r in system.service.run_many(queries)]
        assert concurrent == serial

    @pytest.mark.parametrize(
        "scheduling",
        ("relationship", "relationship_cardinality", "fetch_filter"),
    )
    def test_all_schedulers_agree_through_service(self, enterprise, scheduling):
        """The scheduler-equivalence invariant survives the service path."""
        store = enterprise.store("partitioned")
        reference = QueryService(store, scheduling="relationship")
        service = QueryService(store, scheduling=scheduling)
        queries = [q.text for q in _corpus_sample(4)]
        expected = [sorted(r.rows) for r in reference.run_many(queries)]
        actual = [sorted(r.rows) for r in service.run_many(queries)]
        assert actual == expected

    def test_repeat_batches_hit_scan_cache(self, enterprise):
        store = enterprise.store("partitioned")
        store.scan_cache = ScanCache(max_entries=256)
        try:
            service = QueryService(store)
            queries = [q.text for q in _corpus_sample(3)]
            first = [r.rows for r in service.run_many(queries)]
            warm = store.scan_cache.hits
            second = [r.rows for r in service.run_many(queries)]
            assert second == first
            assert store.scan_cache.hits > warm
        finally:
            store.scan_cache = None

    def test_error_propagates_through_future(self):
        system = _dropper_system()
        from repro.lang.errors import AIQLError

        with pytest.raises(AIQLError):
            system.service.submit("this is not aiql ((").result()


class TestInflightDedup:
    def test_identical_inflight_queries_share_one_future(self):
        system = _dropper_system()
        service = QueryService(
            system.store, executor=SharedExecutor(max_workers=1)
        )
        gate = threading.Event()
        # Occupy the only worker so every submission below stays queued
        # (and therefore in flight) until we open the gate.
        blocker = service._executor.submit(gate.wait)
        variants = [DROPPER_QUERY, DROPPER_QUERY.replace("\n", " \n ")]
        futures = service.submit_many(variants * 3)
        gate.set()
        blocker.result()
        assert len({id(f) for f in futures}) == 1  # whitespace-insensitive
        assert service.stats.deduped == 5
        assert service.stats.submitted == 6
        rows = [f.result().rows for f in futures]
        assert rows == [[("wget", "/tmp/.dropper", ".dropper")]] * 6
        assert service.stats.executed == 1

    def test_completed_queries_are_not_deduped(self):
        system = _dropper_system()
        service = system.service
        first = service.run(DROPPER_QUERY)
        before = service.stats.executed
        second = service.run(DROPPER_QUERY)
        assert second.rows == first.rows
        assert service.stats.executed == before + 1
        assert service.stats.deduped == 0


class TestIngestInvalidation:
    def test_new_events_visible_after_ingest(self):
        system = _dropper_system()
        ing = system.ingestor
        assert system.service.run(DROPPER_QUERY).rows == [
            ("wget", "/tmp/.dropper", ".dropper")
        ]
        curl = ing.process(1, 104, "curl", user="alice")
        stage2 = ing.file(1, "/tmp/.stage2", owner="alice")
        loader = ing.process(1, 105, ".stage2", user="alice")
        ing.emit(1, BASE + 300, "write", curl, stage2, amount=1000)
        ing.emit(1, BASE + 310, "read", loader, stage2, amount=1000)
        assert sorted(system.service.run(DROPPER_QUERY).rows) == [
            ("curl", "/tmp/.stage2", ".stage2"),
            ("wget", "/tmp/.dropper", ".dropper"),
        ]

    def test_cache_disabled_by_config(self):
        system = _dropper_system(scan_cache=False)
        assert system.store.scan_cache is None
        assert system.service.run(DROPPER_QUERY).rows == [
            ("wget", "/tmp/.dropper", ".dropper")
        ]
        assert "scan_cache" not in system.stats()


class TestAnomalyThroughService:
    def test_anomaly_query_matches_direct_execution(self, enterprise):
        anomaly = next(q for q in ALL_QUERIES if q.kind == "anomaly")
        store = enterprise.store("partitioned")
        system = AIQLSystem.over(store, ingestor=enterprise.ingestor)
        direct = system.query(anomaly.text)
        via_service = system.service.run(anomaly.text)
        assert via_service.rows == direct.rows
