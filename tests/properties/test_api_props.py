"""Property tests: the wire codecs are lossless inverses.

``from_json(to_json(m)) == m`` for randomly generated messages of every
type, and paging followed by reassembly returns the original rows — the
round-trip guarantee the versioned API promises its clients.
"""

from hypothesis import given, settings, strategies as st

from repro import api
from repro.engine.result import ResultSet

# Wire-domain scalars: JSON-representable exactly (no NaN/inf — the
# schema's wire_value would pass them but JSON round-trips them as-is,
# and NaN != NaN breaks equality trivially rather than meaningfully).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)

meta_dicts = st.dictionaries(st.text(min_size=1, max_size=12), wire_values, max_size=4)


query_requests = st.builds(
    api.QueryRequest,
    text=st.text(min_size=1, max_size=200).filter(lambda t: t.strip()),
    client_id=st.none() | st.text(min_size=1, max_size=20),
    page_rows=st.none() | st.integers(min_value=1, max_value=10_000),
)

query_pages = st.builds(
    api.QueryPage,
    columns=st.tuples(st.text(max_size=10), st.text(max_size=10)),
    rows=st.lists(st.tuples(scalars, scalars), max_size=8).map(tuple),
    page=st.integers(min_value=0, max_value=100),
    total_rows=st.integers(min_value=0, max_value=10_000),
    last=st.booleans(),
    meta=meta_dicts,
)

alerts = st.builds(
    api.AlertMessage,
    subscription=st.text(max_size=20),
    query=st.text(max_size=80),
    key=st.lists(st.integers(min_value=0, max_value=2**40), max_size=4).map(tuple),
    time=st.floats(allow_nan=False, allow_infinity=False, width=32),
    latency_ms=st.none() | st.floats(min_value=0, max_value=1e6, width=32),
    events=st.lists(meta_dicts, max_size=3).map(tuple),
)

envelopes = st.builds(
    api.ErrorEnvelope,
    code=st.sampled_from(
        [
            api.Code.SYNTAX,
            api.Code.SEMANTIC,
            api.Code.OVERLOADED,
            api.Code.SHARD_TIMEOUT,
            api.Code.INTERNAL,
        ]
    ),
    message=st.text(max_size=100),
    http_status=st.sampled_from([400, 429, 500, 503]),
    retryable=st.booleans(),
    retry_after_s=st.none() | st.floats(min_value=0, max_value=60, width=32),
    detail=meta_dicts,
)

messages = st.one_of(query_requests, query_pages, alerts, envelopes)


@given(messages)
@settings(max_examples=200)
def test_codec_round_trip_is_identity(message):
    assert api.from_json(message.to_json()) == message


@given(
    rows=st.lists(st.tuples(scalars, scalars), max_size=40),
    page_rows=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100)
def test_paging_reassembly_inverts(rows, page_rows):
    result = ResultSet(columns=("a", "b"), rows=list(rows), meta={})
    pages = api.pages_from_result(result, page_rows=page_rows)
    # through the JSON wire
    decoded = [api.from_json(p.to_json()) for p in pages]
    columns, out_rows, _meta = api.result_from_pages(decoded)
    assert columns == ("a", "b")
    assert out_rows == [tuple(api.wire_value(v) for v in r) for r in rows]
    # page indexes are contiguous and exactly one page is last
    assert [p.page for p in pages] == list(range(len(pages)))
    assert sum(1 for p in pages if p.last) == 1 and pages[-1].last
