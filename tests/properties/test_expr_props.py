"""Property tests for moving averages and history-state evaluation."""

from hypothesis import given, settings, strategies as st

from repro.lang.ast import Name
from repro.lang.expr import MappingEnv, cma, evaluate, ewma, sma, wma

values = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=50,
)


@settings(max_examples=100, deadline=None)
@given(series=values, n=st.integers(min_value=1, max_value=60))
def test_sma_bounded_by_extremes(series, n):
    result = sma(series, n)
    window = series[-n:]
    assert min(window) - 1e-6 <= result <= max(window) + 1e-6


@settings(max_examples=100, deadline=None)
@given(series=values)
def test_cma_is_arithmetic_mean(series):
    assert abs(cma(series) - sum(series) / len(series)) < 1e-6


@settings(max_examples=100, deadline=None)
@given(series=values, n=st.integers(min_value=1, max_value=60))
def test_wma_bounded_by_extremes(series, n):
    result = wma(series, n)
    window = series[-n:]
    assert min(window) - 1e-6 <= result <= max(window) + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    series=values,
    alpha=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_ewma_bounded_by_extremes(series, alpha):
    result = ewma(series, alpha)
    assert min(series) - 1e-6 <= result <= max(series) + 1e-6


@settings(max_examples=100, deadline=None)
@given(series=values)
def test_ewma_alpha_one_ignores_new_values(series):
    assert ewma(series, 1.0) == series[0]


@settings(max_examples=100, deadline=None)
@given(series=values)
def test_ewma_alpha_zero_tracks_last_value(series):
    assert ewma(series, 0.0) == series[-1]


@settings(max_examples=100, deadline=None)
@given(series=values, k=st.integers(min_value=0, max_value=49))
def test_history_indexing_matches_series(series, k):
    env = MappingEnv({"x": series})
    if k < len(series):
        assert evaluate(Name("x", k), env) == series[-(k + 1)]


@settings(max_examples=100, deadline=None)
@given(series=values)
def test_constant_series_never_spikes(series):
    """SMA3 spike rule can't fire on a constant positive series."""
    from repro.lang.parser import parse

    q = parse(
        "proc p read file f\nreturn p, count(f) as freq\ngroup by p\n"
        "having freq > 2 * (freq + freq[1] + freq[2]) / 3"
    )
    constant = [series[0]] * 5
    env = MappingEnv({"freq": constant})
    from repro.lang.expr import evaluate_bool

    assert not evaluate_bool(q.filters.having, env)
