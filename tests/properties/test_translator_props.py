"""Property tests: translation never crashes and AIQL stays competitive."""

from hypothesis import given, settings

from repro.baselines.conciseness import text_metrics, translate_all
from tests.properties.test_lang_props import multievent_query


@settings(max_examples=60, deadline=None)
@given(text=multievent_query())
def test_translate_all_total(text):
    """Every generated multievent query translates to all four languages."""
    translated = translate_all(text)
    assert set(translated) == {"aiql", "sql", "cypher", "spl"}
    for language, query in translated.items():
        assert query.text.strip(), language
        assert query.constraints >= 0


@settings(max_examples=60, deadline=None)
@given(text=multievent_query())
def test_sql_never_terser_than_aiql(text):
    """SQL repeats joins + per-alias constraints; it can never be shorter."""
    translated = translate_all(text)
    aiql_words, aiql_chars = text_metrics(translated["aiql"].text)
    sql_words, sql_chars = text_metrics(translated["sql"].text)
    assert sql_words >= aiql_words
    assert sql_chars >= aiql_chars


@settings(max_examples=60, deadline=None)
@given(text=multievent_query())
def test_translation_is_deterministic(text):
    first = translate_all(text)
    second = translate_all(text)
    for language in first:
        assert first[language].text == second[language].text
        assert first[language].constraints == second[language].constraints
