"""Property tests: the shard wire codec round-trips arbitrary results.

The receiver's view must be value-identical to the sender's for any
event population — including >256 distinct agents (the promoted 64-bit
code column) and a sender whose op/otype dictionaries are permuted
relative to ours (the cross-process remap path).
"""

from hypothesis import given, settings, strategies as st

from repro.model.entities import EntityType
from repro.model.events import Operation, SystemEvent
from repro.shard.wire import (
    decode_events,
    decode_result,
    encode_events,
    encode_result,
)
from repro.storage.blocks import BlockScanResult, ColumnBlock, Selection

OPS = tuple(Operation)
OTYPES = tuple(EntityType)


@st.composite
def events(draw, max_agent=8):
    n = draw(st.integers(min_value=0, max_value=80))
    out = []
    for eid in range(1, n + 1):
        start = draw(
            st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32)
        )
        out.append(
            SystemEvent(
                event_id=eid,
                agent_id=draw(st.integers(min_value=1, max_value=max_agent)),
                seq=eid,
                start_time=start,
                end_time=start
                + draw(st.floats(min_value=0, max_value=60, allow_nan=False)),
                operation=draw(st.sampled_from(OPS)),
                subject_id=draw(st.integers(min_value=1, max_value=1 << 40)),
                object_id=draw(st.integers(min_value=1, max_value=1 << 40)),
                object_type=draw(st.sampled_from(OTYPES)),
                amount=draw(st.integers(min_value=0, max_value=1 << 30)),
                failure_code=draw(st.integers(min_value=0, max_value=255)),
            )
        )
    return out


def result_of(batch):
    block = ColumnBlock()
    for event in batch:
        block.append(event)
    return BlockScanResult([Selection(block, range(len(block)))])


def by_time(batch):
    return sorted(batch, key=lambda e: (e.start_time, e.event_id))


@given(events())
@settings(max_examples=60, deadline=None)
def test_event_batch_round_trip(batch):
    assert decode_events(encode_events(batch)) == tuple(batch)


@given(events())
@settings(max_examples=60, deadline=None)
def test_result_round_trip_preserves_values_in_time_order(batch):
    selection = decode_result(encode_result(result_of(batch)))
    if not batch:
        assert selection is None
        return
    assert selection.block.events() == by_time(batch)
    assert selection.block.time_sorted


@given(events(max_agent=400))
@settings(max_examples=25, deadline=None)
def test_result_round_trip_wide_agent_dictionaries(batch):
    selection = decode_result(encode_result(result_of(batch)))
    expected = by_time(batch)
    got = [] if selection is None else selection.block.events()
    assert got == expected


@given(events(), st.integers(min_value=0, max_value=90), st.randoms())
@settings(max_examples=60, deadline=None)
def test_watermark_and_permuted_dictionaries(batch, watermark, rng):
    """Cap at a watermark AND remap from a shuffled sender dictionary."""
    payload = encode_result(result_of(batch), watermark=watermark)
    ops = list(payload["ops"])
    sender_ops = ops[:]
    rng.shuffle(sender_ops)
    local_code = {v: c for c, v in enumerate(ops)}
    remap = {local_code[v]: code for code, v in enumerate(sender_ops)}
    payload["ops"] = tuple(sender_ops)
    payload["op"] = bytes(remap[c] for c in payload["op"])
    selection = decode_result(payload)
    expected = by_time([e for e in batch if e.event_id <= watermark])
    got = [] if selection is None else selection.block.events()
    assert got == expected
