"""Property tests: WAL replay idempotence and watermark exactness.

For random batch sequences, interleaved crash points, checkpoint/compaction
interleavings and retention horizons:

* the committed-event watermark after recovery equals the watermark of the
  last durably committed batch (staged-but-uncommitted events vanish,
  acknowledged ones never do);
* recovered content equals the live content observed right after that
  commit, event for event;
* replay is idempotent — recovering the same data dir twice (the second
  time over the artifacts the first recovery left behind) converges to the
  same state.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.storage.filters import EventFilter

from tests.tier.conftest import day_ts

OPS = ("write", "read")


@st.composite
def batch_plan(draw):
    """A sequence of batches plus crash/checkpoint/compaction choices."""
    batches = draw(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=1, max_value=3),  # agent
                    st.integers(min_value=0, max_value=6),  # day
                    st.integers(min_value=0, max_value=80),  # minute
                    st.sampled_from(OPS),
                ),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=6,
        )
    )
    crash_after = draw(st.integers(min_value=0, max_value=len(batches)))
    checkpoint_after = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=len(batches)))
    )
    compact_after = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=len(batches)))
    )
    retention = draw(st.integers(min_value=1, max_value=8))
    staged_tail = draw(st.integers(min_value=0, max_value=3))
    return batches, crash_after, checkpoint_after, compact_after, retention, staged_tail


def content(system):
    return [
        (e.event_id, e.agent_id, e.seq, e.start_time, e.operation.value)
        for e in system.store.scan(EventFilter())
    ]


@given(plan=batch_plan())
@settings(max_examples=25, deadline=None)
def test_recovery_watermark_equals_last_durable_commit(plan):
    batches, crash_after, checkpoint_after, compact_after, retention, staged = plan
    with tempfile.TemporaryDirectory() as root:
        data_dir = str(Path(root) / "data")
        system = AIQLSystem(
            SystemConfig(data_dir=data_dir, compact_interval_s=3600)
        )
        entities = {
            agent: (
                system.ingestor.process(agent, 100 + agent, f"w{agent}.exe"),
                system.ingestor.file(agent, f"/var/a{agent}.log"),
            )
            for agent in (1, 2, 3)
        }
        session = system.stream(batch_size=10 ** 9)  # commit manually

        watermark = 0
        live_content = content(system)
        for index, batch in enumerate(batches[:crash_after], start=1):
            for agent, day, minute, op in batch:
                proc, fobj = entities[agent]
                session.append(agent, day_ts(day, 60.0 * minute), op, proc, fobj)
            watermark = session.commit()
            live_content = content(system)
            if checkpoint_after == index:
                system.checkpoint()
            if compact_after == index:
                system.compact(retention)
        # stage a tail that is never committed: it must not survive
        for _ in range(staged):
            proc, fobj = entities[1]
            session.append(1, day_ts(0, 30.0), "write", proc, fobj)
        del session
        del system  # crash: no close(), no final commit

        recovered = AIQLSystem.recover(data_dir)
        try:
            assert recovered.ingestor.events_ingested == watermark
            assert content(recovered) == live_content
        finally:
            recovered.close()

        # idempotence: recovering the recovered dir converges
        again = AIQLSystem.recover(data_dir)
        try:
            assert again.ingestor.events_ingested == watermark
            assert content(again) == live_content
        finally:
            again.close()


@given(plan=batch_plan())
@settings(max_examples=15, deadline=None)
def test_compaction_preserves_content_under_any_horizon(plan):
    batches, _, _, _, retention, _ = plan
    with tempfile.TemporaryDirectory() as root:
        data_dir = str(Path(root) / "data")
        system = AIQLSystem(
            SystemConfig(data_dir=data_dir, compact_interval_s=3600)
        )
        entities = {
            agent: (
                system.ingestor.process(agent, 100 + agent, f"w{agent}.exe"),
                system.ingestor.file(agent, f"/var/a{agent}.log"),
            )
            for agent in (1, 2, 3)
        }
        with system.stream(batch_size=4) as session:
            for batch in batches:
                for agent, day, minute, op in batch:
                    proc, fobj = entities[agent]
                    session.append(
                        agent, day_ts(day, 60.0 * minute), op, proc, fobj
                    )
        before = content(system)
        system.compact(retention)
        assert content(system) == before
        system.compact(retention)  # a second pass must change nothing
        assert content(system) == before
        system.close()
