"""Property tests: window splitting and scan-cache invalidation.

``split_window`` drives the temporal parallelization (paper Sec. 5.2); the
scan cache must stay coherent under arbitrary interleavings of scans and
ingest.  Both get the randomized treatment here.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.parallel import split_window
from repro.model.time import DAY, HOUR, MINUTE, TimeWindow
from repro.service.cache import ScanCache
from repro.storage.database import EventStore
from repro.storage.filters import AttrPredicate, EventFilter, PredicateLeaf
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme

# Exactly representable floats so boundary arithmetic stays exact.
GRANULARITIES = (0.5, 1.0, MINUTE, HOUR, 97.0, DAY)

@st.composite
def window_and_granularity(draw):
    """A granularity plus a window spanning at most ~100 cells of it
    (keeps the piece count bounded for sub-second granularities)."""
    granularity = draw(st.sampled_from(GRANULARITIES))
    start = draw(
        st.floats(min_value=0.0, max_value=100 * granularity, allow_nan=False)
    )
    length = draw(
        st.floats(min_value=0.0, max_value=100 * granularity, allow_nan=False)
    )
    return TimeWindow(start=start, end=start + length), granularity


@settings(max_examples=200, deadline=None)
@given(pair=window_and_granularity())
def test_split_covers_window_exactly(pair):
    window, granularity = pair
    pieces = split_window(window, granularity)
    assert pieces[0].start == window.start
    assert pieces[-1].end == window.end
    for a, b in zip(pieces, pieces[1:]):
        assert a.end == b.start


@settings(max_examples=200, deadline=None)
@given(pair=window_and_granularity())
def test_interior_boundaries_are_aligned(pair):
    window, granularity = pair
    pieces = split_window(window, granularity)
    for piece in pieces[1:]:
        assert piece.start % granularity == 0.0
    for piece in pieces[:-1]:
        assert piece.end % granularity == 0.0
    # No piece may be longer than the granularity.
    for piece in pieces:
        assert piece.end - piece.start <= granularity


@settings(max_examples=100, deadline=None)
@given(
    cell=st.integers(min_value=0, max_value=1000),
    offset=st.floats(min_value=0.0, max_value=0.999),
    fraction=st.floats(min_value=0.0, max_value=0.999),
    granularity=st.sampled_from(GRANULARITIES),
)
def test_window_shorter_than_granularity_splits_at_most_once(
    cell, offset, fraction, granularity
):
    start = (cell + offset) * granularity
    window = TimeWindow(start=start, end=start + fraction * granularity)
    pieces = split_window(window, granularity)
    # A sub-granularity window overlaps one aligned cell, or straddles a
    # single boundary — never more.
    assert len(pieces) <= 2


@settings(max_examples=100, deadline=None)
@given(
    cell=st.integers(min_value=0, max_value=50),
    cells=st.integers(min_value=1, max_value=20),
    granularity=st.sampled_from(GRANULARITIES),
)
def test_boundary_aligned_window_yields_whole_cells(cell, cells, granularity):
    window = TimeWindow(
        start=cell * granularity, end=(cell + cells) * granularity
    )
    pieces = split_window(window, granularity)
    assert len(pieces) == cells
    assert all(p.end - p.start == granularity for p in pieces)


# -- scan-cache coherence under ingest ------------------------------------

EXES = ("bash", "vim", "nmap", "sshd")
FILES = ("/etc/passwd", "/var/log/syslog", "/home/u/x")


@st.composite
def event_stream(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    return [
        (
            draw(st.integers(min_value=1, max_value=3)),
            draw(st.floats(min_value=0, max_value=3 * DAY, allow_nan=False)),
            draw(st.sampled_from(("read", "write", "delete"))),
            draw(st.sampled_from(EXES)),
            draw(st.sampled_from(FILES)),
        )
        for _ in range(n)
    ]


@st.composite
def random_filter(draw):
    kwargs = {}
    if draw(st.booleans()):
        kwargs["agent_ids"] = frozenset(
            draw(st.sets(st.integers(min_value=1, max_value=3), min_size=1,
                         max_size=2))
        )
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0, max_value=2 * DAY, allow_nan=False))
        length = draw(st.floats(min_value=0, max_value=2 * DAY, allow_nan=False))
        kwargs["window"] = TimeWindow(start=start, end=start + length)
    if draw(st.booleans()):
        kwargs["subject_pred"] = PredicateLeaf(
            AttrPredicate("exe_name", "=", draw(st.sampled_from(EXES)))
        )
    return EventFilter(**kwargs)


@settings(max_examples=40, deadline=None)
@given(
    stream=event_stream(),
    flt=random_filter(),
    split=st.integers(min_value=0, max_value=40),
)
def test_cached_scans_stay_coherent_across_ingest(stream, flt, split):
    """Scan, ingest more events, scan again: the cached store must always
    agree with the index-free oracle."""
    ingestor = Ingestor()
    store = EventStore(
        registry=ingestor.registry,
        scheme=PartitionScheme(agents_per_group=1),
        scan_cache=ScanCache(max_entries=32),
    )
    ingestor.attach(store)

    def emit(record):
        agent, t, op, exe, fname = record
        proc = ingestor.process(agent, 7, exe)
        ingestor.emit(agent, t, op, proc, ingestor.file(agent, fname))

    split = min(split, len(stream))
    for record in stream[:split]:
        emit(record)
    assert store.scan(flt) == store.full_scan(flt)  # populate cache
    for record in stream[split:]:
        emit(record)
    assert store.scan(flt) == store.full_scan(flt)  # post-ingest coherence
    assert store.scan(flt) == store.full_scan(flt)  # warm-hit coherence
