"""Property tests: tracing is a pure observer of query execution.

Three invariants, over random event streams and the query shapes the
scheduler property suite uses:

* span trees are well-formed — children nest inside their parent's
  lifetime, so child durations sum to at most the parent's;
* the per-pattern ``scan`` spans report exactly the scheduler's actual
  intermediate cardinalities (``rows`` attrs vs ``SchedulerStats``);
* running under a trace changes no results, on all four backends.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.scheduler import RelationshipScheduler
from repro.model.time import DAY
from repro.obs.trace import Trace, activate
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore
from tests.conftest import compile_text

EXES = ("bash", "vim", "sshd")
FILES = ("/a", "/b", "/c")

QUERIES = [
    "proc p1 start proc p2 as e1\n"
    "proc p2 read file f1 as e2\n"
    "with e1 before e2\nreturn p1, p2, f1",
    "proc p1 read file f1 as e1\n"
    "proc p2 write file f2 as e2\n"
    "with f1 = f2\nreturn p1, p2, f1",
    'proc p1["bash"] read file f1 as e1\n'
    'proc p2["vim"] write file f2 as e2\n'
    "return p1, f1, p2, f2",
]


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    events = []
    for _ in range(n):
        t = draw(st.floats(min_value=0, max_value=DAY, allow_nan=False))
        kind = draw(st.sampled_from(["read", "write", "start"]))
        subject = draw(st.sampled_from(EXES))
        if kind == "start":
            events.append((t, kind, subject, ("proc", draw(st.sampled_from(EXES)))))
        else:
            events.append((t, kind, subject, ("file", draw(st.sampled_from(FILES)))))
    return events


def build(events):
    """All four backends fed the identical stream."""
    ingestor = Ingestor()
    stores = [
        EventStore(registry=ingestor.registry, scheme=PartitionScheme()),
        FlatStore(registry=ingestor.registry),
        SegmentedStore(registry=ingestor.registry, segments=3, policy="domain"),
        SegmentedStore(registry=ingestor.registry, segments=3, policy="arrival"),
    ]
    for store in stores:
        ingestor.attach(store)
    pid = {exe: i for i, exe in enumerate(EXES, start=10)}
    for t, kind, subject_exe, (okind, oname) in events:
        subject = ingestor.process(1, pid[subject_exe], subject_exe)
        if okind == "file":
            obj = ingestor.file(1, oname)
        else:
            obj = ingestor.process(1, pid[oname] + 100, oname)
        ingestor.emit(1, t, kind, subject, obj)
    return stores


def row_key(ts):
    return {tuple(e.event_id for e in row) for row in ts.rows}


def subtree_spans(span):
    out = [span]
    for child in span.children:
        out.extend(subtree_spans(child))
    return out


@settings(max_examples=25, deadline=None)
@given(events=scenario(), query_index=st.integers(min_value=0, max_value=2))
def test_span_tree_well_formed(events, query_index):
    store = build(events)[0]
    ctx = compile_text(QUERIES[query_index])
    trace = Trace("query")
    with activate(trace):
        RelationshipScheduler(store).run(ctx)
    for span in subtree_spans(trace.root):
        assert span.ended is not None
        assert span.duration_s >= 0.0
        child_total = sum(c.duration_s for c in span.children)
        assert child_total <= span.duration_s + 1e-6
        for child in span.children:
            assert child.started >= span.started - 1e-9
            assert child.ended <= span.ended + 1e-9


@settings(max_examples=25, deadline=None)
@given(events=scenario(), query_index=st.integers(min_value=0, max_value=2))
def test_scan_spans_report_scheduler_cardinalities(events, query_index):
    store = build(events)[0]
    ctx = compile_text(QUERIES[query_index])
    scheduler = RelationshipScheduler(store)
    trace = Trace("query")
    with activate(trace):
        scheduler.run(ctx)
    scans = trace.root.find("scan")
    stats = scheduler.stats
    assert len(scans) == stats.data_queries_executed
    assert [s.attrs["pattern"] for s in scans] == stats.order
    assert sum(s.attrs["rows"] for s in scans) == stats.events_fetched
    assert (
        sum(1 for s in scans if s.attrs.get("constrained"))
        == stats.constrained_executions
    )
    for span in scans:
        # The storage layer's selectivity accounting agrees with the
        # scheduler's cardinality for the same execution.
        assert span.counters["rows_selected"] == span.attrs["rows"]
        assert span.counters["rows_scanned"] >= span.attrs["rows"]


@settings(max_examples=25, deadline=None)
@given(events=scenario(), query_index=st.integers(min_value=0, max_value=2))
def test_tracing_changes_no_results_on_any_backend(events, query_index):
    stores = build(events)
    ctx = compile_text(QUERIES[query_index])
    for store in stores:
        untraced = row_key(RelationshipScheduler(store).run(ctx))
        with activate(Trace("query")):
            traced = row_key(RelationshipScheduler(store).run(ctx))
        assert traced == untraced
