"""Property tests: storage soundness under random events and filters."""

from hypothesis import given, settings, strategies as st

from repro.model.entities import EntityType
from repro.model.time import DAY, TimeWindow
from repro.storage.database import EventStore
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateLeaf,
)
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore

EXES = ("bash", "vim", "nmap", "sshd", "cmd.exe")
FILES = ("/etc/passwd", "/var/log/syslog", "/home/u/x", "C:/Windows/SAM")
OPS_FILE = ("read", "write", "delete")
OPS_PROC = ("start",)


@st.composite
def event_stream(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    events = []
    for _ in range(n):
        agent = draw(st.integers(min_value=1, max_value=4))
        t = draw(st.floats(min_value=0, max_value=3 * DAY, allow_nan=False))
        kind = draw(st.sampled_from(["file", "proc"]))
        exe = draw(st.sampled_from(EXES))
        if kind == "file":
            events.append((agent, t, draw(st.sampled_from(OPS_FILE)), exe,
                           ("file", draw(st.sampled_from(FILES)))))
        else:
            events.append((agent, t, "start", exe,
                           ("proc", draw(st.sampled_from(EXES)))))
    return events


@st.composite
def random_filter(draw):
    kwargs = {}
    if draw(st.booleans()):
        kwargs["agent_ids"] = frozenset(
            draw(st.sets(st.integers(min_value=1, max_value=4), min_size=1,
                         max_size=2))
        )
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0, max_value=2 * DAY, allow_nan=False))
        length = draw(st.floats(min_value=0, max_value=2 * DAY, allow_nan=False))
        kwargs["window"] = TimeWindow(start=start, end=start + length)
    if draw(st.booleans()):
        kwargs["subject_pred"] = PredicateLeaf(
            AttrPredicate("exe_name", "=", draw(st.sampled_from(EXES)))
        )
    if draw(st.booleans()):
        kwargs["object_type"] = draw(
            st.sampled_from([EntityType.FILE, EntityType.PROCESS])
        )
    return EventFilter(**kwargs)


def build_stores(stream):
    ingestor = Ingestor()
    stores = {
        "partitioned": EventStore(
            registry=ingestor.registry,
            scheme=PartitionScheme(agents_per_group=2),
        ),
        "flat": FlatStore(registry=ingestor.registry),
        "domain": SegmentedStore(registry=ingestor.registry, segments=3,
                                 policy="domain"),
        "arrival": SegmentedStore(registry=ingestor.registry, segments=3,
                                  policy="arrival"),
    }
    for s in stores.values():
        ingestor.attach(s)
    pid = 100
    for agent, t, op, exe, (okind, oname) in stream:
        subject = ingestor.process(agent, 1, exe)
        if okind == "file":
            obj = ingestor.file(agent, oname)
        else:
            pid += 1
            obj = ingestor.process(agent, pid, oname)
        ingestor.emit(agent, t, op, subject, obj)
    return stores


@settings(max_examples=40, deadline=None)
@given(stream=event_stream(), flt=random_filter())
def test_partition_pruning_is_sound(stream, flt):
    """EventStore with pruning+indexes == index-free full scan."""
    stores = build_stores(stream)
    store = stores["partitioned"]
    assert store.scan(flt) == store.full_scan(flt)


@settings(max_examples=40, deadline=None)
@given(stream=event_stream(), flt=random_filter())
def test_all_backends_agree(stream, flt):
    """Partitioned / flat / both segment policies return identical scans."""
    stores = build_stores(stream)
    reference = stores["flat"].scan(flt)
    for name in ("partitioned", "domain", "arrival"):
        assert stores[name].scan(flt) == reference


@settings(max_examples=25, deadline=None)
@given(stream=event_stream(), flt=random_filter())
def test_parallel_scan_matches_serial(stream, flt):
    stores = build_stores(stream)
    store = stores["partitioned"]
    assert store.scan(flt, parallel=True) == store.scan(flt, parallel=False)
