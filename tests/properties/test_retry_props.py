"""Property tests: retry backoff bounds and fault-plan determinism.

The guarantees the fault-tolerant coordinator leans on:

* every backoff delay a :class:`RetryPolicy` draws is non-negative and
  bounded by ``max_delay_s * (1 + jitter)``, the schedule has exactly
  ``attempts - 1`` entries, and its sum never exceeds
  :attr:`RetryPolicy.max_total_delay_s` — so a supervised retry loop's
  total wait is bounded by construction;
* seeded schedules and seeded :class:`FaultPlan` generation are pure
  functions of their inputs — the property that makes a chaos run
  replayable bit-for-bit.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.retry import RetryPolicy
from repro.shard.chaos import ACTIONS, FaultPlan

policies = st.builds(
    RetryPolicy,
    attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    max_delay_s=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    multiplier=st.integers(min_value=1, max_value=4).map(float),
    jitter=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
)


class TestBackoffBounds:
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=200)
    def test_every_delay_is_bounded(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) == policy.attempts - 1
        ceiling = policy.max_delay_s * (1.0 + policy.jitter)
        for delay in delays:
            assert 0.0 <= delay <= ceiling + 1e-9

    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=200)
    def test_total_wait_is_bounded(self, policy, seed):
        total = sum(policy.delays(random.Random(seed)))
        assert total <= policy.max_total_delay_s + 1e-9

    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100)
    def test_seeded_schedule_is_deterministic(self, policy, seed):
        first = list(policy.delays(random.Random(seed)))
        second = list(policy.delays(random.Random(seed)))
        assert first == second

    @given(policy=policies)
    @settings(max_examples=100)
    def test_jitterless_schedule_is_monotone_nondecreasing(self, policy):
        policy = RetryPolicy(
            attempts=policy.attempts,
            base_delay_s=policy.base_delay_s,
            max_delay_s=policy.max_delay_s,
            multiplier=policy.multiplier,
            jitter=0.0,
        )
        delays = list(policy.delays())
        assert delays == sorted(delays)


class TestFaultPlanDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200)
    def test_same_inputs_same_plan(self, seed, shards):
        assert FaultPlan.generate(seed, shards) == FaultPlan.generate(
            seed, shards
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200)
    def test_generated_faults_are_well_formed(self, seed, shards):
        plan = FaultPlan.generate(seed, shards)
        assert plan.faults
        for fault in plan.faults:
            assert 0 <= fault.shard < shards
            assert fault.action in ACTIONS
            assert fault.at_command >= 0

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200)
    def test_spec_roundtrip_preserves_faults(self, seed, shards):
        plan = FaultPlan.generate(seed, shards)
        rebuilt = FaultPlan.from_spec(plan.to_spec(), shards)
        assert rebuilt.faults == plan.faults

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        shards=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=100)
    def test_shard_partition_covers_plan(self, seed, shards):
        plan = FaultPlan.generate(seed, shards)
        scattered = [
            fault
            for index in range(shards)
            for fault in plan.for_shard(index)
        ]
        assert sorted(scattered, key=repr) == sorted(plan.faults, key=repr)
