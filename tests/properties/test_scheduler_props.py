"""Property tests: all execution strategies return identical result sets.

This is the paper's core correctness invariant — relationship-based
scheduling (Algorithm 1), fetch-and-filter, and the monolithic baseline
join differ only in cost, never in results.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.scheduler import FetchFilterScheduler, RelationshipScheduler
from repro.model.time import DAY
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from tests.conftest import compile_text

EXES = ("bash", "vim", "sshd")
FILES = ("/a", "/b", "/c")

QUERIES = [
    # two patterns joined by entity reuse + temporal order
    "proc p1 start proc p2 as e1\n"
    "proc p2 read file f1 as e2\n"
    "with e1 before e2\nreturn p1, p2, f1",
    # two patterns joined by explicit attribute relationship
    "proc p1 read file f1 as e1\n"
    "proc p2 write file f2 as e2\n"
    "with f1 = f2\nreturn p1, p2, f1",
    # disconnected patterns (pure cross product)
    'proc p1["bash"] read file f1 as e1\n'
    'proc p2["vim"] write file f2 as e2\n'
    "return p1, f1, p2, f2",
    # three-pattern chain
    "proc p1 start proc p2 as e1\n"
    "proc p2 read file f1 as e2\n"
    "proc p2 write file f2 as e3\n"
    "with e1 before e2, e2 before e3\nreturn p1, p2, f1, f2",
]


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    events = []
    for _ in range(n):
        t = draw(st.floats(min_value=0, max_value=DAY, allow_nan=False))
        kind = draw(st.sampled_from(["read", "write", "start"]))
        subject = draw(st.sampled_from(EXES))
        if kind == "start":
            events.append((t, kind, subject, ("proc", draw(st.sampled_from(EXES)))))
        else:
            events.append((t, kind, subject, ("file", draw(st.sampled_from(FILES)))))
    return events


def build(events):
    ingestor = Ingestor()
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    pid = {exe: i for i, exe in enumerate(EXES, start=10)}
    next_child = [1000]
    for t, kind, subject_exe, (okind, oname) in events:
        subject = ingestor.process(1, pid[subject_exe], subject_exe)
        if okind == "file":
            obj = ingestor.file(1, oname)
        else:
            # child processes: one pid per (parent, name) pair keeps the
            # entity population small enough for cross products
            obj = ingestor.process(1, pid[oname] + 100, oname)
        ingestor.emit(1, t, kind, subject, obj)
    return store


def row_sets(store, ctx):
    rel = RelationshipScheduler(store).run(ctx)
    ff = FetchFilterScheduler(store).run(ctx)
    mono = MonolithicJoinEngine(store).join(ctx)
    key = lambda ts: {tuple(e.event_id for e in row) for row in ts.rows}
    return key(rel), key(ff), key(mono)


@settings(max_examples=30, deadline=None)
@given(events=scenario(), query_index=st.integers(min_value=0, max_value=3))
def test_strategies_agree(events, query_index):
    store = build(events)
    ctx = compile_text(QUERIES[query_index])
    rel, ff, mono = row_sets(store, ctx)
    assert rel == ff == mono


@settings(max_examples=30, deadline=None)
@given(events=scenario())
def test_single_pattern_matches_direct_scan(events):
    store = build(events)
    ctx = compile_text('proc p1["bash"] read file f1 as e1\nreturn p1, f1')
    rel, ff, mono = row_sets(store, ctx)
    direct = {
        (e.event_id,)
        for e in store.scan(ctx.patterns[0].filter)
    }
    assert rel == ff == mono == direct
