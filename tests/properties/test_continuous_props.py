"""Property tests: sliding-window eviction and delta-join correctness.

Two invariants of :mod:`repro.service.continuous`:

* **Windows are exactly the in-horizon matches** — whatever the batch
  sizes and timestamp order, after every push a pattern's window holds
  precisely the matching events with ``start_time > high_water - horizon``
  (the high-water mark being the newest start time pushed so far).
* **Delta evaluation == full re-evaluation** — the alerts accumulated by
  the incremental engine equal an oracle that, after every batch, joins
  the full in-horizon windows from scratch and accumulates every tuple it
  has ever seen.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.continuous import ContinuousQueryEngine
from repro.storage.ingest import Ingestor

DAY0 = 1_483_228_800.0  # 2017-01-01

SINGLE = "proc p1 read file f1 as evt1 return p1, f1"
PAIR = """
    proc p1 write file f1 as evt1
    proc p2 read file f1 as evt2
    with evt1 before evt2
    return p1, f1, p2
"""


def build_entities(ingestor):
    procs = [ingestor.process(1, 10 + i, f"proc{i}") for i in range(3)]
    files = [ingestor.file(1, f"/data/f{i}") for i in range(3)]
    return procs, files


# One stream: a list of (offset_seconds, op, proc_index, file_index)
# observations, plus a batch split and a horizon.
events_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=500),
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=30,
)
horizon_strategy = st.floats(min_value=1.0, max_value=600.0)
split_strategy = st.lists(
    st.integers(min_value=1, max_value=7), min_size=1, max_size=10
)


def batches_of(events, splits):
    """Partition ``events`` into batches sized by cycling ``splits``."""
    out, i, s = [], 0, 0
    while i < len(events):
        size = splits[s % len(splits)]
        out.append(events[i : i + size])
        i += size
        s += 1
    return out


@settings(max_examples=60, deadline=None)
@given(events=events_strategy, horizon=horizon_strategy, splits=split_strategy)
def test_window_contents_are_exactly_the_in_horizon_matches(
    events, horizon, splits
):
    ingestor = Ingestor()
    procs, files = build_entities(ingestor)
    engine = ContinuousQueryEngine(
        ingestor.registry, default_window_s=horizon
    )
    sub = engine.subscribe(SINGLE)

    built = [
        ingestor.build_event(1, DAY0 + off, op, procs[p], files[f])
        for off, op, p, f in events
    ]
    pushed = []
    for batch in batches_of(built, splits):
        engine.push(batch)
        pushed.extend(batch)
        high_water = max(e.start_time for e in pushed)
        expected = {
            e.event_id
            for e in pushed
            if e.operation.value == "read"
            and e.start_time > high_water - horizon
        }
        assert set(sub.window_snapshot()[0]) == expected


@settings(max_examples=60, deadline=None)
@given(events=events_strategy, horizon=horizon_strategy, splits=split_strategy)
def test_delta_evaluation_matches_full_recompute(events, horizon, splits):
    ingestor = Ingestor()
    procs, files = build_entities(ingestor)
    engine = ContinuousQueryEngine(
        ingestor.registry, default_window_s=horizon
    )
    sub = engine.subscribe(PAIR)

    built = [
        ingestor.build_event(1, DAY0 + off, op, procs[p], files[f])
        for off, op, p, f in events
    ]
    # Oracle: after each batch, join the full in-horizon windows from
    # scratch and accumulate every tuple ever producible.
    oracle = set()
    pushed = []
    for batch in batches_of(built, splits):
        engine.push(batch)
        pushed.extend(batch)
        high_water = max(e.start_time for e in pushed)
        cutoff = high_water - horizon
        writes = [
            e
            for e in pushed
            if e.operation.value == "write" and e.start_time > cutoff
        ]
        reads = [
            e
            for e in pushed
            if e.operation.value == "read" and e.start_time > cutoff
        ]
        for w in writes:
            for r in reads:
                if (
                    w.object_id == r.object_id
                    and r.start_time - w.start_time > 0
                ):
                    oracle.add((w.event_id, r.event_id))
        assert sub.seen == oracle
