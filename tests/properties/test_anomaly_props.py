"""Property tests: sliding-window aggregation vs brute-force recomputation.

The anomaly executor buckets matched events into window positions once and
maintains aligned per-group series; this oracle recomputes every window's
aggregate from scratch and compares.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.anomaly import AnomalyExecutor
from repro.lang.context import compile_multievent
from repro.lang.parser import parse
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.workload.topology import BASE_DAY

WINDOW = 120.0
STEP = 30.0
SPAN = 3600.0  # constrain events to the first hour of the day

QUERY_TEXT = """
(from "01/01/2017" to "01/01/2017 01:00:00")
agentid = 1
window = 2 min, step = 30 sec
proc p write ip i as evt
return p, sum(evt.amount) as total
group by p
having total >= 0
"""


@st.composite
def transfer_events(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    events = []
    for _ in range(n):
        offset = draw(st.floats(min_value=0, max_value=SPAN - 1, allow_nan=False))
        proc = draw(st.sampled_from(["alpha", "beta"]))
        amount = draw(st.integers(min_value=1, max_value=10000))
        events.append((offset, proc, amount))
    return events


def build_store(events):
    ingestor = Ingestor()
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    sink = ingestor.connection(1, "10.0.0.1", 1, "203.0.113.1", 443)
    procs = {
        "alpha": ingestor.process(1, 1, "alpha"),
        "beta": ingestor.process(1, 2, "beta"),
    }
    for offset, proc, amount in events:
        ingestor.emit(1, BASE_DAY + offset, "write", procs[proc], sink,
                      amount=amount)
    return store


def brute_force(events):
    """Expected (proc, total, window_start_offset) triples, totals > 0."""
    expected = set()
    start = 0.0
    while start + WINDOW <= SPAN + 1e-9:
        for proc in ("alpha", "beta"):
            total = sum(
                amount
                for offset, p, amount in events
                if p == proc and start <= offset < start + WINDOW
            )
            if total > 0:
                expected.add((proc, float(total), start))
        start += STEP
    return expected


@settings(max_examples=40, deadline=None)
@given(events=transfer_events())
def test_window_aggregates_match_brute_force(events):
    store = build_store(events)
    ctx = compile_multievent(parse(QUERY_TEXT))
    result = AnomalyExecutor(store).run(ctx)
    got = set()
    for proc, total, window_start in result.rows:
        # window_start is rendered as UTC text; recover the offset
        import datetime as dt

        ts = (
            dt.datetime.strptime(window_start, "%Y-%m-%d %H:%M:%S")
            .replace(tzinfo=dt.timezone.utc)
            .timestamp()
        )
        got.add((proc, float(total), ts - BASE_DAY))
    assert got == brute_force(events)


@settings(max_examples=30, deadline=None)
@given(events=transfer_events())
def test_count_windows_complete(events):
    store = build_store(events)
    ctx = compile_multievent(parse(QUERY_TEXT))
    result = AnomalyExecutor(store).run(ctx)
    expected_windows = int((SPAN - WINDOW) // STEP) + 1
    assert result.meta["windows"] == expected_windows
