"""Property tests: random query generation -> parse/format round trips."""

from hypothesis import given, settings, strategies as st

from repro.lang.formatter import format_query
from repro.lang.parser import parse

ids = st.sampled_from(["p1", "p2", "p3", "f1", "f2", "i1"])
proc_ids = st.sampled_from(["p1", "p2", "p3"])
values = st.sampled_from(['"%cmd%"', '"%x.log"', "4444", '"10.0.0.1"'])
attrs = st.sampled_from(["pid", "user", "exe_name"])
file_attrs = st.sampled_from(["name", "owner"])


@st.composite
def entity(draw, type_name, id_pool):
    text = type_name
    if draw(st.booleans()):
        text += " " + draw(id_pool)
    if draw(st.booleans()):
        if type_name == "proc" and draw(st.booleans()):
            text += f"[{draw(attrs)} = {draw(values)}]"
        else:
            text += f"[{draw(values)}]"
    return text


@st.composite
def pattern(draw, index):
    kind = draw(st.sampled_from(["file", "proc", "ip"]))
    subject = draw(entity("proc", proc_ids))
    if kind == "file":
        op = draw(st.sampled_from(["read", "write", "read || write", "delete"]))
        obj = draw(entity("file", st.sampled_from(["f1", "f2"])))
    elif kind == "proc":
        op = "start"
        obj = draw(entity("proc", proc_ids))
    else:
        op = draw(st.sampled_from(["connect", "read", "send"]))
        obj = draw(entity("ip", st.sampled_from(["i1", "i2"])))
    return f"{subject} {op} {obj} as evt{index}"


@st.composite
def multievent_query(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    lines = []
    if draw(st.booleans()):
        lines.append(f"agentid = {draw(st.integers(min_value=1, max_value=9))}")
    if draw(st.booleans()):
        lines.append('(at "01/01/2017")')
    patterns = [draw(pattern(i + 1)) for i in range(n)]
    lines.extend(patterns)
    rels = []
    if n >= 2 and draw(st.booleans()):
        rels.append("evt1 before evt2")
    if rels:
        lines.append("with " + ", ".join(rels))
    lines.append("return evt1.optype, evt1.amount")
    if draw(st.booleans()):
        lines.append(f"top {draw(st.integers(min_value=1, max_value=100))}")
    return "\n".join(lines)


@settings(max_examples=120, deadline=None)
@given(text=multievent_query())
def test_format_parse_fixpoint(text):
    """format(parse(q)) parses, and formatting again is a fixpoint."""
    tree = parse(text)
    once = format_query(tree)
    reparsed = parse(once)
    twice = format_query(reparsed)
    assert once == twice
    assert len(tree.patterns) == len(reparsed.patterns)
    assert len(tree.relationships) == len(reparsed.relationships)


@settings(max_examples=120, deadline=None)
@given(text=multievent_query())
def test_parsing_is_deterministic(text):
    assert parse(text) == parse(text)
