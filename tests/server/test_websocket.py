"""RFC 6455 framing: codec, masking, control frames, handshake."""

import asyncio
import struct

import pytest

from repro.server.websocket import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WebSocket,
    WebSocketError,
    accept_key,
    encode_frame,
    read_frame,
)


def _reader(data: bytes) -> asyncio.StreamReader:
    # must run inside a loop — call only from within asyncio.run
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class _SinkWriter:
    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data.extend(chunk)

    async def drain(self) -> None:
        pass


def _read_one(data: bytes):
    async def go():
        return await read_frame(_reader(data))

    return asyncio.run(go())


def _with_ws(data: bytes, scenario, client: bool = False):
    """Build a WebSocket over canned bytes inside a loop, run scenario."""

    async def go():
        sink = _SinkWriter()
        ws = WebSocket(_reader(data), sink, client=client)
        result = await scenario(ws)
        return result, bytes(sink.data), ws

    return asyncio.run(go())


class TestFrameCodec:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536])
    def test_lengths_round_trip(self, size):
        payload = bytes(i % 251 for i in range(size))
        opcode, out = _read_one(encode_frame(OP_TEXT, payload))
        assert opcode == OP_TEXT and out == payload

    def test_masked_frames_unmask(self):
        payload = b"masked payload"
        frame = encode_frame(OP_TEXT, payload, mask=True)
        # the wire bytes differ from the payload (masking applied)...
        assert payload not in frame
        opcode, out = _read_one(frame)
        assert out == payload

    def test_rsv_fragmented_rejected(self):
        # FIN=0 with a data opcode — fragmentation is unsupported.
        head = bytes([OP_TEXT, 0])
        with pytest.raises(WebSocketError):
            _read_one(head)

    def test_accept_key_matches_rfc_example(self):
        # RFC 6455 section 1.3 handshake example.
        assert (
            accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


class TestWebSocketRecv:
    def test_text_then_close(self):
        data = encode_frame(OP_TEXT, b"hello") + encode_frame(
            OP_CLOSE, struct.pack("!H", 1000)
        )

        async def scenario(ws):
            return await ws.recv_text(), await ws.recv_text()

        (first, second), _, ws = _with_ws(data, scenario)
        assert first == "hello"
        assert second is None and ws.closed

    def test_ping_is_ponged_transparently(self):
        data = encode_frame(OP_PING, b"ka") + encode_frame(OP_TEXT, b"x")
        text, wire, _ = _with_ws(data, lambda ws: ws.recv_text())
        assert text == "x"
        opcode, payload = _read_one(wire)
        assert opcode == OP_PONG and payload == b"ka"

    def test_pong_frames_ignored(self):
        data = encode_frame(OP_PONG, b"") + encode_frame(OP_TEXT, b"y")
        text, _, _ = _with_ws(data, lambda ws: ws.recv_text())
        assert text == "y"

    def test_eof_surfaces_as_none(self):
        text, _, ws = _with_ws(b"", lambda ws: ws.recv_text())
        assert text is None
        assert ws.closed

    def test_send_after_close_raises(self):
        async def scenario(ws):
            await ws.close()
            with pytest.raises(WebSocketError):
                await ws.send_text("nope")

        _with_ws(b"", scenario)

    def test_client_role_masks_outbound(self):
        async def scenario(ws):
            await ws.send_text("secret")

        _, wire, _ = _with_ws(b"", scenario, client=True)
        assert b"secret" not in wire  # masked on the wire
        opcode, payload = _read_one(wire)
        assert opcode == OP_TEXT and payload == b"secret"
