"""The network front door end to end: routes, taxonomy, backpressure, alerts.

One real deployment (module-scoped) serves most cells; the shard-
failure and overload cells run against a stub system so the failure
modes are deterministic rather than provoked.
"""

import asyncio
import time
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro import api
from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.result import ResultSet
from repro.server import AIQLServer, websocket
from repro.server.http import read_response, request_bytes
from repro.shard.coordinator import ShardTimeout
from repro.workload.loader import build_enterprise

QUERY = "agentid = 1\nproc p1 start proc p2\nreturn p1, p2"
WATCH = "proc p1 write file f1 as evt1\nreturn p1, f1"


@pytest.fixture(scope="module")
def system():
    deployment = AIQLSystem(SystemConfig())
    build_enterprise(
        stores=(), ingestor=deployment.ingestor, events_per_host_day=40
    )
    yield deployment
    deployment.close()


@pytest.fixture(scope="module")
def served(system):
    handle = system.serve(port=0).start_background()
    yield handle
    handle.stop()


def call(handle, method, path, body=b""):
    async def go():
        reader, writer = await asyncio.open_connection(
            handle.host, handle.port
        )
        writer.write(
            request_bytes(method, path, f"{handle.host}:{handle.port}", body)
        )
        await writer.drain()
        response = await read_response(reader)
        writer.close()
        return response

    return asyncio.run(go())


def post_query(handle, text, **kwargs):
    body = api.QueryRequest(text=text, **kwargs).to_json().encode()
    return call(handle, "POST", "/v1/query", body)


def decode_pages(response):
    return [
        api.from_json(line)
        for line in response.body.decode().splitlines()
        if line.strip()
    ]


class TestQueryEndpoint:
    def test_query_streams_pages(self, served):
        response = post_query(served, QUERY)
        assert response.status == 200
        assert response.header("content-type") == "application/x-ndjson"
        pages = decode_pages(response)
        columns, rows, meta = api.result_from_pages(pages)
        assert columns == ("p1", "p2") and rows
        assert meta["elapsed_ms"] >= 0

    def test_page_rows_override_splits_the_stream(self, served):
        response = post_query(served, QUERY, page_rows=1)
        pages = decode_pages(response)
        assert len(pages) > 1
        assert all(len(p.rows) <= 1 for p in pages)
        assert pages[-1].last and not pages[0].last

    def test_result_matches_in_process_query(self, system, served):
        response = post_query(served, QUERY)
        _, rows, _ = api.result_from_pages(decode_pages(response))
        direct = system.query(QUERY)
        assert sorted(rows) == sorted(
            tuple(api.wire_value(v) for v in row) for row in direct.rows
        )

    def test_keep_alive_serves_multiple_requests(self, served):
        async def go():
            reader, writer = await asyncio.open_connection(
                served.host, served.port
            )
            host = f"{served.host}:{served.port}"
            statuses = []
            for _ in range(3):
                writer.write(request_bytes("GET", "/healthz", host))
                await writer.drain()
                statuses.append((await read_response(reader)).status)
            writer.close()
            return statuses

        assert asyncio.run(go()) == [200, 200, 200]


class TestErrorTaxonomyOverHttp:
    """Every documented failure maps to its stable code over the wire."""

    def test_syntax_error_is_400_aiql_syntax(self, served):
        response = post_query(served, "proc p read")
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "aiql.syntax"
        assert not env.retryable

    def test_semantic_error_is_400_aiql_semantic(self, served):
        # p2 is never bound — a type/semantic failure, not a parse failure
        response = post_query(served, "proc p1 read file f1\nreturn p2")
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "aiql.semantic"

    def test_malformed_payload_is_400_request_invalid(self, served):
        response = call(served, "POST", "/v1/query", b"{not json")
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "request.invalid"

    def test_wrong_message_type_is_400_request_invalid(self, served):
        body = api.HealthPayload().to_json().encode()
        response = call(served, "POST", "/v1/query", body)
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "request.invalid"

    def test_unknown_route_is_404(self, served):
        response = call(served, "GET", "/v2/everything")
        env = api.from_json(response.body.decode())
        assert response.status == 404 and env.code == "request.not_found"

    def test_wrong_method_is_405(self, served):
        response = call(served, "GET", "/v1/query")
        env = api.from_json(response.body.decode())
        assert response.status == 405 and env.code == "request.method"

    def test_oversized_body_is_413(self, system):
        server = AIQLServer(system, port=0)
        # shrink the limit for the test without rebuilding the system
        server.max_body_bytes = 512
        handle = server.start_background()
        try:
            big = api.QueryRequest(text="x" * 2048).to_json().encode()
            response = call(handle, "POST", "/v1/query", big)
            env = api.from_json(response.body.decode())
            assert response.status == 413 and env.code == "request.too_large"
        finally:
            handle.stop()

    def test_alerts_route_over_plain_http_is_426(self, served):
        response = call(served, "GET", "/v1/alerts")
        env = api.from_json(response.body.decode())
        assert response.status == 426 and env.code == "request.invalid"


class _StubService:
    """Stands in for QueryService: scripted results/failures per query.

    Scripts run on a pool thread (like the real service) so a script may
    block without stalling the server's event loop.
    """

    def __init__(self, script):
        self.script = script
        self._pool = ThreadPoolExecutor(max_workers=4)

    def submit(self, text):
        def run():
            outcome = self.script(text)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        return self._pool.submit(run)


class _StubSystem:
    """The slice of AIQLSystem the server touches, scriptable."""

    def __init__(self, script, config=None):
        self.config = config or SystemConfig()
        self.service = _StubService(script)

    def metrics_text(self):
        return "# stub\n"

    def metrics_snapshot(self):
        return {}

    def stats(self):
        return {"events": 0}

    def explain(self, text, analyze=True):
        raise NotImplementedError

    def subscribe(self, text, callback=None, window_s=None, name=None):
        raise NotImplementedError

    def unsubscribe(self, sub):
        raise NotImplementedError


class TestShardFailuresOverHttp:
    def test_shard_timeout_is_503_retryable(self):
        stub = _StubSystem(lambda text: ShardTimeout("shard 1 missed deadline"))
        handle = AIQLServer(stub, port=0).start_background()
        try:
            response = post_query(handle, QUERY)
            env = api.from_json(response.body.decode())
            assert response.status == 503
            assert env.code == "shard.timeout" and env.retryable
        finally:
            handle.stop()

    def test_degraded_completeness_rides_the_last_page(self):
        completeness = {
            "missing_shards": (1,),
            "lossy_shards": (),
            "estimated_missed_rows": 12,
            "total_shards": 2,
        }

        def script(text):
            return ResultSet(
                columns=("p1",),
                rows=[("bash[1]",)],
                meta={"completeness": completeness},
            )

        handle = AIQLServer(_StubSystem(script), port=0).start_background()
        try:
            response = post_query(handle, QUERY)
            pages = decode_pages(response)
            assert response.status == 200  # degraded reads are not errors
            meta = pages[-1].meta
            assert meta["completeness"]["missing_shards"] == (1,)
            assert meta["completeness"]["estimated_missed_rows"] == 12
        finally:
            handle.stop()


class TestOverloadOverHttp:
    def test_saturation_answers_429_with_retry_after(self):
        parked = Future()
        release = Future()

        def script(text):
            if text == "park":  # only the designated query occupies the slot
                parked.set_result(None)
                release.result(timeout=30)
            return ResultSet(columns=("a",), rows=[], meta={})

        stub = _StubSystem(
            script,
            config=SystemConfig(
                server_max_inflight=1,
                server_queue_depth=0,
            ),
        )
        handle = AIQLServer(stub, port=0).start_background()
        try:
            import threading

            statuses = []

            def fire():
                statuses.append(post_query(handle, "park"))

            first = threading.Thread(target=fire)
            first.start()
            parked.result(timeout=10)  # the one slot is now held
            probe = post_query(handle, QUERY, client_id="probe")
            assert probe.status == 429
            env = api.from_json(probe.body.decode())
            assert env.code == "server.overloaded" and env.retryable
            assert env.retry_after_s and env.retry_after_s > 0
            assert float(probe.header("retry-after")) > 0
            release.set_result(None)
            first.join(timeout=10)
            assert statuses and statuses[0].status == 200
        finally:
            if not release.done():
                release.set_result(None)
            handle.stop()


class TestObservabilityEndpoints:
    def test_healthz(self, served):
        response = call(served, "GET", "/healthz")
        health = api.from_json(response.body.decode())
        assert health == api.HealthPayload()

    def test_metrics_exposition(self, served):
        post_query(served, QUERY)
        response = call(served, "GET", "/v1/metrics")
        assert response.status == 200
        assert b"aiql_http_requests_total" in response.body
        assert response.header("content-type").startswith("text/plain")

    def test_stats_payload(self, served):
        response = call(served, "GET", "/v1/stats")
        stats = api.from_json(response.body.decode())
        assert isinstance(stats, api.StatsPayload)
        server = stats.stats["server"]
        assert server["requests"] > 0
        assert server["schema_version"] == api.SCHEMA_VERSION

    def test_explain_analyze(self, served):
        from urllib.parse import quote

        response = call(served, "GET", f"/v1/explain?q={quote(QUERY)}")
        report = api.from_json(response.body.decode())
        assert isinstance(report, api.ExplainReportPayload)
        assert report.kind == "multievent" and report.trace is not None

    def test_explain_static(self, served):
        from urllib.parse import quote

        response = call(
            served, "GET", f"/v1/explain?q={quote(QUERY)}&analyze=0"
        )
        report = api.from_json(response.body.decode())
        assert report.trace is None and report.plan

    def test_explain_without_query_is_400(self, served):
        response = call(served, "GET", "/v1/explain")
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "request.invalid"

    def test_explain_syntax_error_maps(self, served):
        response = call(served, "GET", "/v1/explain?q=proc+p+read")
        env = api.from_json(response.body.decode())
        assert response.status == 400 and env.code == "aiql.syntax"


class TestAlertWebSocket:
    def test_subscribe_alert_unsubscribe(self, system, served):
        async def go():
            ws = await websocket.connect(served.host, served.port)
            await ws.send_text(
                api.SubscribeRequest(
                    query=WATCH, name="t-watch", window_s=1e12
                ).to_json()
            )
            ack = api.from_json(await ws.recv_text())
            assert isinstance(ack, api.SubscribeAck)
            assert ack.name == "t-watch" and ack.patterns == 1

            # commit matching events through a live stream session
            session = system.stream(batch_size=8)
            proc = session.process(1, 4242, "dropper")
            target = session.file(1, "/tmp/exfil")
            for i in range(8):
                session.append(1, 1e9 + i, "write", proc, target)
            session.commit()

            alert = None
            deadline = asyncio.get_running_loop().time() + 20
            while asyncio.get_running_loop().time() < deadline:
                text = await asyncio.wait_for(ws.recv_text(), timeout=20)
                message = api.from_json(text)
                if isinstance(message, api.AlertMessage):
                    alert = message
                    break
            assert alert is not None
            assert alert.subscription == "t-watch" and alert.query
            assert alert.events and "op" in alert.events[0]

            await ws.send_text(api.UnsubscribeRequest(name="t-watch").to_json())
            while True:
                message = api.from_json(await ws.recv_text())
                if not isinstance(message, api.AlertMessage):
                    break
            assert isinstance(message, api.SubscribeAck)
            assert message.patterns == 0
            await ws.close()

        asyncio.run(go())

    def test_bad_subscription_query_answers_envelope(self, served):
        async def go():
            ws = await websocket.connect(served.host, served.port)
            await ws.send_text(
                api.SubscribeRequest(query="proc p1 (").to_json()
            )
            env = api.from_json(await ws.recv_text())
            assert isinstance(env, api.ErrorEnvelope)
            assert env.code == "aiql.syntax"
            await ws.close()

        asyncio.run(go())

    def test_unknown_unsubscribe_answers_envelope(self, served):
        async def go():
            ws = await websocket.connect(served.host, served.port)
            await ws.send_text(api.UnsubscribeRequest(name="ghost").to_json())
            env = api.from_json(await ws.recv_text())
            assert isinstance(env, api.ErrorEnvelope)
            assert env.code == "aiql.subscription"
            await ws.close()

        asyncio.run(go())

    def test_unexpected_message_type_answers_envelope(self, served):
        async def go():
            ws = await websocket.connect(served.host, served.port)
            await ws.send_text(api.HealthPayload().to_json())
            env = api.from_json(await ws.recv_text())
            assert isinstance(env, api.ErrorEnvelope)
            assert env.code == "request.invalid"
            await ws.close()

        asyncio.run(go())

    def test_disconnect_drops_the_subscription(self, system, served):
        before = len(system.continuous.subscriptions)

        async def go():
            ws = await websocket.connect(served.host, served.port)
            await ws.send_text(
                api.SubscribeRequest(query=WATCH, name="droppy").to_json()
            )
            api.from_json(await ws.recv_text())
            await ws.close()

        asyncio.run(go())
        deadline = time.time() + 10
        while time.time() < deadline:
            if len(system.continuous.subscriptions) == before:
                return
            time.sleep(0.05)
        assert len(system.continuous.subscriptions) == before


class TestSystemServe:
    def test_serve_returns_unstarted_server(self, system):
        server = system.serve(port=0)
        assert isinstance(server, AIQLServer)
        assert server.port == 0  # not bound yet

    def test_background_handle_binds_ephemeral_port(self, served):
        assert served.port > 0
