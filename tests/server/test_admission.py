"""Admission control: bounded in-flight, fairness, shed-on-overload."""

import asyncio

import pytest

from repro.server.admission import AdmissionController, Overloaded


def _run(coro):
    return asyncio.run(coro)


class TestFastPath:
    def test_admits_up_to_max_inflight(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=2, max_queued=10)
            await ctl.acquire("a")
            await ctl.acquire("b")
            return ctl.inflight

        assert _run(scenario()) == 2

    def test_release_frees_the_slot(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=10)
            await ctl.acquire("a")
            ctl.release(0.01)
            await ctl.acquire("a")  # would hang if the slot leaked
            return ctl.inflight

        assert _run(scenario()) == 1


class TestQueueing:
    def test_waiters_dispatch_on_release(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=10)
            await ctl.acquire("a")
            waiter = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)  # let the waiter enqueue
            assert ctl.queued == 1
            ctl.release(0.01)
            await waiter
            return ctl.inflight, ctl.queued

        assert _run(scenario()) == (1, 0)

    def test_round_robin_across_clients(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=100)
            await ctl.acquire("hog")
            order = []

            async def worker(client, tag):
                await ctl.acquire(client)
                order.append(tag)
                ctl.release(0.001)

            # one chatty client queues 3, two quiet clients queue 1 each
            tasks = [
                asyncio.ensure_future(worker("hog", "hog-0")),
                asyncio.ensure_future(worker("hog", "hog-1")),
                asyncio.ensure_future(worker("hog", "hog-2")),
                asyncio.ensure_future(worker("quiet-a", "a-0")),
                asyncio.ensure_future(worker("quiet-b", "b-0")),
            ]
            await asyncio.sleep(0)
            ctl.release(0.001)  # start the dispatch chain
            await asyncio.gather(*tasks)
            return order

        order = _run(scenario())
        # the quiet clients must not sit behind the hog's whole backlog
        assert order.index("a-0") < order.index("hog-2")
        assert order.index("b-0") < order.index("hog-2")

    def test_global_queue_bound_sheds(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=1)
            await ctl.acquire("a")
            waiter = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as err:
                await ctl.acquire("c")
            assert err.value.retry_after_s > 0
            ctl.release(0.01)
            await waiter
            ctl.release(0.01)
            return ctl.rejected

        assert _run(scenario()) == 1

    def test_per_client_queue_bound_sheds_only_that_client(self):
        async def scenario():
            ctl = AdmissionController(
                max_inflight=1, max_queued=100, per_client_queue=1
            )
            await ctl.acquire("hog")
            hog_waiter = asyncio.ensure_future(ctl.acquire("hog"))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await ctl.acquire("hog")  # hog's queue is full
            quiet_waiter = asyncio.ensure_future(ctl.acquire("quiet"))
            await asyncio.sleep(0)
            assert not quiet_waiter.done()  # queued, not rejected
            ctl.release(0.01)
            ctl.release(0.01)
            await asyncio.gather(hog_waiter, quiet_waiter)
            return ctl.rejected

        assert _run(scenario()) == 1

    def test_cancelled_waiter_withdraws(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=10)
            await ctl.acquire("a")
            waiter = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            waiter.cancel()
            try:
                await waiter
            except asyncio.CancelledError:
                pass
            assert ctl.queued == 0
            ctl.release(0.01)
            await ctl.acquire("c")  # slot must not have leaked
            return ctl.inflight

        assert _run(scenario()) == 1


class TestRetryAfter:
    def test_estimate_scales_with_backlog(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queued=100)
            await ctl.acquire("a")
            small = ctl.retry_after_s()
            for _ in range(20):
                asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            large = ctl.retry_after_s()
            # unwind
            for _ in range(21):
                ctl.release(0.01)
            await asyncio.sleep(0)
            return small, large

        small, large = _run(scenario())
        assert large > small
        assert 0.05 <= small <= 30.0 and 0.05 <= large <= 30.0

    def test_stats_shape(self):
        ctl = AdmissionController()
        stats = ctl.stats()
        for key in ("inflight", "queued", "admitted", "rejected",
                    "avg_service_ms", "max_inflight"):
            assert key in stats

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queued=-1)
        with pytest.raises(ValueError):
            AdmissionController(per_client_queue=0)
