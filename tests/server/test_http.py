"""HTTP/1.1 protocol layer: parsing, limits, chunked streaming."""

import asyncio

import pytest

from repro.server.http import (
    HttpProtocolError,
    read_request,
    read_response,
    request_bytes,
    send_chunked,
    send_response,
    split_host_port,
)


def _reader(data: bytes) -> asyncio.StreamReader:
    # must run inside a loop — call only from within asyncio.run
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class _SinkWriter:
    """Just enough StreamWriter for the send_* helpers."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data.extend(chunk)

    async def drain(self) -> None:
        pass


def _parse(raw: bytes, limit: int = 1024, **kwargs):
    async def go():
        return await read_request(_reader(raw), limit, **kwargs)

    return asyncio.run(go())


def _round_trip(send):
    """Run ``send(writer)`` and parse what it wrote as a response."""

    async def go():
        sink = _SinkWriter()
        await send(sink)
        return await read_response(_reader(bytes(sink.data)))

    return asyncio.run(go())


class TestReadRequest:
    def test_parses_request_line_headers_body(self):
        raw = (
            b"POST /v1/query?x=1&y=a%20b HTTP/1.1\r\n"
            b"Host: h\r\nContent-Length: 4\r\nX-Extra: v\r\n\r\nbody"
        )
        req = _parse(raw, peer="p")
        assert req.method == "POST"
        assert req.path == "/v1/query"
        assert req.params == {"x": "1", "y": "a b"}
        assert req.header("x-extra") == "v" and req.header("X-Extra") == "v"
        assert req.body == b"body"
        assert req.peer == "p"
        assert req.keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_truncated_request_line_is_400(self):
        with pytest.raises(HttpProtocolError) as err:
            _parse(b"GET /x")
        assert err.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpProtocolError):
            _parse(b"GET /x\r\n\r\n")

    def test_unsupported_protocol_is_400(self):
        with pytest.raises(HttpProtocolError):
            _parse(b"GET /x SPDY/9\r\n\r\n")

    def test_body_over_limit_is_413(self):
        raw = b"POST /q HTTP/1.1\r\nContent-Length: 2048\r\n\r\n" + b"x" * 2048
        with pytest.raises(HttpProtocolError) as err:
            _parse(raw)
        assert err.value.status == 413

    def test_chunked_upload_rejected(self):
        raw = b"POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpProtocolError):
            _parse(raw)

    def test_bad_content_length_is_400(self):
        for value in (b"nope", b"-5"):
            raw = b"POST /q HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
            with pytest.raises(HttpProtocolError):
                _parse(raw)

    def test_connection_close_disables_keep_alive(self):
        req = _parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_http_10_defaults_to_close(self):
        req = _parse(b"GET /x HTTP/1.0\r\n\r\n")
        assert not req.keep_alive


class TestResponses:
    def test_fixed_response_round_trips(self):
        resp = _round_trip(lambda w: send_response(w, 200, b'{"ok": 1}'))
        assert resp.status == 200
        assert resp.body == b'{"ok": 1}'
        assert resp.header("content-type") == "application/json"

    def test_chunked_response_round_trips(self):
        async def chunks():
            yield b'{"page": 0}\n'
            yield b""  # empty pieces are skipped, not sent as terminator
            yield b'{"page": 1}\n'

        resp = _round_trip(lambda w: send_chunked(w, chunks()))
        assert resp.status == 200
        assert resp.body == b'{"page": 0}\n{"page": 1}\n'
        assert resp.header("transfer-encoding") == "chunked"

    def test_extra_headers_and_status(self):
        resp = _round_trip(
            lambda w: send_response(
                w, 429, b"{}", extra_headers={"Retry-After": "1.5"}
            )
        )
        assert resp.status == 429
        assert resp.header("retry-after") == "1.5"


class TestClientSide:
    def test_request_bytes_parse_back(self):
        raw = request_bytes("POST", "/v1/query", "h:1", b"xy")
        req = _parse(raw)
        assert req.method == "POST" and req.body == b"xy"
        assert req.header("host") == "h:1"

    def test_split_host_port(self):
        assert split_host_port(("127.0.0.1", 9)) == "127.0.0.1:9"
        assert split_host_port("weird") == "weird"
