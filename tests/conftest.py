"""Shared fixtures: one small enterprise deployment reused across tests."""

from __future__ import annotations

import pytest

from repro.engine.dependency import compile_dependency
from repro.lang.ast import DependencyQuery
from repro.lang.context import compile_multievent
from repro.lang.parser import parse
from repro.workload.loader import build_enterprise


@pytest.fixture(scope="session")
def enterprise():
    """A small but complete deployment: every store, every scenario."""
    return build_enterprise(
        stores=(
            "partitioned",
            "flat",
            "segmented_domain",
            "segmented_arrival",
        ),
        events_per_host_day=60,
    )


@pytest.fixture(scope="session")
def store(enterprise):
    return enterprise.store("partitioned")


@pytest.fixture(scope="session")
def flat_store(enterprise):
    return enterprise.store("flat")


def compile_text(text: str):
    """Parse + compile one AIQL query of any kind."""
    tree = parse(text)
    if isinstance(tree, DependencyQuery):
        return compile_dependency(tree)
    return compile_multievent(tree)


@pytest.fixture(scope="session")
def compile_query():
    return compile_text
