"""The README quickstart snippet must keep working verbatim."""

from repro import AIQLSystem


def test_readme_quickstart():
    system = AIQLSystem()
    ing = system.ingestor

    BASE = 1483228800.0  # 2017-01-01 UTC
    shell = ing.process(1, 100, "bash", user="alice")
    wget = ing.process(1, 102, "wget", user="alice")
    dropper = ing.file(1, "/tmp/.dropper", owner="alice")
    malware = ing.process(1, 103, ".dropper", user="alice")
    ing.emit(1, BASE + 200, "start", shell, wget)
    ing.emit(1, BASE + 210, "write", wget, dropper, amount=700000)
    ing.emit(1, BASE + 240, "start", shell, malware)
    ing.emit(1, BASE + 250, "read", malware, dropper, amount=700000)

    result = system.query('''
        agentid = 1
        (at "01/01/2017")
        proc p1 write file f1["/tmp/%"] as evt1
        proc p2 read file f1 as evt2
        with evt1 before evt2
        return distinct p1, f1, p2
    ''')
    assert result.rows == [("wget", "/tmp/.dropper", ".dropper")]
    rendered = result.to_text()
    assert "wget" in rendered and "/tmp/.dropper" in rendered
