"""End-to-end integration: the full Sec. 6.2 investigation on live data."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.workload.corpus import (
    ALL_QUERIES,
    C5_ANOMALY,
    by_id,
)
from tests.conftest import compile_text


@pytest.fixture(scope="module")
def executors(enterprise):
    store = enterprise.store("partitioned")
    return MultieventExecutor(store), AnomalyExecutor(store)


class TestFullCorpusGroundTruth:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_returns_expected_rows(self, executors, query):
        multievent, anomaly = executors
        ctx = compile_text(query.text)
        result = (anomaly if ctx.kind == "anomaly" else multievent).run(ctx)
        assert len(result) >= query.min_rows


class TestInvestigationNarrative:
    """The Sec. 6.2.1 walk-through, asserting the attack entities."""

    def test_anomaly_starter_identifies_sbblv(self, executors):
        _, anomaly = executors
        result = anomaly.run(compile_text(C5_ANOMALY.text))
        assert "sbblv.exe" in result.column("p")

    def test_c5_2_reveals_backup_dump(self, executors):
        multievent, _ = executors
        result = multievent.run(compile_text(by_id("c5-2").text))
        assert any("backup1.dmp" in f.lower() for f in result.column("f1"))

    def test_c5_3_reveals_sqlservr_as_creator(self, executors):
        multievent, _ = executors
        result = multievent.run(compile_text(by_id("c5-3").text))
        assert "sqlservr.exe" in result.column("p3")

    def test_c5_7_complete_exfiltration_chain(self, executors):
        multievent, _ = executors
        result = multievent.run(compile_text(by_id("c5-7").text))
        row = dict(zip(result.columns, result.rows[0]))
        assert row["p1"] == "cmd.exe"
        assert row["p2"] == "osql.exe"
        assert row["p3"] == "sqlservr.exe"
        assert row["p4"] == "sbblv.exe"
        assert row["i1"] == "203.0.113.129"

    def test_c2_7_complete_infection_chain(self, executors):
        multievent, _ = executors
        result = multievent.run(compile_text(by_id("c2-7").text))
        row = dict(zip(result.columns, result.rows[0]))
        assert row["p0"] == "outlook.exe"
        assert row["p1"] == "excel.exe"
        assert row["p2"] == "payload.exe"

    def test_c4_8_largest_query_exact_chain(self, executors):
        multievent, _ = executors
        result = multievent.run(compile_text(by_id("c4-8").text))
        assert len(result) == 1  # exactly the injected chain, no noise
        row = dict(zip(result.columns, result.rows[0]))
        assert row["ps"] == "sqlservr.exe"
        assert row["p2"] == "sbblv.exe"


class TestAIQLSystemFacade:
    def test_query_via_facade(self, enterprise):
        system = AIQLSystem(ingestor=enterprise.ingestor)
        # the facade created a fresh store; replay is unnecessary — attach
        # happens at construction, so new events would flow in. Here we just
        # check the pipeline wiring end to end on an empty store.
        result = system.query("proc p read file f\nreturn count p")
        assert result.columns == ("count",)

    def test_facade_with_fresh_data(self):
        from repro.workload.topology import BASE_DAY

        system = AIQLSystem()
        ing = system.ingestor
        shell = ing.process(1, 10, "bash")
        child = ing.process(1, 11, "vim")
        ing.emit(1, BASE_DAY + 60, "start", shell, child)
        result = system.query(
            'agentid = 1\n(at "01/01/2017")\nproc p start proc q\nreturn p, q'
        )
        assert ("bash", "vim") in set(result.rows)

    def test_facade_explain(self):
        system = AIQLSystem()
        plan = system.explain(
            'agentid = 1\nproc p["%cmd%"] start proc q\nreturn p'
        )
        assert "score=" in str(plan)
        assert "agents: [1]" in str(plan)

    def test_facade_backends(self):
        for backend in ("partitioned", "flat", "segmented"):
            system = AIQLSystem(SystemConfig(backend=backend))
            assert system.stats()["events"] == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SystemConfig(backend="cloud")
        with pytest.raises(ValueError):
            SystemConfig(scheduling="magic")

    def test_facade_dependency_dispatch(self):
        system = AIQLSystem()
        ctx = system.compile(
            "proc p1 ->[write] file f1 <-[read] proc p2\nreturn p1, f1, p2"
        )
        assert ctx.kind == "multievent"
        assert len(ctx.patterns) == 2
