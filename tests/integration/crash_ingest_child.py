"""Child process for the crash-recovery smoke test (not a test module).

Streams events into a durable deployment forever, committing every batch
and acknowledging each commit by appending the new watermark to an acks
file (flushed + fsync'd *after* the commit returned, exactly like a real
producer acknowledging upstream).  The parent test SIGKILLs this process
mid-run and asserts that recovery retains every acknowledged batch.

Usage: python tests/integration/crash_ingest_child.py DATA_DIR ACKS_FILE
"""

import os
import sys


def main(data_dir: str, acks_path: str) -> None:
    from repro.core.config import SystemConfig
    from repro.core.system import AIQLSystem

    system = AIQLSystem(
        SystemConfig(data_dir=data_dir, compact_interval_s=3600)
    )
    proc = system.ingestor.process(1, 101, "streamer.exe")
    fobj = system.ingestor.file(1, "/var/log/stream.log")
    session = system.stream(batch_size=8)
    base = 1483228800.0  # 2017-01-01T00:00:00Z
    i = 0
    with open(acks_path, "a", encoding="utf-8") as acks:
        while True:
            session.append(1, base + 60.0 * i, "write", proc, fobj)
            i += 1
            if i % 8 == 0:
                watermark = session.commit()
                acks.write(f"{watermark}\n")
                acks.flush()
                os.fsync(acks.fileno())


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
