"""Tests for the Sec. 7 monitoring-scope extension: registry + pipes."""

import pytest

from repro.baselines.translators import to_cypher, to_sql
from repro.engine.executor import MultieventExecutor
from repro.model.entities import (
    ATTRIBUTES_BY_TYPE,
    EntityRegistry,
    EntityType,
    default_attribute,
)
from repro.model.events import OPERATIONS_BY_OBJECT, Operation
from repro.storage.flat import FlatStore
from repro.storage.ingest import IngestError, Ingestor
from repro.workload.topology import BASE_DAY
from tests.conftest import compile_text


class TestModel:
    def test_entity_types_parse(self):
        assert EntityType.parse("reg") is EntityType.REGISTRY
        assert EntityType.parse("registry") is EntityType.REGISTRY
        assert EntityType.parse("pipe") is EntityType.PIPE

    def test_default_attributes(self):
        assert default_attribute(EntityType.REGISTRY) == "key"
        assert default_attribute(EntityType.PIPE) == "name"

    def test_attribute_schema(self):
        assert "value_name" in ATTRIBUTES_BY_TYPE[EntityType.REGISTRY]
        assert "mode" in ATTRIBUTES_BY_TYPE[EntityType.PIPE]

    def test_operations(self):
        assert Operation.WRITE in OPERATIONS_BY_OBJECT[EntityType.REGISTRY]
        assert Operation.DELETE in OPERATIONS_BY_OBJECT[EntityType.REGISTRY]
        assert Operation.CONNECT not in OPERATIONS_BY_OBJECT[EntityType.PIPE]

    def test_registry_dedup(self):
        reg = EntityRegistry()
        a = reg.registry_value(1, "HKCU/Run", "x")
        b = reg.registry_value(1, "HKCU/Run", "x")
        c = reg.registry_value(1, "HKCU/Run", "y")
        assert a is b and a.id != c.id

    def test_pipe_dedup(self):
        reg = EntityRegistry()
        assert reg.pipe(1, "/run/p") is reg.pipe(1, "/run/p")


class TestIngestAndQuery:
    @pytest.fixture()
    def system_store(self):
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        malware = ingestor.process(1, 500, "evil.exe", user="u1")
        shell = ingestor.process(1, 501, "cmd.exe", user="u1")
        run_key = ingestor.registry_value(
            1, "HKCU/Software/Microsoft/Windows/CurrentVersion/Run", "evil"
        )
        fifo = ingestor.pipe(1, "/run/backdoor")
        ingestor.emit(1, BASE_DAY + 100, "write", malware, run_key)
        ingestor.emit(1, BASE_DAY + 200, "start", malware, shell)
        ingestor.emit(1, BASE_DAY + 300, "write", shell, fifo, amount=64)
        return ingestor, store

    def test_illegal_pipe_operation_rejected(self, system_store):
        ingestor, _ = system_store
        proc = ingestor.process(1, 502, "x")
        fifo = ingestor.pipe(1, "/run/q")
        with pytest.raises(IngestError):
            ingestor.emit(1, BASE_DAY, "delete", proc, fifo)

    def test_registry_persistence_query(self, system_store):
        _, store = system_store
        ctx = compile_text('''
            agentid = 1
            (at "01/01/2017")
            proc p1 write reg r1["%CurrentVersion/Run"] as evt1
            proc p1 start proc p2 as evt2
            with evt1 before evt2
            return distinct p1, r1, p2
        ''')
        result = MultieventExecutor(store).run(ctx)
        assert ("evil.exe",) == tuple(
            {row[0] for row in result.rows}
        )

    def test_pipe_query_with_attr(self, system_store):
        _, store = system_store
        ctx = compile_text('''
            agentid = 1
            proc p1 write pipe q1[name = "/run/backdoor"] as evt1
            return p1, q1.mode
        ''')
        result = MultieventExecutor(store).run(ctx)
        assert result.rows == [("cmd.exe", "fifo")]

    def test_bare_value_inference(self, system_store):
        _, store = system_store
        ctx = compile_text('proc p write reg["HKCU%Run"]\nreturn p')
        result = MultieventExecutor(store).run(ctx)
        assert ("evil.exe",) in set(result.rows)

    def test_translators_cover_new_types(self, system_store):
        ctx = compile_text(
            'proc p1 write reg r1["%Run"] as e1\nreturn p1, r1'
        )
        assert "registry_values" in to_sql(ctx).text
        assert ":RegistryValue" in to_cypher(ctx).text


class TestWorkloadIntegration:
    def test_sysbot_persistence_discoverable(self, enterprise):
        """v1/v4 (Sysbot) now persist via a Run key; hunt them with AIQL."""
        store = enterprise.store("partitioned")
        ctx = compile_text('''
            (at "01/09/2017")
            proc p1 write reg r1["%CurrentVersion/Run"] as evt1
            proc p1 connect ip i1[dstport = 6667] as evt2
            with evt1 before evt2
            return distinct p1
        ''')
        result = MultieventExecutor(store).run(ctx)
        names = {row[0] for row in result.rows}
        assert any("7dd95111" in n for n in names)  # v1
        assert any("4e720458" in n for n in names)  # v4

    def test_background_registry_noise_exists(self, enterprise):
        store = enterprise.store("partitioned")
        ctx = compile_text(
            '(at "01/02/2017")\nproc p["%svchost%"] read reg r\nreturn count p'
        )
        result = MultieventExecutor(store).run(ctx)
        assert result.rows[0][0] > 0
