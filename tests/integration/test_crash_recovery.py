"""Recovery smoke test: SIGKILL a live streaming ingest, recover cleanly.

The real crash (the CI recovery-smoke job): a child process streams
batches into a durable data dir and acknowledges every committed
watermark; the parent kills it with SIGKILL mid-run — no atexit hooks, no
flushes, no goodbye — then recovers the data dir in-process and asserts
that no acknowledged batch was lost and the recovered stream is
internally consistent.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.system import AIQLSystem
from repro.storage.filters import EventFilter

REPO_ROOT = Path(__file__).resolve().parents[2]
CHILD = REPO_ROOT / "tests" / "integration" / "crash_ingest_child.py"
MIN_ACKED_BATCHES = 5
TIMEOUT_S = 60.0


def _wait_for_acks(acks_path: Path, child: subprocess.Popen) -> None:
    deadline = time.monotonic() + TIMEOUT_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                f"ingest child exited early with {child.returncode}"
            )
        if acks_path.exists():
            lines = acks_path.read_text().splitlines()
            if len(lines) >= MIN_ACKED_BATCHES:
                return
        time.sleep(0.05)
    raise AssertionError("ingest child never acknowledged enough batches")


def test_sigkill_mid_ingest_loses_no_acknowledged_batch(tmp_path):
    data_dir = tmp_path / "data"
    acks_path = tmp_path / "acks.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    child = subprocess.Popen(
        [sys.executable, str(CHILD), str(data_dir), str(acks_path)],
        env=env,
        cwd=str(REPO_ROOT),
    )
    try:
        _wait_for_acks(acks_path, child)
    finally:
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait()

    # Only complete ack lines count: the kill may tear the last write.
    lines = acks_path.read_text().split("\n")
    lines.pop()  # "" after a trailing newline, or a torn final line
    acked = [int(line) for line in lines]
    assert acked, "no complete acknowledgements recorded"
    last_acked = max(acked)

    with AIQLSystem.recover(str(data_dir)) as recovered:
        total = recovered.ingestor.events_ingested
        # every acknowledged batch survived ...
        assert total >= last_acked, (
            f"recovery lost acknowledged events: {total} < {last_acked}"
        )
        # ... and what survived is a consistent stream prefix: contiguous
        # event ids, contiguous per-agent seqs, scan == watermark.
        events = recovered.store.scan(EventFilter())
        assert len(events) == total == len(recovered.store)
        assert [e.event_id for e in events] == list(range(1, total + 1))
        assert [e.seq for e in events] == list(range(1, total + 1))
        # and the deployment keeps ingesting where the stream left off
        proc = recovered.ingestor.process(1, 101, "streamer.exe")
        fobj = recovered.ingestor.file(1, "/var/log/stream.log")
        fresh = recovered.ingestor.emit(
            1, events[-1].start_time + 60.0, "write", proc, fobj
        )
        assert fresh.event_id == total + 1
