"""Fault-injection integration: kills mid-scan and mid-ingest (ISSUE 9).

The differential proofs behind the fault-tolerant sharded deployment:

* a seeded :class:`FaultPlan` SIGKILLs 1 of 4 shard workers at its first
  scatter scan; supervised recovery (respawn + WAL replay + entity
  replay) brings it back and the full corpus still answers byte-equal
  to the never-faulted single-process reference — on all four hot
  backends;
* a worker SIGKILLed mid-commit fails the batch fast with the precise
  acked/failed shard split, the torn slices never surface in any scan
  (even after later commits raise the watermark), and every batch that
  *was* acknowledged survives — including across a full restart of the
  deployment from disk;
* degraded reads after an unrecoverable loss stay watermark-consistent:
  answering shards return exactly their committed slices, annotated.

Worker processes are real (``spawn``); rates are kept small.
"""

import os
import signal

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.model.time import DAY
from repro.shard import ShardCommitError, ShardedStore
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise

RATE = 20

# Seed 7 over 4 shards: kill@2:scan#0 (+ a small delay on shard 0) —
# the victim dies at its very first scatter scan, mid-corpus.
SCAN_KILL_SEED = "7"

FAULTED_CONFIGS = (
    pytest.param("partitioned", id="partitioned"),
    pytest.param("flat", id="flat"),
    pytest.param("segmented-domain", id="segmented-domain"),
    pytest.param("segmented-arrival", id="segmented-arrival"),
)


@pytest.fixture(scope="module")
def reference():
    """Never-faulted single-process answers for every corpus query."""
    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=RATE
    )
    system = AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )
    return {
        query.qid: set(system.query(query.text).rows) for query in ALL_QUERIES
    }, enterprise.total_events


@pytest.mark.parametrize("backend", FAULTED_CONFIGS)
def test_kill_mid_scan_recovers_to_reference(backend, reference, tmp_path):
    """Seeded kill at the first scatter scan; corpus equals reference."""
    name, _, distribution = backend.partition("-")
    config = SystemConfig(
        shards=4,
        backend=name,
        distribution=distribution or "domain",
        data_dir=str(tmp_path),
        wal_sync=False,
        shard_chaos=SCAN_KILL_SEED,
        shard_heartbeat_interval_s=0,
        shard_command_timeout_s=30.0,
        shard_scan_timeout_s=60.0,
    )
    answers, total = reference
    system = AIQLSystem(config)
    try:
        build_enterprise(
            stores=(), ingestor=system.ingestor, events_per_host_day=RATE,
            stream_batch_size=128,
        )
        assert len(system.store) == total
        for query in ALL_QUERIES:
            result = system.query(query.text)
            assert set(result.rows) == answers[query.qid], (
                f"{backend} diverged from the never-faulted reference on "
                f"{query.qid} after supervised recovery"
            )
            # Durable recovery is lossless: answers are never annotated.
            assert result.meta.get("completeness") is None
        health = system.stats()["shard_health"]
        assert health["restarts"] == 1
        assert health["lost_events"] == 0
        assert health["failed_shards"] == []
    finally:
        system.close()


# Agents drawn from four agent-groups (agents_per_group=10), so every
# day-batch routes slices to all four shards — multi-shard commits.
SPREAD_AGENTS = (1, 2, 11, 12, 21, 22, 31, 32)


def _entities(ingestor, agents):
    return {
        agent: (
            ingestor.process(agent, 100, "bash"),
            ingestor.file(agent, f"/var/log/host{agent}.log"),
        )
        for agent in agents
    }


def _day_batch(ingestor, entities, day, per_agent=3):
    batch = []
    for agent, (shell, log) in entities.items():
        for i in range(per_agent):
            batch.append(
                ingestor.build_event(
                    agent,
                    day * DAY + 60.0 * agent + 10 * (i + 1),
                    "write",
                    shell,
                    log,
                    amount=64 * (i + 1),
                )
            )
    return batch


class TestKillMidIngest:
    def _run(self, tmp_path):
        config = SystemConfig(
            shards=4,
            data_dir=str(tmp_path),
            wal_sync=False,
            shard_chaos="kill@1:batch#2",
            shard_heartbeat_interval_s=0,
            shard_command_timeout_s=30.0,
        )
        ingestor = Ingestor()
        store = ShardedStore(ingestor, config)
        ingestor.attach(store)
        # Every day-batch spans all four shards, so shard 1 receives one
        # batch command per commit — its third one (day 2) kills it.
        entities = _entities(ingestor, SPREAD_AGENTS)
        committed, failed = [], None
        for day in range(8):
            batch = _day_batch(ingestor, entities, day)
            try:
                ingestor.commit(batch)
                committed.append(batch)
            except ShardCommitError as exc:
                assert failed is None, "only one planned fault"
                failed = (batch, exc)
        return store, committed, failed

    def test_commit_reports_precise_ack_split(self, tmp_path):
        store, committed, failed = self._run(tmp_path)
        try:
            assert failed is not None, "planned kill never fired"
            batch, exc = failed
            assert exc.failed_shards == (1,)
            assert exc.acked_shards  # other shards did commit slices
            assert 1 not in exc.acked_shards
            assert committed  # commits before and after the fault landed
            assert len(committed) == 7
        finally:
            store.close()

    def test_torn_slices_never_surface(self, tmp_path):
        """The failed batch is all-or-nothing: its acked slices stay
        invisible even after later commits raise the watermark."""
        store, committed, failed = self._run(tmp_path)
        try:
            failed_ids = {e.event_id for e in failed[0]}
            committed_ids = {
                e.event_id for batch in committed for e in batch
            }
            scanned = {e.event_id for e in store.scan(EventFilter())}
            assert scanned == committed_ids
            assert not scanned & failed_ids
            full = {e.event_id for e in store.full_scan(EventFilter())}
            assert not full & failed_ids
        finally:
            store.close()

    def test_no_acked_batch_lost_across_restart(self, tmp_path):
        """Every acknowledged batch survives a full deployment restart
        (per-shard WAL replay on the way up)."""
        store, committed, failed = self._run(tmp_path)
        committed_ids = {e.event_id for batch in committed for e in batch}
        health = store.stats()["shard_health"]
        assert health["restarts"] == 1  # supervised heal after the kill
        store.close()
        reopened = ShardedStore(
            Ingestor(),
            SystemConfig(
                shards=4,
                data_dir=str(tmp_path),
                wal_sync=False,
                shard_heartbeat_interval_s=0,
            ),
        )
        try:
            scanned = {e.event_id for e in reopened.scan(EventFilter())}
            missing = committed_ids - scanned
            assert not missing, f"acked events lost across restart: {missing}"
        finally:
            reopened.close()


class TestDegradedWatermarkConsistency:
    def test_degraded_reads_return_exactly_committed_slices(self):
        """After an unrecoverable shard loss, answering shards return
        exactly the slices of fully-acknowledged batches — and a commit
        refused by the dead shard adds nothing anywhere."""
        config = SystemConfig(
            shards=4,
            shard_read_policy="degraded",
            shard_max_restarts=0,
            shard_heartbeat_interval_s=0,
            shard_command_timeout_s=30.0,
        )
        ingestor = Ingestor()
        store = ShardedStore(ingestor, config)
        ingestor.attach(store)
        entities = _entities(ingestor, SPREAD_AGENTS)
        committed = []
        for day in range(4):
            batch = _day_batch(ingestor, entities, day)
            ingestor.commit(batch)
            committed.append(batch)
        try:
            victim = 2
            acked_before = store._shard_acked[victim]
            proc = store._procs[victim]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10)
            store.supervisor.check()  # quarantine; budget 0 -> failed
            with pytest.raises(ShardCommitError) as exc_info:
                ingestor.commit(_day_batch(ingestor, entities, 5))
            assert exc_info.value.acked_shards == ()
            result = store.scan_columns(EventFilter())
            events = result.events()
            expected = {
                e.event_id
                for batch in committed
                for e in batch
                if store.shard_of(
                    store.scheme.key_for(e.agent_id, e.start_time)
                )
                != victim
            }
            assert {e.event_id for e in events} == expected
            completeness = result.completeness
            assert completeness is not None
            assert completeness.missing_shards == (victim,)
            assert completeness.estimated_missed_rows == acked_before
            assert completeness.watermark == store._committed
        finally:
            store.close()
