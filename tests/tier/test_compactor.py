"""Background compactor: pacing, error containment, checkpoint hook."""

import threading

import pytest

from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.tier.cold import ColdTier
from repro.tier.compactor import Compactor
from repro.tier.store import TieredStore

from tests.tier.conftest import EventFeed, day_ts


@pytest.fixture
def deployment(tmp_path):
    ingestor = Ingestor()
    hot = FlatStore(registry=ingestor.registry)
    store = TieredStore(
        hot, ColdTier(tmp_path / "cold", ingestor.registry.get)
    )
    ingestor.attach(store)
    feed = EventFeed(ingestor)
    for day in range(5):
        for i in range(4):
            feed.emit(1, day_ts(day, 600.0 * i))
    return store, feed


class TestRunOnce:
    def test_migrates_past_horizon(self, deployment):
        store, _ = deployment
        compactor = Compactor(store, retention_days=2, interval_s=60)
        report = compactor.run_once()
        assert report.events_migrated == 3 * 4
        assert compactor.passes == 1
        assert compactor.last_report is report
        assert compactor.stats()["last_migrated"] == 12

    def test_after_compact_hook_fires_only_on_movement(self, deployment):
        store, _ = deployment
        seen = []
        compactor = Compactor(
            store, retention_days=2, interval_s=60,
            after_compact=seen.append,
        )
        compactor.run_once()
        compactor.run_once()  # nothing left to move
        assert len(seen) == 1 and seen[0].events_migrated == 12

    def test_successful_pass_clears_stale_error(self, deployment):
        store, _ = deployment
        compactor = Compactor(store, retention_days=2, interval_s=60)
        compactor.last_error = RuntimeError("transient disk full")
        compactor.run_once()
        assert compactor.last_error is None
        assert compactor.stats()["error"] is None

    def test_validation(self, deployment):
        store, _ = deployment
        with pytest.raises(ValueError):
            Compactor(store, retention_days=0)
        with pytest.raises(ValueError):
            Compactor(store, retention_days=1, interval_s=0)


class TestThread:
    def test_background_pass_runs_and_stops(self, deployment):
        store, _ = deployment
        fired = threading.Event()
        compactor = Compactor(
            store, retention_days=2, interval_s=0.01,
            after_compact=lambda report: fired.set(),
        )
        compactor.start()
        assert compactor.running
        assert compactor.start() is compactor  # idempotent
        assert fired.wait(timeout=5.0)
        compactor.stop()
        assert not compactor.running
        assert store.cold.event_count == 12
        assert compactor.stats()["error"] is None

    def test_errors_are_contained(self, deployment):
        store, _ = deployment
        boom = RuntimeError("disk full")

        def exploding(*args, **kwargs):
            raise boom

        store.compact = exploding
        compactor = Compactor(store, retention_days=2, interval_s=0.01)
        compactor.start()
        deadline = threading.Event()
        for _ in range(200):
            if compactor.last_error is not None:
                break
            deadline.wait(0.01)
        compactor.stop()
        assert compactor.last_error is boom
        assert "disk full" in compactor.stats()["error"]

    def test_stop_with_final_pass(self, deployment):
        store, _ = deployment
        compactor = Compactor(store, retention_days=2, interval_s=3600)
        compactor.start()
        compactor.stop(final_pass=True)
        assert compactor.passes == 1
        assert store.cold.event_count == 12
