"""Shared helpers for the tiered-storage test suite."""

from __future__ import annotations

import pytest

from repro.model.time import DAY
from repro.storage.ingest import Ingestor

BASE = 1483228800.0  # 2017-01-01T00:00:00Z, matching the workload epoch


def day_ts(day: int, offset: float = 3600.0) -> float:
    """A timestamp ``offset`` seconds into day ``day`` of the test epoch."""
    return BASE + day * DAY + offset


class EventFeed:
    """Tiny deterministic ingest driver: one process/file pair per agent."""

    def __init__(self, ingestor: Ingestor) -> None:
        self.ingestor = ingestor
        self._procs = {}
        self._files = {}

    def entities(self, agent_id: int):
        if agent_id not in self._procs:
            self._procs[agent_id] = self.ingestor.process(
                agent_id, 100 + agent_id, f"worker{agent_id}.exe"
            )
            self._files[agent_id] = self.ingestor.file(
                agent_id, f"/var/log/host{agent_id}.log"
            )
        return self._procs[agent_id], self._files[agent_id]

    def emit(self, agent_id: int, ts: float, operation: str = "write"):
        proc, fobj = self.entities(agent_id)
        return self.ingestor.emit(agent_id, ts, operation, proc, fobj)

    def build(self, agent_id: int, ts: float, operation: str = "write"):
        proc, fobj = self.entities(agent_id)
        return self.ingestor.build_event(agent_id, ts, operation, proc, fobj)


@pytest.fixture
def feed():
    return EventFeed(Ingestor())
