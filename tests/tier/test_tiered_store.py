"""TieredStore: cold-scan merge, compaction safety, estimates — all backends."""

import pytest

from repro.model.time import DAY, TimeWindow
from repro.storage.database import EventStore
from repro.storage.filters import EventFilter
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.segments import SegmentedStore
from repro.tier.cold import ColdTier
from repro.tier.store import TieredStore

from tests.tier.conftest import EventFeed, day_ts

BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")


def build_hot(name, registry):
    if name == "partitioned":
        return EventStore(registry=registry)
    if name == "flat":
        return FlatStore(registry=registry)
    policy = "domain" if name.endswith("domain") else "arrival"
    return SegmentedStore(registry=registry, segments=3, policy=policy)


@pytest.fixture(params=BACKENDS)
def tiered(request, tmp_path):
    ingestor = Ingestor()
    hot = build_hot(request.param, ingestor.registry)
    cold = ColdTier(tmp_path / "cold", ingestor.registry.get)
    store = TieredStore(hot, cold, retention_days=2)
    ingestor.attach(store)
    feed = EventFeed(ingestor)
    for day in range(6):
        for agent in (1, 2, 25):
            for i in range(3):
                feed.emit(agent, day_ts(day, 300.0 * i))
    return store, feed


def all_events(store):
    return store.scan(EventFilter())


class TestCompaction:
    def test_scan_results_identical_after_compaction(self, tiered):
        store, _ = tiered
        before = all_events(store)
        report = store.compact()
        assert report.moved
        assert report.cutoff_day is not None
        # newest 2 of 6 days stay hot; 4 days x 3 agents x 3 events move
        assert report.events_migrated == 4 * 3 * 3
        assert all_events(store) == before
        assert len(store) == len(before)

    def test_hot_tier_shrinks_and_cold_grows(self, tiered):
        store, _ = tiered
        total = len(store)
        store.compact()
        assert len(store.hot) == 2 * 3 * 3
        assert store.cold.event_count == total - len(store.hot)
        assert store.events_migrated == store.cold.event_count
        assert store.compactions == 1

    def test_compaction_is_idempotent(self, tiered):
        store, _ = tiered
        before = all_events(store)
        store.compact()
        second = store.compact()
        assert not second.moved
        assert all_events(store) == before

    def test_window_scans_per_tier(self, tiered):
        store, _ = tiered
        store.compact()
        hot_window = TimeWindow(start=day_ts(5, 0.0), end=day_ts(5, 0.0) + DAY)
        cold_window = TimeWindow(start=day_ts(0, 0.0), end=day_ts(0, 0.0) + DAY)
        mixed = TimeWindow(start=day_ts(2, 0.0), end=day_ts(5, 0.0) + DAY)
        assert len(store.scan(EventFilter(window=hot_window))) == 9
        assert len(store.scan(EventFilter(window=cold_window))) == 9
        assert len(store.scan(EventFilter(window=mixed))) == 36
        # spatial constraint reaches the cold tier too
        got = store.scan(
            EventFilter(window=cold_window, agent_ids=frozenset({25}))
        )
        assert {e.agent_id for e in got} == {25}

    def test_full_scan_merges_tiers(self, tiered):
        store, _ = tiered
        before = store.full_scan(EventFilter())
        store.compact()
        assert store.full_scan(EventFilter()) == before

    def test_ingest_after_compaction_continues(self, tiered):
        store, feed = tiered
        store.compact()
        before = len(store)
        feed.emit(1, day_ts(6))
        assert len(store) == before + 1
        assert len(all_events(store)) == before + 1

    def test_late_arrival_into_cold_day_stays_queryable(self, tiered):
        store, feed = tiered
        store.compact()
        # an event landing on an already-migrated day goes hot again ...
        late = feed.emit(1, day_ts(0, 7200.0))
        window = TimeWindow(start=day_ts(0, 0.0), end=day_ts(0, 0.0) + DAY)
        got = store.scan(EventFilter(window=window))
        assert late.event_id in {e.event_id for e in got}
        assert len(got) == 10
        # ... and the next pass migrates it without duplicating anything
        report = store.compact(now=day_ts(6))
        assert report.moved
        assert len(store.scan(EventFilter(window=window))) == 10

    def test_compact_requires_a_horizon(self, tmp_path):
        ingestor = Ingestor()
        hot = FlatStore(registry=ingestor.registry)
        store = TieredStore(
            hot, ColdTier(tmp_path / "c", ingestor.registry.get)
        )
        with pytest.raises(ValueError):
            store.compact()
        with pytest.raises(ValueError):
            store.compact(retention_days=0)
        assert not store.compact(retention_days=1).moved  # empty store

    def test_retention_validation(self, tmp_path):
        ingestor = Ingestor()
        hot = FlatStore(registry=ingestor.registry)
        with pytest.raises(ValueError):
            TieredStore(
                hot,
                ColdTier(tmp_path / "c", ingestor.registry.get),
                retention_days=0,
            )


class TestSortedRunMerge:
    """_merge interleaves two sorted tier runs and drops hand-off dupes."""

    def build(self, feed, agent, times):
        return [feed.emit(agent, day_ts(0, t)) for t in times]

    def test_interleave_and_dedup(self, tmp_path):
        feed = EventFeed(Ingestor())
        a, b, c, d = self.build(feed, 1, (10.0, 20.0, 30.0, 40.0))
        hot = [a, c, d]
        cold = [a, b, d]  # a and d reachable in both tiers mid-migration
        merged = TieredStore._merge(hot, cold)
        assert merged == [a, b, c, d]
        key = lambda e: (e.start_time, e.event_id)  # noqa: E731
        assert merged == sorted(merged, key=key)

    def test_empty_runs_short_circuit(self, tmp_path):
        feed = EventFeed(Ingestor())
        run = self.build(feed, 1, (10.0, 20.0))
        assert TieredStore._merge(run, []) is run
        assert TieredStore._merge([], run) is run
        assert TieredStore._merge([], []) == []

    def test_equal_start_times_order_by_event_id(self, tmp_path):
        feed = EventFeed(Ingestor())
        x, y = self.build(feed, 1, (10.0, 10.0))
        merged = TieredStore._merge([y], [x])
        assert merged == [x, y]


class TestStoreSurface:
    def test_len_iter_and_stats_span_tiers(self, tiered):
        store, _ = tiered
        total = len(store)
        ids = {e.event_id for e in store}
        store.compact()
        assert len(store) == total
        assert {e.event_id for e in store} == ids
        stats = store.stats()
        assert stats["events"] == total
        assert stats["hot_events"] == len(store.hot)
        assert stats["cold"]["events"] == store.cold.event_count
        assert stats["compactions"] == 1

    def test_estimated_events_prunes_cold_by_zone_map(self, tiered):
        store, _ = tiered
        store.compact()
        hot_window = EventFilter(
            window=TimeWindow(start=day_ts(5, 0.0), end=day_ts(5, 0.0) + DAY)
        )
        unbounded = EventFilter()
        assert store.estimated_events(unbounded) == len(store)
        bounded = store.estimated_events(hot_window)
        assert bounded < store.estimated_events(unbounded)
        # cold contributes nothing inside the hot-only window
        assert bounded <= len(store.hot)

    def test_delegation_reaches_hot_backend(self, tiered):
        store, _ = tiered
        assert store.registry is store.hot.registry
        assert store.entity_index is store.hot.entity_index
        with pytest.raises(AttributeError):
            store.does_not_exist
        # a half-built wrapper must not recurse through __getattr__
        with pytest.raises(AttributeError):
            TieredStore.__new__(TieredStore).anything

    def test_time_range_spans_tiers(self, tiered):
        store, _ = tiered
        lo, hi = store.time_range()
        store.compact()
        assert store.time_range() == (lo, hi)


class TestRemoveEvents:
    """The backend-side migration hand-off used by compaction."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_remove_then_readd_roundtrip(self, name, tmp_path):
        ingestor = Ingestor()
        hot = build_hot(name, ingestor.registry)
        ingestor.attach(hot)
        feed = EventFeed(ingestor)
        events = [feed.emit(1, day_ts(0, 60.0 * i)) for i in range(6)]
        victims = events[:3]
        removed = hot.remove_events(victims)
        assert removed == 3
        assert len(hot) == 3
        kept = {e.event_id for e in hot.scan(EventFilter())}
        assert kept == {e.event_id for e in events[3:]}
        assert hot.remove_events(victims) == 0  # idempotent
        lo, hi = hot.time_range()
        assert lo == events[3].start_time and hi == events[5].start_time

    def test_partitioned_remove_drops_empty_partition(self, tmp_path):
        ingestor = Ingestor()
        hot = EventStore(registry=ingestor.registry)
        ingestor.attach(hot)
        feed = EventFeed(ingestor)
        day0 = [feed.emit(1, day_ts(0, 60.0 * i)) for i in range(3)]
        feed.emit(1, day_ts(1))
        assert len(hot.partition_keys) == 2
        hot.remove_events(day0)
        assert len(hot.partition_keys) == 1
        assert hot.estimated_events(EventFilter()) == 1
        assert hot.remove_events(day0) == 0  # partition already gone

    def test_empty_store_time_range(self):
        registry_store = FlatStore()
        assert registry_store.time_range() == (None, None)
        assert EventStore().time_range() == (None, None)
        assert SegmentedStore().time_range() == (None, None)
