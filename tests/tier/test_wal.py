"""Write-ahead log: durability, torn-tail detection, idempotent replay."""

import pytest

from repro.model.entities import EntityRegistry
from repro.storage.flat import FlatStore
from repro.tier.wal import WALError, WriteAheadLog

from tests.tier.conftest import day_ts


def _batch(feed, agent, day, count):
    return [feed.build(agent, day_ts(day, 60.0 * i)) for i in range(count)]


class TestAppendReplay:
    def test_roundtrip(self, feed, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        events = _batch(feed, 1, 0, 5)
        entities = [feed.entities(1)[0], feed.entities(1)[1]]
        number = wal.append(entities, events)
        assert number == 1
        assert wal.append([], _batch(feed, 2, 1, 3)) == 2

        records = list(wal.replay())
        assert [r.number for r in records] == [1, 2]
        assert records[0].events == tuple(events)
        assert records[0].max_event_id == events[-1].event_id
        assert len(records[0].entity_records) == 2
        assert wal.stats()["records_appended"] == 2
        wal.close()

    def test_replay_survives_reopen(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 2))
        with WriteAheadLog(path) as wal:
            # record numbering continues across reopen
            assert wal.append([], _batch(feed, 1, 0, 2)) == 2
            assert [r.number for r in wal.replay()] == [1, 2]

    def test_append_on_closed_log_raises(self, feed, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(WALError):
            wal.append([], _batch(feed, 1, 0, 1))

    def test_empty_log_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0
        wal.close()


class TestTornTail:
    def test_partial_last_line_is_discarded(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 3))
            wal.append([], _batch(feed, 1, 1, 3))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])  # crash mid-append
        with WriteAheadLog(path) as wal:
            records = list(wal.replay())
        assert [r.number for r in records] == [1]

    def test_torn_tail_is_truncated_on_open(self, feed, tmp_path):
        """Appends after a torn-tail recovery must stay reachable.

        Without truncation the new record lands behind the partial line
        and every future replay stops before it — acknowledged commits
        written after a crash recovery would be silently lost on the
        *next* restart.
        """
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 3))
            wal.append([], _batch(feed, 1, 1, 3))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])  # crash mid-append
        with WriteAheadLog(path) as wal:
            assert wal.append([], _batch(feed, 1, 2, 2)) == 2
        with WriteAheadLog(path) as wal:
            records = list(wal.replay())
        assert [r.number for r in records] == [1, 2]
        assert len(records[1].events) == 2

    def test_checksum_failure_stops_replay(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 2))
            wal.append([], _batch(feed, 1, 1, 2))
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"eid"', '"EID"', 1)  # corrupt record 2
        path.write_text("\n".join(lines) + "\n")
        with WriteAheadLog(path) as wal:
            assert [r.number for r in wal.replay()] == [1]

    def test_non_dict_and_garbage_lines_stop_replay(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 1))
        with path.open("a") as handle:
            handle.write("[1, 2, 3]\n")
        with WriteAheadLog(path) as wal:
            assert len(list(wal.replay())) == 1

    def test_checksummed_but_incomplete_record_stops_replay(
        self, feed, tmp_path
    ):
        import json
        import zlib

        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 1))
        bogus = {"n": 2, "eid": 99}  # valid checksum, missing evts/ents
        bogus["crc"] = zlib.crc32(
            json.dumps({"n": 2, "eid": 99}, sort_keys=True).encode()
        )
        with path.open("a") as handle:
            handle.write(json.dumps(bogus, sort_keys=True) + "\n")
        with WriteAheadLog(path) as wal:
            assert [r.number for r in wal.replay()] == [1]

    def test_replay_of_deleted_file_is_empty(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append([], _batch(feed, 1, 0, 1))
        path.unlink()
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0
        wal.close()

    def test_out_of_order_middle_raises(self, feed, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([], _batch(feed, 1, 0, 1))
            wal.append([], _batch(feed, 1, 1, 1))
        lines = path.read_text().splitlines()
        # Duplicate record 2: valid checksums but non-monotone numbering,
        # which must be loud (a silently skipped middle would lose a
        # batch).  Opening the log replays it, so the open itself fails.
        path.write_text(lines[1] + "\n" + lines[1] + "\n")
        with pytest.raises(WALError):
            WriteAheadLog(path)


class TestReplayInto:
    def test_applies_entities_and_events(self, feed, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        events = _batch(feed, 1, 0, 4)
        proc, fobj = feed.entities(1)
        wal.append([proc, fobj], events)

        registry = EntityRegistry()
        store = FlatStore(registry=registry)
        applied = wal.replay_into(registry, [store])
        assert applied == 4
        assert len(store) == 4
        assert len(registry) == 2
        wal.close()

    def test_skip_rules_make_replay_idempotent(self, feed, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        first = _batch(feed, 1, 0, 3)
        second = _batch(feed, 1, 1, 3)
        proc, fobj = feed.entities(1)
        wal.append([proc, fobj], first)
        wal.append([], second)

        registry = EntityRegistry()
        store = FlatStore(registry=registry)
        snapshot_max = first[-1].event_id  # "already in the snapshot"
        skipped_id = second[0].event_id  # "already migrated cold"
        applied = wal.replay_into(
            registry,
            [store],
            after_event_id=snapshot_max,
            skip_event=lambda e: e.event_id == skipped_id,
        )
        assert applied == 2
        assert {e.event_id for e in store} == {
            e.event_id for e in second[1:]
        }
        # replaying again over the same store adds nothing new
        applied2 = wal.replay_into(
            registry, [store], after_event_id=second[-1].event_id
        )
        assert applied2 == 0
        wal.close()

    def test_replay_into_store_without_add_batch(self, feed, tmp_path):
        class PerEventStore(FlatStore):
            def __init__(self, registry):
                super().__init__(registry=registry)
                self.singles = 0

            def add_event(self, event):
                self.singles += 1
                super().add_event(event)

        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append([], _batch(feed, 1, 0, 3))
        registry = EntityRegistry()
        store = PerEventStore(registry)
        store.add_batch = None
        assert wal.replay_into(registry, [store]) == 3
        assert store.singles == 3
        wal.close()


class TestReset:
    def test_reset_truncates_and_restarts_numbering(self, feed, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append([], _batch(feed, 1, 0, 2))
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.size_bytes() == 0
        assert list(wal.replay()) == []
        assert wal.append([], _batch(feed, 1, 1, 1)) == 1
        wal.close()

    def test_nosync_mode_still_replays(self, feed, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", sync=False) as wal:
            wal.append([], _batch(feed, 1, 0, 2))
            assert len(list(wal.replay())) == 1
