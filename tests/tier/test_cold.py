"""Cold tier: segment round-trips, zone-map pruning, manifest durability."""

import json

import pytest

from repro.model.entities import EntityType
from repro.model.events import Operation
from repro.model.time import DAY, TimeWindow
from repro.storage.filters import EventFilter
from repro.storage.partition import PartitionKey
from repro.tier.cold import ColdTier, ColdTierError, ZoneMap

from tests.tier.conftest import day_ts


def day_ordinal(day: int) -> int:
    return int(day_ts(day) // DAY)


def make_tier(feed, tmp_path, days=(0, 1, 2), agents=(1,), per_day=4, **kw):
    tier = ColdTier(tmp_path / "cold", feed.ingestor.registry.get, **kw)
    for day in days:
        for agent in agents:
            events = [
                feed.emit(agent, day_ts(day, 120.0 * i)) for i in range(per_day)
            ]
            key = PartitionKey(day=day_ordinal(day), agent_group=agent // 10)
            tier.add_segment(key, events)
    return tier


class TestSegmentRoundTrip:
    def test_events_survive_compression(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,), per_day=6)
        got = tier.scan(EventFilter())
        assert len(got) == 6
        assert got == sorted(got, key=lambda e: (e.start_time, e.event_id))
        assert all(e.operation is Operation.WRITE for e in got)
        assert tier.event_count == 6

    def test_reload_from_manifest(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1))
        before = tier.scan(EventFilter())
        reloaded = ColdTier(tmp_path / "cold", feed.ingestor.registry.get)
        assert reloaded.scan(EventFilter()) == before
        assert reloaded.event_count == tier.event_count
        assert len(reloaded.zones) == 2

    def test_empty_segment_rejected(self, feed, tmp_path):
        tier = ColdTier(tmp_path / "cold", feed.ingestor.registry.get)
        with pytest.raises(ValueError):
            tier.add_segment(PartitionKey(day=0, agent_group=0), [])

    def test_corrupt_manifest_is_loud(self, feed, tmp_path):
        make_tier(feed, tmp_path, days=(0,))
        (tmp_path / "cold" / "manifest.json").write_text("{not json")
        with pytest.raises(ColdTierError):
            ColdTier(tmp_path / "cold", feed.ingestor.registry.get)

    def test_unsupported_manifest_version_is_loud(self, feed, tmp_path):
        make_tier(feed, tmp_path, days=(0,))
        path = tmp_path / "cold" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ColdTierError):
            ColdTier(tmp_path / "cold", feed.ingestor.registry.get)

    def test_corrupt_segment_file_is_loud(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,))
        zone = tier.zones[0]
        (tmp_path / "cold" / zone.filename).write_bytes(b"garbage")
        fresh = ColdTier(tmp_path / "cold", feed.ingestor.registry.get)
        with pytest.raises(ColdTierError):
            fresh.scan(EventFilter())


class TestZoneMapPruning:
    def test_time_window_prunes_other_days(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1, 2, 3))
        window = TimeWindow(start=day_ts(1, 0.0), end=day_ts(1, 0.0) + DAY)
        got = tier.scan(EventFilter(window=window))
        assert len(got) == 4
        assert tier.segments_pruned == 3
        assert tier.segments_scanned == 1
        assert tier.prune_rate() == 0.75

    def test_agent_set_prunes(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,), agents=(1, 25))
        got = tier.scan(EventFilter(agent_ids=frozenset({25})))
        assert {e.agent_id for e in got} == {25}
        assert tier.segments_pruned == 1

    def test_operation_and_object_type_prune(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,))
        assert (
            tier.scan(EventFilter(operations=frozenset({Operation.CONNECT})))
            == []
        )
        assert tier.segments_pruned == 1
        assert tier.scan(EventFilter(object_type=EntityType.NETWORK)) == []
        assert tier.segments_pruned == 2

    def test_entity_id_sets_prune(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,))
        proc, fobj = feed.entities(1)
        assert tier.scan(
            EventFilter(subject_ids=frozenset({proc.id + 999}))
        ) == []
        assert tier.segments_pruned == 1
        got = tier.scan(EventFilter(object_ids=frozenset({fobj.id})))
        assert len(got) == 4
        assert tier.scan(
            EventFilter(object_ids=frozenset({fobj.id + 999}))
        ) == []

    def test_estimated_events_counts_unpruned_only(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1, 2))
        window = TimeWindow(start=day_ts(0, 0.0), end=day_ts(0, 0.0) + DAY)
        assert tier.estimated_events(EventFilter(window=window)) == 4
        assert tier.estimated_events(EventFilter()) == 12

    def test_zone_map_json_roundtrip(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,))
        zone = tier.zones[0]
        assert ZoneMap.from_json(zone.to_json()) == zone
        assert zone.key == PartitionKey(
            day=day_ordinal(0), agent_group=0
        )


class TestSegmentCache:
    def test_lru_keeps_hot_segments(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1, 2), cache_segments=2)
        tier.scan(EventFilter())  # touch all three
        assert len(tier._cache) == 2  # LRU bound holds

    def test_contains_event_uses_id_range_prefilter(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0,))
        stored = tier.scan(EventFilter())[0]
        assert tier.contains_event(stored)
        fresh = feed.emit(1, day_ts(5))
        assert not tier.contains_event(fresh)

    def test_event_id_probe_decompresses_each_segment_once(
        self, feed, tmp_path
    ):
        tier = make_tier(feed, tmp_path, days=(0, 1, 2), per_day=5)
        stored = tier.scan(EventFilter())
        calls = []
        original = tier._decoded
        tier._decoded = lambda zone: (
            calls.append(zone.filename), original(zone)
        )[1]
        probe = tier.event_id_probe()
        assert all(probe(e) for e in stored)
        fresh = feed.emit(1, day_ts(9))
        assert not probe(fresh)  # above every zone's id range: no reads
        # one materialization per segment, however many events were probed
        assert len(calls) == len(tier.zones)

    def test_seq_maxima_come_from_manifest(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1), agents=(1, 2), per_day=3)
        reloaded = ColdTier(tmp_path / "cold", feed.ingestor.registry.get)
        maxima = reloaded.seq_maxima()
        assert set(maxima) == {1, 2}
        assert maxima[1] == 6  # 2 days x 3 events, per-agent monotone seq
        assert maxima[2] == 6

    def test_iteration_and_sizes(self, feed, tmp_path):
        tier = make_tier(feed, tmp_path, days=(0, 1))
        assert len(list(iter(tier))) == 8
        assert tier.size_bytes() > 0
        assert tier.max_event_id() == max(e.event_id for e in tier)
        lo, hi = tier.time_range()
        assert lo == day_ts(0, 0.0) + 0.0 or lo <= hi
        empty = ColdTier(tmp_path / "cold2", feed.ingestor.registry.get)
        assert empty.time_range() == (None, None)
        assert empty.prune_rate() == 0.0

    def test_cache_segments_validation(self, feed, tmp_path):
        with pytest.raises(ValueError):
            ColdTier(tmp_path / "cold", feed.ingestor.registry.get,
                     cache_segments=0)


def mixed_segment_tier(feed, tmp_path, **kw):
    """One segment holding two agents, two operations and two object types
    — nothing the zone map alone can prune for the filters below."""
    tier = ColdTier(tmp_path / "cold", feed.ingestor.registry.get, **kw)
    ingestor = feed.ingestor
    proc, fobj = feed.entities(1)
    conn = ingestor.connection(1, "10.0.0.5", 51000, "10.1.1.1", 4444)
    events = [feed.emit(1, day_ts(0, 60.0 * i)) for i in range(4)]
    events += [feed.emit(1, day_ts(0, 300.0 + 60.0 * i), "read") for i in range(2)]
    events.append(ingestor.emit(1, day_ts(0, 600.0), "connect", proc, conn))
    events += [feed.emit(2, day_ts(0, 7200.0 + 60.0 * i)) for i in range(3)]
    tier.add_segment(PartitionKey(day=day_ordinal(0), agent_group=0), events)
    return tier, events


class TestColumnarScan:
    """The kernel-era cold path: structural prefilter on raw columns."""

    def interpreted(self, tier, flt):
        from repro.storage.kernels import use_kernels

        with use_kernels(False):
            return tier.scan(flt)

    @pytest.mark.parametrize(
        "flt_kwargs",
        [
            {"agent_ids": frozenset({2})},
            {"operations": frozenset({Operation.READ})},
            {"object_type": EntityType.NETWORK},
            {"window": TimeWindow(start=day_ts(0, 250.0), end=day_ts(0, 700.0))},
        ],
    )
    def test_row_level_structural_filters(self, feed, tmp_path, flt_kwargs):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        flt = EventFilter(**flt_kwargs)
        got = tier.scan(flt)
        assert got  # the segment holds at least one survivor per case
        assert got == self.interpreted(tier, flt)
        assert tier.segments_scanned >= 1  # zone map could not prune

    def test_narrowed_id_sets_filter_rows(self, feed, tmp_path):
        tier, events = mixed_segment_tier(feed, tmp_path)
        proc, fobj = feed.entities(2)
        flt = EventFilter(
            subject_ids=frozenset({proc.id}), object_ids=frozenset({fobj.id})
        )
        got = tier.scan(flt)
        assert got == self.interpreted(tier, flt)
        assert {e.agent_id for e in got} == {2}

    def test_prefilter_misses_never_materialize(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        # Agent 3 is inside no zone map: the scan is pruned without decode.
        assert tier.scan(EventFilter(agent_ids=frozenset({3}))) == []
        assert tier._cache == {}
        # A window inside the segment's range but between events survives
        # the zone map, decodes columns, then matches no row: the block
        # must stay un-materialized (no SystemEvent construction).
        window = TimeWindow(start=day_ts(0, 601.0), end=day_ts(0, 650.0))
        assert tier.scan(EventFilter(window=window)) == []
        (block,) = tier._cache.values()
        assert not block.rows_materialized

    def test_materialized_segments_still_scan_correctly(self, feed, tmp_path):
        tier, events = mixed_segment_tier(feed, tmp_path)
        list(iter(tier))  # materialize via iteration (recovery-style access)
        (block,) = tier._cache.values()
        assert block.rows_materialized
        flt = EventFilter(operations=frozenset({Operation.CONNECT}))
        got = tier.scan(flt)
        assert [e.operation for e in got] == [Operation.CONNECT]
        assert got == self.interpreted(tier, flt)

    def test_entity_predicates_run_after_prefilter(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        from repro.storage.filters import AttrPredicate, PredicateLeaf

        flt = EventFilter(
            agent_ids=frozenset({1}),
            object_pred=PredicateLeaf(
                AttrPredicate(attr="name", op="=", value="%host1%")
            ),
        )
        got = tier.scan(flt)
        assert got == self.interpreted(tier, flt)
        assert got and all(e.agent_id == 1 for e in got)


class TestColdScanResultCache:
    def test_repeat_scans_hit_the_cache(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        flt = EventFilter(agent_ids=frozenset({1}))
        first = tier.scan(flt)
        assert tier.scan_cache.stats()["misses"] == 1
        assert tier.scan(flt) == first
        assert tier.scan_cache.stats()["hits"] == 1

    def test_giant_narrowed_id_sets_skip_the_cache(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        flt = EventFilter(subject_ids=frozenset(range(1000)))
        tier.scan(flt)
        assert tier.scan_cache.stats()["entries"] == 0

    def test_cache_disabled(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path, scan_cache_entries=0)
        assert tier.scan_cache is None
        flt = EventFilter(agent_ids=frozenset({2}))
        assert tier.scan(flt) == tier.scan(flt)

    def test_interpreted_path_bypasses_the_cache(self, feed, tmp_path):
        from repro.storage.kernels import use_kernels

        tier, _ = mixed_segment_tier(feed, tmp_path)
        with use_kernels(False):
            tier.scan(EventFilter(agent_ids=frozenset({1})))
        assert tier.scan_cache.stats()["misses"] == 0

    def test_stats_include_scan_cache(self, feed, tmp_path):
        tier, _ = mixed_segment_tier(feed, tmp_path)
        tier.scan(EventFilter(agent_ids=frozenset({1})))
        assert tier.stats()["scan_cache"]["misses"] == 1
        tier_off, _ = mixed_segment_tier(
            feed, tmp_path / "other", scan_cache_entries=0
        )
        assert "scan_cache" not in tier_off.stats()
