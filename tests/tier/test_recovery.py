"""Data-dir recovery: snapshot + WAL replay, reconciliation, counters."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.storage.filters import EventFilter
from repro.tier import checkpoint, open_data_dir, snapshot_path, wal_path
from repro.storage.ingest import Ingestor
from repro.storage.flat import FlatStore

from tests.tier.conftest import EventFeed, day_ts


def durable_system(tmp_path, **overrides):
    config = SystemConfig(
        data_dir=str(tmp_path / "data"),
        compact_interval_s=3600,
        **overrides,
    )
    return AIQLSystem(config)


def stream_days(system, days=4, per_day=5, agent=1):
    feed = EventFeed(system.ingestor)
    with system.stream(batch_size=3) as session:
        proc, fobj = feed.entities(agent)
        for day in range(days):
            for i in range(per_day):
                session.append(
                    agent, day_ts(day, 600.0 * i), "write", proc, fobj
                )
    return system.ingestor.events_ingested


def content(system):
    return [
        (e.event_id, e.agent_id, e.seq, e.start_time, e.operation)
        for e in system.store.scan(EventFilter())
    ]


class TestFreshStart:
    def test_empty_dir_recovers_to_empty_system(self, tmp_path):
        with durable_system(tmp_path) as system:
            assert system.durable
            assert system.recovery.total_events == 0
            assert len(system.store) == 0

    def test_ram_only_system_refuses_durability_api(self):
        system = AIQLSystem()
        assert not system.durable
        with pytest.raises(RuntimeError):
            system.checkpoint()
        with pytest.raises(RuntimeError):
            system.compact()
        system.close()  # no-op, must not raise


class TestWalOnlyRecovery:
    def test_committed_batches_survive_a_crash(self, tmp_path):
        system = durable_system(tmp_path)
        total = stream_days(system)
        reference = content(system)
        # crash: no checkpoint, no close — the WAL is all there is
        del system
        with AIQLSystem.recover(str(tmp_path / "data")) as recovered:
            assert recovered.recovery.wal_events_replayed == total
            assert recovered.recovery.snapshot_events == 0
            assert recovered.ingestor.events_ingested == total
            assert content(recovered) == reference

    def test_recovery_is_idempotent(self, tmp_path):
        system = durable_system(tmp_path)
        stream_days(system)
        reference = content(system)
        del system
        once = AIQLSystem.recover(str(tmp_path / "data"))
        first = content(once)
        once.close()
        twice = AIQLSystem.recover(str(tmp_path / "data"))
        assert content(twice) == first == reference
        twice.close()

    def test_ingest_continues_after_recovery(self, tmp_path):
        system = durable_system(tmp_path)
        total = stream_days(system, agent=7)
        last = content(system)[-1]
        del system
        recovered = AIQLSystem.recover(str(tmp_path / "data"))
        feed = EventFeed(recovered.ingestor)
        fresh = feed.emit(7, day_ts(9))
        assert fresh.event_id == last[0] + 1  # ids continue the stream
        assert fresh.seq == last[2] + 1  # per-agent seqs continue too
        assert recovered.ingestor.events_ingested == total + 1
        recovered.close()


class TestCheckpoint:
    def test_snapshot_plus_tail_wal(self, tmp_path):
        system = durable_system(tmp_path)
        stream_days(system, days=3)
        written = system.checkpoint()
        assert written == len(system.store)
        assert wal_path(system.config.data_dir).stat().st_size == 0
        # post-checkpoint commits land in the (reset) WAL
        feed = EventFeed(system.ingestor)
        feed.entities(1)
        with system.stream(batch_size=2) as session:
            proc, fobj = feed.entities(1)
            session.append(1, day_ts(8), "write", proc, fobj)
        reference = content(system)
        del system
        with AIQLSystem.recover(str(tmp_path / "data")) as recovered:
            report = recovered.recovery
            assert report.snapshot_events == len(reference) - 1
            assert report.wal_events_replayed == 1
            assert content(recovered) == reference

    def test_checkpoint_after_compaction_snapshots_hot_only(self, tmp_path):
        system = durable_system(tmp_path, retention_days=2)
        stream_days(system, days=5)
        reference = content(system)
        report = system.compact()
        assert report.moved
        system.checkpoint()
        cold_events = system.store.cold.event_count
        del system
        with AIQLSystem.recover(str(tmp_path / "data")) as recovered:
            assert recovered.recovery.cold_events == cold_events
            assert recovered.recovery.snapshot_events == (
                len(reference) - cold_events
            )
            assert content(recovered) == reference


class TestReconciliation:
    def test_crash_between_cold_publish_and_hot_removal(self, tmp_path):
        """Mid-migration crash: events reachable in both tiers converge."""
        ingestor = Ingestor()
        hot = FlatStore(registry=ingestor.registry)
        data_dir = tmp_path / "data"
        store, wal, _ = open_data_dir(data_dir, hot, ingestor)
        ingestor.attach(store)
        feed = EventFeed(ingestor)
        old_day = [feed.emit(1, day_ts(0, 60.0 * i)) for i in range(4)]
        feed.emit(1, day_ts(3))
        # the snapshot covers everything ...
        checkpoint(data_dir, store, wal)
        # ... then a migration publishes its cold segment and crashes
        # before the hot removal (and before any further checkpoint)
        key = store.partition_scheme.key_for(1, old_day[0].start_time)
        store.cold.add_segment(key, old_day)
        wal.close()

        ingestor2 = Ingestor()
        hot2 = FlatStore(registry=ingestor2.registry)
        store2, wal2, report = open_data_dir(data_dir, hot2, ingestor2)
        assert report.duplicates_reconciled == 4
        assert report.cold_events == 4
        assert len(store2) == 5  # no double counting
        ids = [e.event_id for e in store2.scan(EventFilter())]
        assert ids == sorted(set(ids))
        wal2.close()


class TestCheckpointCommitAtomicity:
    def test_wal_appends_serialize_with_checkpoints(self, tmp_path):
        """A commit's WAL append + publication is atomic w.r.t. checkpoint.

        The ingestor's WAL lock must be the tiered store's writer lock;
        a checkpoint racing a commit then snapshots either neither or
        both halves, never an acknowledged batch that is durable nowhere.
        """
        import threading

        system = durable_system(tmp_path)
        assert system.ingestor._wal_lock is system.store.writer_lock

        proc = system.ingestor.process(1, 101, "w.exe")
        fobj = system.ingestor.file(1, "/var/x.log")
        session = system.stream(batch_size=10 ** 9)
        for i in range(5):
            session.append(1, day_ts(0, 60.0 * i), "write", proc, fobj)

        wal = system._wal
        entered, release = threading.Event(), threading.Event()
        original_append = wal.append

        def slow_append(entities, events):
            entered.set()
            assert release.wait(5)
            return original_append(entities, events)

        wal.append = slow_append
        committer = threading.Thread(target=session.commit)
        committer.start()
        assert entered.wait(5)
        checkpointer = threading.Thread(target=system.checkpoint)
        checkpointer.start()
        checkpointer.join(timeout=0.2)
        assert checkpointer.is_alive(), (
            "checkpoint must block while a commit is mid-flight"
        )
        release.set()
        committer.join(timeout=5)
        checkpointer.join(timeout=5)
        total = system.ingestor.events_ingested
        assert total == 5
        del session, system  # crash after the acknowledged commit

        with AIQLSystem.recover(str(tmp_path / "data")) as recovered:
            assert recovered.ingestor.events_ingested == total


class TestConcurrentCompaction:
    def test_racing_compact_passes_write_no_duplicate_segments(self, tmp_path):
        import threading

        system = durable_system(tmp_path, retention_days=1)
        stream_days(system, days=5)
        total = system.ingestor.events_ingested
        barrier = threading.Barrier(2)

        def run():
            barrier.wait()
            system.compact()

        threads = [threading.Thread(target=run) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(system.store) == total
        assert (
            len(system.store.hot) + system.store.cold.event_count == total
        )
        system.close()


class TestSystemIntegration:
    def test_background_compactor_starts_with_retention(self, tmp_path):
        with durable_system(tmp_path, retention_days=2) as system:
            assert system.compactor is not None
            assert system.compactor.running
            stats = system.stats()
            assert "wal" in stats and "compactor" in stats
            assert stats["recovery"]["next_event_id"] == 1
        assert not system.compactor.running  # close() stopped it

    def test_no_compactor_without_retention(self, tmp_path):
        with durable_system(tmp_path) as system:
            assert system.compactor is None

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SystemConfig(retention_days=2)  # needs data_dir
        with pytest.raises(ValueError):
            SystemConfig(data_dir="x", retention_days=0)
        with pytest.raises(ValueError):
            SystemConfig(compact_interval_s=0)
        with pytest.raises(ValueError):
            SystemConfig(cold_cache_segments=0)

    def test_snapshot_path_layout(self, tmp_path):
        with durable_system(tmp_path) as system:
            stream_days(system, days=1)
            system.checkpoint()
            root = tmp_path / "data"
            assert snapshot_path(root).exists()
            assert wal_path(root).exists()
            assert (root / "cold").is_dir()
