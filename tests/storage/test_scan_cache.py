"""ScanCache + filter fingerprinting: LRU bounds, invalidation, dedup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.time import DAY, TimeWindow
from repro.service.cache import ScanCache
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    canonical_predicate,
    filter_fingerprint,
)
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme


def leaf(attr, op, value):
    return PredicateLeaf(AttrPredicate(attr, op, value))


class TestFilterFingerprint:
    def test_equal_filters_equal_fingerprints(self):
        a = EventFilter(agent_ids=frozenset({1, 2}))
        b = EventFilter(agent_ids=frozenset({2, 1}))
        assert filter_fingerprint(a) == filter_fingerprint(b)

    def test_and_children_order_insensitive(self):
        x, y = leaf("exe_name", "=", "bash"), leaf("user", "=", "root")
        a = EventFilter(subject_pred=PredicateAnd((x, y)))
        b = EventFilter(subject_pred=PredicateAnd((y, x)))
        assert filter_fingerprint(a) == filter_fingerprint(b)

    def test_or_children_order_insensitive(self):
        x, y = leaf("name", "=", "%.sh"), leaf("name", "=", "%.py")
        a = EventFilter(object_pred=PredicateOr((x, y)))
        b = EventFilter(object_pred=PredicateOr((y, x)))
        assert filter_fingerprint(a) == filter_fingerprint(b)

    def test_case_insensitive_values_share_fingerprint(self):
        # String matching is case-insensitive throughout, so the
        # fingerprint must fold case or equal filters would miss.
        a = EventFilter(subject_pred=leaf("exe_name", "=", "BASH"))
        b = EventFilter(subject_pred=leaf("exe_name", "=", "bash"))
        assert filter_fingerprint(a) == filter_fingerprint(b)

    def test_in_list_order_and_container_insensitive(self):
        a = EventFilter(event_pred=leaf("amount", "in", (1, 2, 3)))
        b = EventFilter(event_pred=leaf("amount", "in", [3, 1, 2]))
        assert filter_fingerprint(a) == filter_fingerprint(b)

    def test_ordered_comparisons_do_not_fold_case(self):
        # Regression: < <= > >= compare raw strings at match time
        # (case-sensitive), so "ABC" and "abc" thresholds must NOT share a
        # fingerprint or the cache would serve one query the other's rows.
        a = EventFilter(subject_pred=leaf("exe_name", ">", "ABC"))
        b = EventFilter(subject_pred=leaf("exe_name", ">", "abc"))
        assert filter_fingerprint(a) != filter_fingerprint(b)

    def test_different_windows_differ(self):
        a = EventFilter(window=TimeWindow(start=0.0, end=DAY))
        b = EventFilter(window=TimeWindow(start=0.0, end=2 * DAY))
        assert filter_fingerprint(a) != filter_fingerprint(b)

    def test_not_is_preserved(self):
        a = EventFilter(subject_pred=PredicateNot(leaf("user", "=", "root")))
        b = EventFilter(subject_pred=leaf("user", "=", "root"))
        assert filter_fingerprint(a) != filter_fingerprint(b)

    def test_fingerprint_is_hashable(self):
        flt = EventFilter(
            agent_ids=frozenset({3}),
            subject_pred=PredicateAnd(
                (leaf("exe_name", "=", "a"), leaf("user", "in", ["x", "y"]))
            ),
            subject_ids=frozenset({10, 11}),
        )
        hash(filter_fingerprint(flt))
        assert canonical_predicate(None) is None


class TestScanCacheCore:
    def test_hit_after_miss(self):
        cache = ScanCache(max_entries=4)
        calls = []
        value = cache.get_or_compute("p1", "f1", lambda: calls.append(1) or [1, 2])
        assert value == [1, 2]
        again = cache.get_or_compute("p1", "f1", lambda: calls.append(1) or [9])
        assert again == [1, 2]
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_respects_bound(self):
        cache = ScanCache(max_entries=2)
        cache.get_or_compute("p1", "a", lambda: [1])
        cache.get_or_compute("p1", "b", lambda: [2])
        cache.get_or_compute("p1", "a", lambda: [0])  # refresh a
        cache.get_or_compute("p1", "c", lambda: [3])  # evicts b
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get_or_compute("p1", "a", lambda: [9]) == [1]  # still hot
        cache.get_or_compute("p1", "b", lambda: [8])
        assert cache.misses == 4  # b was recomputed

    def test_invalidate_drops_only_that_partition(self):
        cache = ScanCache(max_entries=8)
        cache.get_or_compute("p1", "a", lambda: [1])
        cache.get_or_compute("p2", "a", lambda: [2])
        assert cache.invalidate("p1") == 1
        assert cache.get_or_compute("p2", "a", lambda: [9]) == [2]  # hit
        assert cache.get_or_compute("p1", "a", lambda: [7]) == [7]  # recomputed

    def test_invalidation_during_compute_prevents_stale_insert(self):
        cache = ScanCache(max_entries=8)

        def compute():
            # An ingest lands in partition p1 while this scan is running.
            cache.invalidate("p1")
            return [1]

        assert cache.get_or_compute("p1", "a", compute) == [1]
        # The raced result must not have been cached.
        assert cache.get_or_compute("p1", "a", lambda: [2]) == [2]

    def test_miss_after_invalidate_does_not_join_stale_inflight(self):
        """Read-your-writes: a scan submitted after an ingest must compute
        fresh, not join a single-flight started before the ingest."""
        import threading

        cache = ScanCache(max_entries=8)
        release = threading.Event()
        started = threading.Event()
        results = {}

        def slow_pre_ingest_scan():
            started.set()
            assert release.wait(5)
            return [1]  # the pre-ingest view

        worker = threading.Thread(
            target=lambda: results.setdefault(
                "old", cache.get_or_compute("p1", "a", slow_pre_ingest_scan)
            )
        )
        worker.start()
        assert started.wait(5)
        cache.invalidate("p1")  # the ingest lands
        fresh = cache.get_or_compute("p1", "a", lambda: [2])
        assert fresh == [2]  # computed fresh, did not join the stale owner
        release.set()
        worker.join()
        assert results["old"] == [1]  # detached owner still resolved
        # The fresh (post-ingest) value is the one that stayed cached.
        assert cache.get_or_compute("p1", "a", lambda: [9]) == [2]

    def test_compute_error_not_cached(self):
        cache = ScanCache(max_entries=8)
        with pytest.raises(ZeroDivisionError):
            cache.get_or_compute("p1", "a", lambda: 1 / 0 and [])
        assert cache.get_or_compute("p1", "a", lambda: [5]) == [5]

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ScanCache(max_entries=0)


def test_compute_error_raises_original():
    cache = ScanCache()

    def boom():
        raise KeyError("x")

    with pytest.raises(KeyError):
        cache.get_or_compute("p", "f", boom)


class TestStatsSnapshot:
    """stats() is the canonical, mutually consistent counter snapshot."""

    def test_every_outcome_is_counted(self):
        cache = ScanCache(max_entries=2)
        cache.get_or_compute("p", "a", lambda: [1], generation=1)  # miss
        cache.get_or_compute("p", "a", lambda: [2], generation=1)  # hit
        cache.get_or_compute("p", "a", lambda: [3], generation=2)  # gen miss
        cache.get_or_compute("p", "b", lambda: [4])                # miss
        cache.get_or_compute("p", "c", lambda: [5])                # miss+evict
        cache.invalidate("p")
        stats = cache.stats()
        assert stats == {
            "entries": 0,
            "hits": 1,
            "misses": 4,
            "evictions": 1,
            "invalidations": 1,
            "shared_waits": 0,
            "generation_mismatches": 1,
        }

    def test_generation_mismatch_evicts_stale_entry(self):
        cache = ScanCache(max_entries=8)
        cache.get_or_compute("p", "a", lambda: [1], generation=1)
        cache.get_or_compute("p", "a", lambda: [2], generation=2)
        # The stale generation's entry was evicted, not shadowed: the
        # cache holds exactly the rebuilt entry.
        assert len(cache) == 1
        assert cache.stats()["generation_mismatches"] == 1

    def test_single_flight_wait_counted(self):
        import threading
        import time

        cache = ScanCache(max_entries=8)
        release = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            assert release.wait(5)
            return [1]

        owner = threading.Thread(
            target=lambda: cache.get_or_compute("p", "a", slow)
        )
        owner.start()
        assert started.wait(5)
        waiter = threading.Thread(
            target=lambda: cache.get_or_compute("p", "a", lambda: [9])
        )
        waiter.start()
        deadline = time.monotonic() + 5
        while cache.shared_waits == 0 and time.monotonic() < deadline:
            time.sleep(0.001)  # waiter registers before the owner releases
        release.set()
        owner.join()
        waiter.join()
        stats = cache.stats()
        assert stats["shared_waits"] == 1
        assert stats["misses"] == 1  # one compute, shared by both callers


class TestEventStoreIntegration:
    def _store(self):
        ingestor = Ingestor()
        store = EventStore(
            registry=ingestor.registry,
            scheme=PartitionScheme(agents_per_group=1),
            scan_cache=ScanCache(max_entries=64),
        )
        ingestor.attach(store)
        return ingestor, store

    def test_repeated_scan_served_from_cache(self):
        ingestor, store = self._store()
        proc = ingestor.process(1, 10, "bash")
        target = ingestor.file(1, "/etc/passwd")
        for day in range(3):
            ingestor.emit(1, day * DAY + 5.0, "read", proc, target)
        flt = EventFilter(window=TimeWindow(start=0.0, end=3 * DAY))
        first = store.scan(flt)
        assert store.scan_cache.misses == 3  # one per partition
        second = store.scan(flt)
        assert second == first
        assert store.scan_cache.hits == 3

    def test_ingest_invalidates_only_touched_partition(self):
        ingestor, store = self._store()
        proc = ingestor.process(1, 10, "bash")
        target = ingestor.file(1, "/etc/passwd")
        ingestor.emit(1, 5.0, "read", proc, target)
        ingestor.emit(1, DAY + 5.0, "read", proc, target)
        flt = EventFilter(window=TimeWindow(start=0.0, end=2 * DAY))
        store.scan(flt)
        misses_before = store.scan_cache.misses
        # New event lands in day 0 only; day 1's entry stays warm.
        ingestor.emit(1, 6.0, "write", proc, target)
        result = store.scan(flt)
        assert len(result) == 3
        assert store.scan_cache.misses == misses_before + 1
        assert store.scan_cache.hits == 1
        assert result == store.full_scan(flt)

    def test_add_batch_invalidates_touched_partitions_once(self):
        ingestor, store = self._store()
        proc = ingestor.process(1, 10, "bash")
        target = ingestor.file(1, "/etc/passwd")
        ingestor.emit(1, 5.0, "read", proc, target)
        ingestor.emit(1, DAY + 5.0, "read", proc, target)
        flt = EventFilter(window=TimeWindow(start=0.0, end=2 * DAY))
        store.scan(flt)  # warm both day partitions
        cache = store.scan_cache
        invalidations_before = cache.invalidations
        batch = [
            ingestor.build_event(1, 6.0 + i, "write", proc, target)
            for i in range(10)
        ]
        touched = store.add_batch(batch)
        assert len(touched) == 1  # all ten events land in day 0
        assert cache.invalidations == invalidations_before + 1
        result = store.scan(flt)
        assert result == store.full_scan(flt)
        assert cache.hits == 1  # day 1's entry stayed warm


# Random interleavings of batch commits and cached scans.  Three agents with
# agents_per_group=1 and same-day timestamps give three distinct partitions;
# the invariants: a scan never returns stale rows for a partition a commit
# touched, and a commit never evicts the cached scans of untouched
# partitions (their next scan is a hit, not a recompute).

_AGENTS = (1, 2, 3)

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("commit"),
            st.lists(st.sampled_from(_AGENTS), min_size=1, max_size=3),
        ),
        st.tuples(st.just("scan"), st.sampled_from(_AGENTS)),
    ),
    min_size=1,
    max_size=40,
)


class TestPartitionScopedInvalidationProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_random_interleavings_never_stale_never_overevict(self, ops):
        ingestor = Ingestor()
        store = EventStore(
            registry=ingestor.registry,
            scheme=PartitionScheme(agents_per_group=1),
            scan_cache=ScanCache(max_entries=64),
        )
        ingestor.attach(store)
        session = StreamSession(ingestor, batch_size=10**9)
        procs = {a: ingestor.process(a, 10, "bash") for a in _AGENTS}
        files = {a: ingestor.file(a, f"/data/{a}") for a in _AGENTS}
        filters = {a: EventFilter(agent_ids=frozenset({a})) for a in _AGENTS}
        cache = store.scan_cache
        clock = {a: 0.0 for a in _AGENTS}
        warm = set()  # agents whose partition has a cached scan
        for op in ops:
            if op[0] == "commit":
                _, agents = op
                for agent in agents:
                    clock[agent] += 1.0
                    session.append(
                        agent, 5.0 + clock[agent], "read",
                        procs[agent], files[agent],
                    )
                session.commit()
                warm -= set(agents)  # touched partitions are invalidated...
            else:
                _, agent = op
                hits_before = cache.hits
                result = store.scan(filters[agent])
                # ...and a scan never returns stale rows (oracle equality).
                assert result == store.full_scan(filters[agent])
                if agent in warm:
                    # Untouched partitions were NOT evicted: warm entries
                    # are served from cache, not recomputed.
                    assert cache.hits == hits_before + 1
                if clock[agent] > 0:  # partition exists => entry now cached
                    warm.add(agent)


class TestGenerationKeying:
    """Block-generation keyed entries: the unified invalidation path."""

    def test_hit_requires_generation_match(self):
        cache = ScanCache(max_entries=8)
        first = cache.get_or_compute("p", "f", lambda: [1, 2], generation=7)
        again = cache.get_or_compute("p", "f", lambda: [9], generation=7)
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_generation_mismatch_recomputes_and_replaces(self):
        cache = ScanCache(max_entries=8)
        cache.get_or_compute("p", "f", lambda: [1], generation=7)
        rebuilt = cache.get_or_compute("p", "f", lambda: [2], generation=8)
        assert rebuilt == [2]
        assert cache.misses == 2
        # the old generation's entry is gone, not shadowed
        assert cache.get_or_compute("p", "f", lambda: [3], generation=8) == [2]
        assert cache.get_or_compute("p", "f", lambda: [4], generation=7) == [4]

    def test_untagged_entries_keep_working(self):
        cache = ScanCache(max_entries=8)
        value = cache.get_or_compute("p", "f", lambda: ("rows",))
        assert cache.get_or_compute("p", "f", lambda: ()) is value
        # a generation-tagged caller never accepts an untagged entry
        assert cache.get_or_compute("p", "f", lambda: [5], generation=1) == [5]

    def test_generations_isolated_per_key(self):
        cache = ScanCache(max_entries=8)
        cache.get_or_compute("p", "f1", lambda: "a", generation=1)
        cache.get_or_compute("p", "f2", lambda: "b", generation=2)
        assert cache.get_or_compute("p", "f1", lambda: "x", generation=1) == "a"
        assert cache.get_or_compute("p", "f2", lambda: "y", generation=2) == "b"
