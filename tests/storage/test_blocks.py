"""Typed column blocks: encoding, lazy views, selections, merged results."""

from array import array
from types import SimpleNamespace

import pytest

from repro.model.entities import EntityType
from repro.model.events import Operation, SystemEvent
from repro.storage.blocks import (
    OP_BY_CODE,
    OP_CODE,
    OTYPE_CODE,
    BlockScanResult,
    ColumnBlock,
    Selection,
    block_attribute_getter,
)


def make_event(
    eid,
    start,
    agent=1,
    op=Operation.READ,
    otype=EntityType.FILE,
    subject=100,
    obj=200,
    amount=0,
):
    return SystemEvent(
        event_id=eid,
        agent_id=agent,
        seq=eid,
        start_time=start,
        end_time=start + 1.0,
        operation=op,
        subject_id=subject,
        object_id=obj,
        object_type=otype,
        amount=amount,
    )


def block_of(events):
    block = ColumnBlock()
    for event in events:
        block.append(event)
    return block


class TestColumnBlock:
    def test_append_round_trips_through_event_at(self):
        events = [
            make_event(1, 10.0, agent=3, op=Operation.WRITE, amount=512),
            make_event(2, 11.0, agent=4, otype=EntityType.NETWORK),
        ]
        block = block_of(events)
        assert len(block) == 2
        assert block.events() == events

    def test_dictionary_encoding(self):
        block = block_of(
            [
                make_event(1, 1.0, agent=7, op=Operation.READ),
                make_event(2, 2.0, agent=9, op=Operation.WRITE),
                make_event(3, 3.0, agent=7, op=Operation.READ),
            ]
        )
        assert block.agents == (7, 9)
        assert list(block.agent_codes) == [0, 1, 0]
        assert list(block.op_codes) == [
            OP_CODE[Operation.READ],
            OP_CODE[Operation.WRITE],
            OP_CODE[Operation.READ],
        ]
        assert block.op_universe == {
            OP_CODE[Operation.READ],
            OP_CODE[Operation.WRITE],
        }
        assert block.otype_universe == {OTYPE_CODE[EntityType.FILE]}

    def test_agent_dictionary_promotes_past_256(self):
        block = block_of(
            [make_event(i, float(i), agent=i) for i in range(1, 301)]
        )
        assert isinstance(block.agent_codes, array)
        # 'q' (8-byte signed) — 'l' is 4 bytes on some ABIs, which would
        # change the wire width of serialized blocks across platforms
        assert block.agent_codes.typecode == "q"
        assert len(block.agents) == 300
        # every row still resolves its original agent
        assert [e.agent_id for e in block.events()] == list(range(1, 301))

    def test_rows_materialize_lazily_and_cache(self):
        block = block_of([make_event(1, 1.0), make_event(2, 2.0)])
        assert not block.rows_materialized
        first = block.event_at(1)
        assert block.rows_materialized
        assert block.event_at(1) is first  # cached, not rebuilt

    def test_time_sorted_tracks_append_order(self):
        block = block_of([make_event(1, 5.0), make_event(2, 4.0)])
        assert not block.time_sorted
        assert block_of([make_event(1, 4.0), make_event(2, 4.0)]).time_sorted

    def test_window_bounds_bisect(self):
        block = block_of([make_event(i, float(i)) for i in range(10)])
        assert block.window_bounds(3.0, 7.0, len(block)) == (3, 7)
        assert block.window_bounds(None, 2.0, len(block)) == (0, 2)
        assert block.window_bounds(8.0, None, len(block)) == (8, 10)
        # the stop bound caps the search (visibility snapshots)
        assert block.window_bounds(3.0, 100.0, 5) == (3, 5)

    def test_agent_code_set_vacuity(self):
        block = block_of([make_event(1, 1.0, agent=1), make_event(2, 2.0, agent=2)])
        assert block.agent_code_set(frozenset({1, 2, 3})) is None  # superset
        assert block.agent_code_set(frozenset({2})) == {1}
        assert block.agent_code_set(frozenset({99})) == frozenset()

    def test_order_positions(self):
        block = block_of(
            [make_event(3, 5.0), make_event(1, 2.0), make_event(2, 2.0)]
        )
        assert block.order_positions(range(3)) == [1, 2, 0]

    def test_from_columns_matches_appended_block(self):
        events = [
            make_event(1, 1.0, agent=5, op=Operation.EXECUTE, amount=7),
            make_event(2, 2.0, agent=6, otype=EntityType.PROCESS),
        ]
        appended = block_of(events)
        decoded = ColumnBlock.from_columns(
            {
                "eid": [e.event_id for e in events],
                "a": [e.agent_id for e in events],
                "s": [e.seq for e in events],
                "t0": [e.start_time for e in events],
                "t1": [e.end_time for e in events],
                "op": [e.operation.value for e in events],
                "subj": [e.subject_id for e in events],
                "obj": [e.object_id for e in events],
                "ot": [e.object_type.value for e in events],
                "amt": [e.amount for e in events],
                "fc": [e.failure_code for e in events],
            }
        )
        assert decoded.events() == appended.events()
        assert decoded.op_universe == appended.op_universe
        assert decoded.otype_universe == appended.otype_universe
        assert decoded.agents == appended.agents
        assert decoded.time_sorted
        assert decoded.generation != appended.generation

    def test_block_attribute_getters_match_row_attributes(self):
        block = block_of([make_event(4, 9.0, agent=2, amount=33)])
        event = block.event_at(0)
        for name in ("id", "agentid", "operation", "start_time", "amount", "seq"):
            getter = block_attribute_getter(name)
            assert getter(block, 0) == event.attribute(name)
        assert block_attribute_getter("no_such_attr") is None


class TestSelection:
    def test_events_and_len(self):
        block = block_of([make_event(i, float(i)) for i in range(4)])
        selection = Selection(block, [1, 3])
        assert len(selection) == 2
        assert [e.event_id for e in selection.events()] == [1, 3]

    def test_committed_only_filters_by_watermark(self):
        block = block_of([make_event(i, float(i)) for i in (1, 2, 3)])
        selection = Selection(block, [0, 1, 2])
        cut = selection.committed_only(2)
        assert [block.event_ids[p] for p in cut.positions] == [1, 2]

    def test_committed_only_fast_path_returns_self(self):
        block = block_of([make_event(1, 1.0)])
        selection = Selection(block, [0])
        assert selection.committed_only(10) is selection


class TestBlockScanResult:
    def two_parts(self):
        a = block_of([make_event(1, 1.0), make_event(4, 4.0)])
        b = block_of([make_event(2, 2.0), make_event(3, 3.0)])
        return Selection(a, [0, 1]), Selection(b, [0, 1])

    def test_handles_merge_sorted_across_parts(self):
        scan = BlockScanResult(self.two_parts())
        assert [e.event_id for e in scan.events()] == [1, 2, 3, 4]
        assert len(scan) == 4

    def test_dedup_keeps_first_copy(self):
        hot = block_of([make_event(5, 5.0)])
        cold = block_of([make_event(5, 5.0), make_event(6, 6.0)])
        scan = BlockScanResult(
            [Selection(hot, [0]), Selection(cold, [0, 1])], dedup=True
        )
        handles = scan.handles()
        assert [h[1] for h in handles] == [5, 6]
        assert handles[0][2] is hot  # hot listed first wins the duplicate

    def test_time_bounds_from_columns(self):
        scan = BlockScanResult(self.two_parts())
        assert scan.time_bounds() == (1.0, 4.0)
        assert not any(part.block.rows_materialized for part in scan.parts)
        empty = BlockScanResult([Selection(block_of([make_event(1, 1.0)]), [])])
        assert empty.time_bounds() is None

    def test_ref_values_event_attribute(self):
        scan = BlockScanResult(self.two_parts())
        ref = SimpleNamespace(role="event", attr="id")
        assert scan.ref_values(ref, lambda _id: None) == {1, 2, 3, 4}
        assert not any(part.block.rows_materialized for part in scan.parts)

    def test_ref_values_entity_attribute_resolves_once_per_id(self):
        scan = BlockScanResult(self.two_parts())
        calls = []

        def entity_of(entity_id):
            calls.append(entity_id)
            return SimpleNamespace(name=f"Proc-{entity_id}")

        ref = SimpleNamespace(role="subject", attr="name")
        assert scan.ref_values(ref, entity_of) == {"proc-100"}  # normalized
        assert calls == [100]  # all four rows share one subject

    def test_ref_values_unknown_event_attr_raises_like_rows(self):
        scan = BlockScanResult(self.two_parts())
        ref = SimpleNamespace(role="event", attr="bogus")
        with pytest.raises(AttributeError):
            scan.ref_values(ref, lambda _id: None)
        empty = BlockScanResult([Selection(block_of([make_event(1, 1.0)]), [])])
        assert empty.ref_values(ref, lambda _id: None) == frozenset()

    def test_field_getter_event_and_entity(self):
        scan = BlockScanResult(self.two_parts())
        handle = scan.handles()[0]
        event_getter = scan.field_getter(
            SimpleNamespace(role="event", attr="id"), lambda _id: None
        )
        assert event_getter(handle) == 1
        entity_getter = scan.field_getter(
            SimpleNamespace(role="object", attr="name"),
            lambda _id: SimpleNamespace(name=f"f{_id}"),
        )
        assert entity_getter(handle) == "f200"
        assert (
            scan.field_getter(
                SimpleNamespace(role="event", attr="bogus"), lambda _id: None
            )
            is None
        )

    def test_event_of(self):
        scan = BlockScanResult(self.two_parts())
        handle = scan.handles()[-1]
        assert BlockScanResult.event_of(handle).event_id == 4

    def test_events_cached(self):
        scan = BlockScanResult(self.two_parts())
        assert scan.events() is scan.events()
