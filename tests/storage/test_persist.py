"""Snapshot persistence round-trip tests."""

import json

import pytest

from repro.engine.executor import MultieventExecutor
from repro.model.entities import EntityRegistry
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.persist import (
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from repro.workload.corpus import by_id
from repro.workload.loader import build_enterprise
from tests.conftest import compile_text


@pytest.fixture(scope="module")
def small_enterprise():
    return build_enterprise(stores=("flat",), events_per_host_day=30)


class TestRoundTrip:
    def test_events_and_entities_preserved(self, small_enterprise, tmp_path):
        source = small_enterprise.store("flat")
        path = tmp_path / "snap.jsonl"
        written = save_snapshot(path, small_enterprise.registry, iter(source))
        assert written == len(source)

        registry = EntityRegistry()
        restored = FlatStore(registry=registry)
        loaded = load_snapshot(path, registry, [restored])
        assert loaded == written
        assert len(restored) == len(source)
        assert len(registry) == len(small_enterprise.registry)

    def test_query_results_identical_after_restore(
        self, small_enterprise, tmp_path
    ):
        source = small_enterprise.store("flat")
        path = tmp_path / "snap.jsonl"
        save_snapshot(path, small_enterprise.registry, iter(source))

        registry = EntityRegistry()
        restored = EventStore(registry=registry)  # different backend!
        load_snapshot(path, registry, [restored])

        query = by_id("c5-7").text
        ctx = compile_text(query)
        before = set(MultieventExecutor(source).run(ctx).rows)
        after = set(MultieventExecutor(restored).run(ctx).rows)
        assert before == after and before

    def test_restore_into_multiple_backends(self, small_enterprise, tmp_path):
        path = tmp_path / "snap.jsonl"
        source = small_enterprise.store("flat")
        save_snapshot(path, small_enterprise.registry, iter(source))
        registry = EntityRegistry()
        flat = FlatStore(registry=registry)
        partitioned = EventStore(registry=registry)
        load_snapshot(path, registry, [flat, partitioned])
        assert len(flat) == len(partitioned) == len(source)

    def test_extension_entities_survive(self, tmp_path):
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        proc = ingestor.process(1, 10, "evil.exe")
        key = ingestor.registry_value(1, "HKCU/Run", "evil")
        fifo = ingestor.pipe(1, "/run/p")
        ingestor.emit(1, 100.0, "write", proc, key)
        ingestor.emit(1, 101.0, "write", proc, fifo, amount=9)

        path = tmp_path / "snap.jsonl"
        save_snapshot(path, ingestor.registry, iter(store))
        registry = EntityRegistry()
        restored = FlatStore(registry=registry)
        load_snapshot(path, registry, [restored])
        events = list(restored)
        assert len(events) == 2
        assert registry.get(events[0].object_id).key == "HKCU/Run"
        assert registry.get(events[1].object_id).name == "/run/p"


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SnapshotError, match="empty"):
            load_snapshot(path, EntityRegistry(), [])

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"version": 99, "entities": 0}) + "\n")
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(path, EntityRegistry(), [])

    def test_truncated_entities(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text(json.dumps({"version": 1, "entities": 3}) + "\n")
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path, EntityRegistry(), [])

    def test_non_fresh_registry_detected(self, tmp_path):
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        p = ingestor.process(1, 10, "a")
        f = ingestor.file(1, "/x")
        ingestor.emit(1, 1.0, "read", p, f)
        path = tmp_path / "snap.jsonl"
        save_snapshot(path, ingestor.registry, iter(store))

        dirty = EntityRegistry()
        dirty.file(9, "/occupies-id-1")  # shifts id allocation
        with pytest.raises(SnapshotError, match="mismatch"):
            load_snapshot(path, dirty, [FlatStore(registry=dirty)])


class TestAtomicity:
    """A crash mid-snapshot never truncates a previously good snapshot."""

    def _populate(self, events=2):
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        p = ingestor.process(1, 10, "a")
        f = ingestor.file(1, "/x")
        for i in range(events):
            ingestor.emit(1, 1.0 + i, "read", p, f)
        return ingestor, store

    def test_failed_write_leaves_old_snapshot_intact(self, tmp_path):
        ingestor, store = self._populate()
        path = tmp_path / "snap.jsonl"
        save_snapshot(path, ingestor.registry, iter(store))
        good = path.read_text()

        def exploding_events():
            yield next(iter(store))
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            save_snapshot(path, ingestor.registry, exploding_events())
        assert path.read_text() == good  # old snapshot untouched
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up

        registry = EntityRegistry()
        restored = FlatStore(registry=registry)
        assert load_snapshot(path, registry, [restored]) == len(store)

    def test_success_leaves_no_temp_file(self, tmp_path):
        ingestor, store = self._populate()
        path = tmp_path / "snap.jsonl"
        save_snapshot(path, ingestor.registry, iter(store))
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_events_stream_lazily(self, tmp_path):
        """The writer consumes the event iterable without materializing it."""
        ingestor, store = self._populate(events=5)
        path = tmp_path / "snap.jsonl"
        consumed = []

        def tracking():
            for event in store:
                consumed.append(event.event_id)
                yield event

        written = save_snapshot(path, ingestor.registry, tracking())
        assert written == 5 and len(consumed) == 5
        registry = EntityRegistry()
        restored = FlatStore(registry=registry)
        assert load_snapshot(path, registry, [restored]) == 5
