"""Unit tests for repro.storage.filters."""

import pytest

from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import Operation, SystemEvent
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    conjoin,
    like_to_regex,
    top_level_equalities,
)


class TestLikeMatching:
    @pytest.mark.parametrize(
        "pattern,value,matches",
        [
            ("%telnet%", "/usr/bin/telnetd", True),
            ("%telnet%", "ssh", False),
            ("/var/www%", "/var/www/html/a", True),
            ("/var/www%", "/var/log/www", False),
            ("%.dmp", "backup1.dmp", True),
            ("%.dmp", "backup1.dmp.gz", False),
            ("a%b%c", "aXXbYYc", True),
            ("%CMD.EXE", "c:/windows/cmd.exe", True),  # case-insensitive
        ],
    )
    def test_patterns(self, pattern, value, matches):
        assert bool(like_to_regex(pattern).match(value)) is matches

    def test_special_chars_escaped(self):
        assert like_to_regex("a.b%").match("a.bc")
        assert not like_to_regex("a.b%").match("axbc")


class TestAttrPredicate:
    def test_equality_case_insensitive_strings(self):
        pred = AttrPredicate("exe_name", "=", "CMD.EXE")
        assert pred.matches("cmd.exe")

    def test_like_detection(self):
        assert AttrPredicate("name", "=", "%x%").is_like
        assert not AttrPredicate("name", "=", "x").is_like
        assert not AttrPredicate("port", "=", 80).is_like

    def test_like_negated(self):
        pred = AttrPredicate("name", "!=", "%.log")
        assert pred.matches("a.txt")
        assert not pred.matches("a.log")

    def test_numeric_coercion_string_literal(self):
        pred = AttrPredicate("dst_port", "=", "4444")
        assert pred.matches(4444)
        assert not pred.matches(80)

    def test_numeric_comparisons(self):
        assert AttrPredicate("amount", ">", 100).matches(200)
        assert not AttrPredicate("amount", ">", 100).matches(100)
        assert AttrPredicate("amount", ">=", 100).matches(100)
        assert AttrPredicate("amount", "<", 100).matches(99)
        assert AttrPredicate("amount", "<=", 100).matches(100)
        assert AttrPredicate("amount", "!=", 100).matches(99)

    def test_in_and_not_in(self):
        pred = AttrPredicate("name", "in", (".viminfo", ".bash_history"))
        assert pred.matches(".viminfo")
        assert not pred.matches(".profile")
        pred = AttrPredicate("name", "not in", (".viminfo",))
        assert pred.matches(".profile")

    def test_incomparable_types_false(self):
        assert not AttrPredicate("amount", ">", "abc").matches(5)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            AttrPredicate("x", "~", 1)


class TestPredicateTrees:
    def lookup(self, mapping):
        return lambda attr: mapping[attr]

    def test_and_or_not(self):
        a = PredicateLeaf(AttrPredicate("x", "=", 1))
        b = PredicateLeaf(AttrPredicate("y", "=", 2))
        tree = PredicateAnd((a, PredicateNot(b)))
        assert tree.evaluate(self.lookup({"x": 1, "y": 3}))
        assert not tree.evaluate(self.lookup({"x": 1, "y": 2}))
        tree = PredicateOr((a, b))
        assert tree.evaluate(self.lookup({"x": 0, "y": 2}))

    def test_missing_attribute_is_false(self):
        leaf = PredicateLeaf(AttrPredicate("nope", "=", 1))

        def lookup(attr):
            raise AttributeError(attr)

        assert not leaf.evaluate(lookup)

    def test_constraint_count(self):
        a = PredicateLeaf(AttrPredicate("x", "=", 1))
        b = PredicateLeaf(AttrPredicate("y", "=", 2))
        assert PredicateAnd((a, PredicateOr((a, b)))).constraint_count() == 3

    def test_conjoin(self):
        a = PredicateLeaf(AttrPredicate("x", "=", 1))
        assert conjoin([]) is None
        assert conjoin([None, a]) is a
        combined = conjoin([a, a])
        assert isinstance(combined, PredicateAnd)

    def test_top_level_equalities(self):
        eq = AttrPredicate("x", "=", 1)
        inp = AttrPredicate("y", "in", (1, 2))
        gt = AttrPredicate("z", ">", 1)
        tree = PredicateAnd(
            (
                PredicateLeaf(eq),
                PredicateLeaf(inp),
                PredicateLeaf(gt),
                PredicateOr((PredicateLeaf(eq), PredicateLeaf(eq))),
            )
        )
        found = top_level_equalities(tree)
        assert eq in found and inp in found
        assert gt not in found
        # nothing under OR may be used
        assert len(found) == 2


class TestEventFilter:
    def setup_method(self):
        self.reg = EntityRegistry()
        self.proc = self.reg.process(1, 5, "bash")
        self.file = self.reg.file(1, "/etc/passwd")
        self.event = SystemEvent(
            event_id=1,
            agent_id=1,
            seq=1,
            start_time=100.0,
            end_time=100.0,
            operation=Operation.READ,
            subject_id=self.proc.id,
            object_id=self.file.id,
            object_type=EntityType.FILE,
        )

    def test_empty_filter_matches(self):
        assert EventFilter().matches(self.event, self.proc, self.file)

    def test_agent_filter(self):
        assert not EventFilter(agent_ids=frozenset({2})).matches(
            self.event, self.proc, self.file
        )

    def test_window_filter(self):
        flt = EventFilter(window=TimeWindow(start=200.0))
        assert not flt.matches(self.event, self.proc, self.file)

    def test_operation_filter(self):
        flt = EventFilter(operations=frozenset({Operation.WRITE}))
        assert not flt.matches(self.event, self.proc, self.file)

    def test_object_type_filter(self):
        flt = EventFilter(object_type=EntityType.NETWORK)
        assert not flt.matches(self.event, self.proc, self.file)

    def test_id_set_filters(self):
        flt = EventFilter(subject_ids=frozenset({self.proc.id}))
        assert flt.matches(self.event, self.proc, self.file)
        flt = EventFilter(object_ids=frozenset({999}))
        assert not flt.matches(self.event, self.proc, self.file)

    def test_predicate_sides(self):
        flt = EventFilter(
            subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "bash")),
            object_pred=PredicateLeaf(AttrPredicate("name", "=", "%passwd")),
        )
        assert flt.matches(self.event, self.proc, self.file)

    def test_constraint_count(self):
        flt = EventFilter(
            agent_ids=frozenset({1}),
            window=TimeWindow(start=0.0, end=1.0),
            operations=frozenset({Operation.READ}),
            object_type=EntityType.FILE,
            subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "bash")),
        )
        # agent + window + ops + object type + 1 predicate leaf
        assert flt.constraint_count() == 5

    def test_narrowed_intersects(self):
        flt = EventFilter(subject_ids=frozenset({1, 2, 3}))
        narrowed = flt.narrowed(subject_ids=frozenset({2, 3, 4}))
        assert narrowed.subject_ids == frozenset({2, 3})

    def test_narrowed_window(self):
        flt = EventFilter(window=TimeWindow(start=0.0, end=100.0))
        narrowed = flt.narrowed(window=TimeWindow(start=50.0))
        assert (narrowed.window.start, narrowed.window.end) == (50.0, 100.0)
