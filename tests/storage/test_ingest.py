"""Unit tests for the ingestion pipeline."""

import pytest

from repro.model.entities import EntityRegistry
from repro.model.time import ClockSynchronizer
from repro.storage.flat import FlatStore
from repro.storage.ingest import IngestError, Ingestor


def make_ingestor(clock=None):
    ingestor = Ingestor(clock=clock)
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    return ingestor, store


class TestIngestor:
    def test_sequence_numbers_monotone_per_agent(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        q = ingestor.process(2, 5, "zsh")
        g = ingestor.file(2, "/y")
        e1 = ingestor.emit(1, 10.0, "read", p, f)
        e2 = ingestor.emit(2, 10.0, "read", q, g)
        e3 = ingestor.emit(1, 11.0, "write", p, f)
        assert (e1.seq, e3.seq) == (1, 2)
        assert e2.seq == 1

    def test_event_ids_globally_unique(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        events = [ingestor.emit(1, float(i), "read", p, f) for i in range(5)]
        assert len({e.event_id for e in events}) == 5

    def test_clock_correction_applied(self):
        clock = ClockSynchronizer()
        clock.observe(agent_id=1, agent_clock=100.0, server_clock=103.0)
        ingestor, _ = make_ingestor(clock)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        event = ingestor.emit(1, 200.0, "read", p, f)
        assert event.start_time == 203.0

    def test_duration_sets_end_time(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        event = ingestor.emit(1, 100.0, "read", p, f, duration=2.5)
        assert event.end_time == 102.5

    def test_operation_string_parsed(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        child = ingestor.process(1, 6, "vim")
        event = ingestor.emit(1, 100.0, "fork", p, child)
        assert event.operation.value == "start"

    def test_model_violation_raises_ingest_error(self):
        ingestor, store = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        with pytest.raises(IngestError):
            ingestor.emit(1, 100.0, "connect", p, f)  # connect on a file
        assert len(store) == 0  # nothing was stored

    def test_fan_out_to_multiple_stores(self):
        ingestor = Ingestor()
        s1 = FlatStore(registry=ingestor.registry)
        s2 = FlatStore(registry=ingestor.registry)
        ingestor.attach(s1)
        ingestor.attach(s2)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        ingestor.emit(1, 100.0, "read", p, f)
        assert len(s1) == 1 and len(s2) == 1

    def test_attach_foreign_registry_rejected(self):
        ingestor = Ingestor()
        foreign = FlatStore(registry=EntityRegistry())
        with pytest.raises(ValueError):
            ingestor.attach(foreign)

    def test_emit_batch(self):
        ingestor, store = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        events = ingestor.emit_batch(
            1, [(10.0, "read", p, f, 100), (11.0, "write", p, f, 200)]
        )
        assert len(events) == 2
        assert ingestor.events_ingested == 2

    def test_entity_helpers_deduplicate(self):
        ingestor, _ = make_ingestor()
        a = ingestor.file(1, "/etc/passwd")
        b = ingestor.file(1, "/etc/passwd")
        assert a is b
