"""Unit tests for the ingestion pipeline."""

import pytest

from repro.model.entities import EntityRegistry
from repro.model.time import ClockSynchronizer
from repro.storage.flat import FlatStore
from repro.storage.ingest import IngestError, Ingestor


def make_ingestor(clock=None):
    ingestor = Ingestor(clock=clock)
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    return ingestor, store


class TestIngestor:
    def test_sequence_numbers_monotone_per_agent(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        q = ingestor.process(2, 5, "zsh")
        g = ingestor.file(2, "/y")
        e1 = ingestor.emit(1, 10.0, "read", p, f)
        e2 = ingestor.emit(2, 10.0, "read", q, g)
        e3 = ingestor.emit(1, 11.0, "write", p, f)
        assert (e1.seq, e3.seq) == (1, 2)
        assert e2.seq == 1

    def test_event_ids_globally_unique(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        events = [ingestor.emit(1, float(i), "read", p, f) for i in range(5)]
        assert len({e.event_id for e in events}) == 5

    def test_clock_correction_applied(self):
        clock = ClockSynchronizer()
        clock.observe(agent_id=1, agent_clock=100.0, server_clock=103.0)
        ingestor, _ = make_ingestor(clock)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        event = ingestor.emit(1, 200.0, "read", p, f)
        assert event.start_time == 203.0

    def test_duration_sets_end_time(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        event = ingestor.emit(1, 100.0, "read", p, f, duration=2.5)
        assert event.end_time == 102.5

    def test_operation_string_parsed(self):
        ingestor, _ = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        child = ingestor.process(1, 6, "vim")
        event = ingestor.emit(1, 100.0, "fork", p, child)
        assert event.operation.value == "start"

    def test_model_violation_raises_ingest_error(self):
        ingestor, store = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        with pytest.raises(IngestError):
            ingestor.emit(1, 100.0, "connect", p, f)  # connect on a file
        assert len(store) == 0  # nothing was stored

    def test_fan_out_to_multiple_stores(self):
        ingestor = Ingestor()
        s1 = FlatStore(registry=ingestor.registry)
        s2 = FlatStore(registry=ingestor.registry)
        ingestor.attach(s1)
        ingestor.attach(s2)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        ingestor.emit(1, 100.0, "read", p, f)
        assert len(s1) == 1 and len(s2) == 1

    def test_attach_foreign_registry_rejected(self):
        ingestor = Ingestor()
        foreign = FlatStore(registry=EntityRegistry())
        with pytest.raises(ValueError):
            ingestor.attach(foreign)

    def test_emit_batch(self):
        ingestor, store = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        events = ingestor.emit_batch(
            1, [(10.0, "read", p, f, 100), (11.0, "write", p, f, 200)]
        )
        assert len(events) == 2
        assert ingestor.events_ingested == 2

    def test_entity_helpers_deduplicate(self):
        ingestor, _ = make_ingestor()
        a = ingestor.file(1, "/etc/passwd")
        b = ingestor.file(1, "/etc/passwd")
        assert a is b


class RecordingStore:
    """Minimal store double that records every call the fan-out makes."""

    def __init__(self, registry, batched=True):
        self.registry = registry
        self.registered = []
        self.added = []
        self.batch_calls = 0
        if batched:
            self.add_batch = self._add_batch

    def register_entity(self, entity):
        self.registered.append(entity.id)

    def add_event(self, event):
        self.added.append(event.event_id)

    def _add_batch(self, events):
        self.batch_calls += 1
        self.added.extend(e.event_id for e in events)


class TestFanOutHoisting:
    """Validation and entity dedup run once, not once per attached store."""

    def test_entity_registered_once_per_store_despite_reobservation(self):
        ingestor = Ingestor()
        stores = [RecordingStore(ingestor.registry) for _ in range(3)]
        for store in stores:
            ingestor.attach(store)
        first = ingestor.process(1, 5, "bash")
        again = ingestor.process(1, 5, "bash")  # agents re-observe constantly
        assert first is again
        for store in stores:
            assert store.registered == [first.id]

    def test_validation_counted_once_regardless_of_store_count(self):
        ingestor = Ingestor()
        for _ in range(4):
            ingestor.attach(RecordingStore(ingestor.registry))
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        ingestor.emit(1, 10.0, "read", p, f)
        ingestor.commit(
            [ingestor.build_event(1, 11.0 + i, "read", p, f) for i in range(5)]
        )
        assert ingestor.validations == 6

    def test_late_attached_store_receives_entity_replay(self):
        ingestor = Ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        late = RecordingStore(ingestor.registry)
        ingestor.attach(late)
        assert set(late.registered) == {p.id, f.id}

    def test_emit_refused_while_batch_staged(self):
        # A single-event emit racing ahead of staged (lower-id) events
        # would break the commit watermark's id-order assumption.
        ingestor, store = make_ingestor()
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        staged = [ingestor.build_event(1, 10.0, "read", p, f)]
        with pytest.raises(IngestError):
            ingestor.emit(1, 11.0, "read", p, f)
        ingestor.commit(staged)
        event = ingestor.emit(1, 12.0, "read", p, f)  # fine after commit
        assert event.event_id > staged[0].event_id
        assert len(store) == 2

    def test_commit_falls_back_to_per_event_appends(self):
        ingestor = Ingestor()
        plain = RecordingStore(ingestor.registry, batched=False)
        batched = RecordingStore(ingestor.registry)
        ingestor.attach(plain)
        ingestor.attach(batched)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        events = [
            ingestor.build_event(1, 10.0 + i, "read", p, f) for i in range(3)
        ]
        ingestor.commit(events)
        assert plain.added == batched.added == [e.event_id for e in events]
        assert batched.batch_calls == 1
        assert ingestor.events_ingested == 3
