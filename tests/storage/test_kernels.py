"""Compiled scan kernels: specialization, equivalence, memoization."""

import pytest

from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import Operation, SystemEvent
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
)
from repro.storage.kernels import (
    KernelCache,
    compile_filter,
    compile_predicate,
    compile_value_test,
    constant_false,
    kernel_cache_stats,
    kernel_for,
    kernels_enabled,
    use_kernels,
)


@pytest.fixture(scope="module")
def world():
    registry = EntityRegistry()
    proc = registry.process(1, 4242, "sshd", user="root", cmd="/usr/sbin/sshd -D")
    fobj = registry.file(1, "/etc/passwd", owner="root")
    conn = registry.connection(1, "10.0.0.5", 51000, "166.213.1.129", 4444)
    event = SystemEvent(
        event_id=7,
        agent_id=1,
        seq=3,
        start_time=1000.0,
        end_time=1001.0,
        operation=Operation.READ,
        subject_id=proc.id,
        object_id=fobj.id,
        object_type=EntityType.FILE,
        amount=512,
    )
    net_event = SystemEvent(
        event_id=8,
        agent_id=2,
        seq=4,
        start_time=2000.0,
        end_time=2001.0,
        operation=Operation.CONNECT,
        subject_id=proc.id,
        object_id=conn.id,
        object_type=EntityType.NETWORK,
    )
    return registry, proc, fobj, conn, event, net_event


def leaf(attr, op, value):
    return PredicateLeaf(AttrPredicate(attr=attr, op=op, value=value))


class TestValueTests:
    """compile_value_test must agree with AttrPredicate.matches."""

    CASES = [
        # (op, predicate value, actual value)
        ("=", "sshd", "SSHD"),
        ("=", "sshd", "nginx"),
        ("=", "4444", 4444),
        ("=", "4444", 4444.0),
        ("=", "4.5", 4),  # int('4.5') raises: never equal
        ("=", 4444, "4444"),
        ("=", 21.5, 21.5),
        ("=", "x", 3),
        ("!=", "sshd", "sshd"),
        ("!=", 80, 81),
        ("<", "100", 99),
        ("<", 100, "099"),  # string ordering against str(100)
        ("<=", "abc", "abd"),
        (">", "nope", 5),  # uncoercible literal: TypeError -> False
        (">=", 10, 10),
        (">", "10.5", 11.0),
        ("in", ("a", "B", 3), "b"),
        ("in", ("a", "B", 3), 3),
        ("in", ("4444", 80), 4444),  # cross-type fallback
        ("not in", ("a", "b"), "C"),
        ("not in", (1, 2), 2),
        ("in", (1, 2), "zz"),
    ]

    @pytest.mark.parametrize("op,value,actual", CASES)
    def test_matches_interpreter(self, op, value, actual):
        pred = AttrPredicate(attr="x", op=op, value=value)
        assert compile_value_test(pred)(actual) == pred.matches(actual)

    def test_like_patterns(self):
        pred = AttrPredicate(attr="name", op="=", value="%telnet%")
        test = compile_value_test(pred)
        assert test("/usr/bin/telnetd")
        assert not test("/bin/sh")
        negated = AttrPredicate(attr="name", op="!=", value="%telnet%")
        assert not compile_value_test(negated)("/usr/bin/telnetd")

    def test_exotic_types_fall_back_to_interpreter(self):
        pred = AttrPredicate(attr="x", op="=", value="1")
        test = compile_value_test(pred)
        assert test(True) == pred.matches(True)  # bool is not int here
        none_pred = AttrPredicate(attr="x", op="=", value=None)
        assert compile_value_test(none_pred)(None) == none_pred.matches(None)
        ordered = AttrPredicate(attr="x", op="<", value="5")
        assert ordered.matches(None) == compile_value_test(ordered)(None)

    def test_bool_predicate_value_uses_interpreter(self):
        pred = AttrPredicate(attr="x", op="=", value=True)
        assert compile_value_test(pred).__func__ is AttrPredicate.matches
        ordered = AttrPredicate(attr="x", op=">", value=True)
        assert compile_value_test(ordered).__func__ is AttrPredicate.matches


class TestPredicateTrees:
    def test_and_or_not(self, world):
        _, proc, *_ = world
        node = PredicateAnd(
            (
                leaf("exe_name", "=", "%ssh%"),
                PredicateOr(
                    (leaf("user", "=", "root"), leaf("pid", ">", 100000))
                ),
            )
        )
        compiled = compile_predicate(node, "entity")
        assert compiled(proc) == node.evaluate(proc.attribute)
        negated = PredicateNot(node)
        assert compile_predicate(negated, "entity")(proc) == negated.evaluate(
            proc.attribute
        )

    def test_wide_and_or(self, world):
        _, proc, *_ = world
        wide_and = PredicateAnd(
            tuple(leaf("pid", ">", i) for i in (0, 1, 2))
        )
        wide_or = PredicateOr(
            tuple(leaf("pid", "=", i) for i in (1, 2, 4242))
        )
        assert compile_predicate(wide_and, "entity")(proc)
        assert compile_predicate(wide_or, "entity")(proc)

    def test_unknown_attribute_is_false(self, world):
        _, proc, *_ = world
        node = leaf("no_such_attr", "=", 1)
        assert compile_predicate(node, "entity")(proc) is False
        assert node.evaluate(proc.attribute) is False

    def test_attribute_aliases_resolve(self, world):
        _, _, _, conn, *_ = world
        node = leaf("dstport", "=", 4444)  # alias of dst_port
        assert compile_predicate(node, "entity")(conn)
        assert node.evaluate(conn.attribute)

    def test_other_entity_types_attribute_is_false(self, world):
        _, proc, *_ = world
        node = leaf("dst_port", "=", 4444)  # valid attr, wrong entity type
        assert compile_predicate(node, "entity")(proc) is False
        assert node.evaluate(proc.attribute) is False

    def test_event_trees_bind_getters(self, world):
        _, _, _, _, event, _ = world
        node = PredicateAnd(
            (leaf("optype", "=", "read"), leaf("amount", ">=", 512))
        )
        assert compile_predicate(node, "event")(event)
        assert node.evaluate(event.attribute)
        unknown = leaf("no_such_event_attr", "=", 1)
        assert compile_predicate(unknown, "event")(event) is False
        assert unknown.evaluate(event.attribute) is False


class TestCompileFilter:
    def matches_both_ways(self, flt, event, registry):
        kernel = compile_filter(flt)
        subject = registry.get(event.subject_id)
        obj = registry.get(event.object_id)
        interpreted = flt.matches(event, subject, obj)
        assert kernel.test(event, registry.get) == interpreted
        return interpreted

    def test_unconstrained_filter_matches_everything(self, world):
        registry, _, _, _, event, net_event = world
        flt = EventFilter()
        assert self.matches_both_ways(flt, event, registry)
        assert self.matches_both_ways(flt, net_event, registry)

    def test_every_structural_constraint(self, world):
        registry, proc, fobj, conn, event, net_event = world
        cases = [
            EventFilter(agent_ids=frozenset({1})),
            EventFilter(agent_ids=frozenset({9})),
            EventFilter(window=TimeWindow(start=999.0, end=1000.5)),
            EventFilter(window=TimeWindow(start=1000.5)),
            EventFilter(window=TimeWindow(end=1000.0)),
            EventFilter(operations=frozenset({Operation.READ})),
            EventFilter(operations=frozenset({Operation.WRITE})),
            EventFilter(object_type=EntityType.FILE),
            EventFilter(object_type=EntityType.NETWORK),
            EventFilter(subject_ids=frozenset({proc.id})),
            EventFilter(subject_ids=frozenset({proc.id + 99})),
            EventFilter(object_ids=frozenset({fobj.id})),
        ]
        for flt in cases:
            self.matches_both_ways(flt, event, registry)
            self.matches_both_ways(flt, net_event, registry)

    def test_entity_and_event_predicates(self, world):
        registry, proc, fobj, conn, event, net_event = world
        flt = EventFilter(
            subject_pred=leaf("exe_name", "=", "%ssh%"),
            object_pred=leaf("name", "=", "/etc/%"),
            event_pred=leaf("amount", ">", 100),
        )
        assert self.matches_both_ways(flt, event, registry)
        # object predicate invalid for the network entity: filter rejects
        assert not self.matches_both_ways(flt, net_event, registry)

    def test_entities_resolved_lazily(self, world):
        registry, _, _, _, event, _ = world
        flt = EventFilter(operations=frozenset({Operation.READ}))
        kernel = compile_filter(flt)

        def exploding_lookup(_entity_id):
            raise AssertionError("no predicates: lookup must not be called")

        assert kernel.test(event, exploding_lookup)

    def test_test_predicates_checks_only_trees(self, world):
        registry, _, _, _, event, _ = world
        flt = EventFilter(
            agent_ids=frozenset({999}),  # structurally false...
            event_pred=leaf("amount", ">", 100),
        )
        kernel = compile_filter(flt)
        assert not kernel.test(event, registry.get)
        assert kernel.test_predicates(event, registry.get)  # ...preds hold
        assert kernel.has_predicates

    def test_no_predicates_test_predicates_is_true(self, world):
        registry, _, _, _, event, _ = world
        kernel = compile_filter(EventFilter(agent_ids=frozenset({1})))
        assert not kernel.has_predicates
        assert kernel.test_predicates(event, registry.get)


class TestConstantFalse:
    def test_empty_window(self):
        flt = EventFilter(window=TimeWindow(start=5.0, end=5.0))
        assert constant_false(flt)
        assert compile_filter(flt).always_false

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"agent_ids": frozenset()},
            {"operations": frozenset()},
            {"subject_ids": frozenset()},
            {"object_ids": frozenset()},
        ],
    )
    def test_empty_sets(self, kwargs):
        flt = EventFilter(**kwargs)
        assert constant_false(flt)
        kernel = compile_filter(flt)
        assert kernel.always_false
        assert not kernel.test(None, None)  # never inspects its arguments

    def test_satisfiable_filter_is_not_constant_false(self):
        assert not constant_false(EventFilter(agent_ids=frozenset({1})))
        assert not compile_filter(EventFilter()).always_false


class TestKernelCache:
    def test_fingerprint_sharing(self):
        cache = KernelCache(max_entries=8)
        a = EventFilter(agent_ids=frozenset({1, 2}))
        b = EventFilter(agent_ids=frozenset({2, 1}))
        assert cache.kernel_for(a) is cache.kernel_for(b)
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_lru_bound(self):
        cache = KernelCache(max_entries=2)
        for agent in range(4):
            cache.kernel_for(EventFilter(agent_ids=frozenset({agent})))
        assert len(cache) == 2
        assert cache.stats()["misses"] == 4

    def test_giant_id_sets_compile_uncached(self):
        from repro.service.cache import CACHEABLE_ID_SET_LIMIT

        cache = KernelCache(max_entries=8)
        ids = frozenset(range(CACHEABLE_ID_SET_LIMIT + 1))
        flt = EventFilter(subject_ids=ids)
        first = cache.kernel_for(flt)
        second = cache.kernel_for(flt)
        assert first is not second
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)

    def test_clear(self):
        cache = KernelCache(max_entries=4)
        cache.kernel_for(EventFilter(agent_ids=frozenset({1})))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_shared_cache_helpers(self):
        before = kernel_cache_stats()
        kernel_for(EventFilter(agent_ids=frozenset({123456})))
        after = kernel_cache_stats()
        assert after["hits"] + after["misses"] >= before["hits"] + before["misses"]


class TestToggle:
    def test_use_kernels_restores(self):
        assert kernels_enabled()
        with use_kernels(False):
            assert not kernels_enabled()
            with use_kernels(True):
                assert kernels_enabled()
            assert not kernels_enabled()
        assert kernels_enabled()

    def test_toggle_switches_scan_paths(self, world):
        registry, proc, fobj, _, event, _ = world
        from repro.storage.table import EventTable

        table = EventTable(registry.get)
        table.append(event)
        flt = EventFilter(subject_pred=leaf("exe_name", "=", "%ssh%"))
        with use_kernels(False):
            interpreted = table.scan(flt)
        with use_kernels(True):
            compiled = table.scan(flt)
        assert interpreted == compiled == [event]


# ---------------------------------------------------------------------------
# batch (columnar) selection
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.storage.blocks import ColumnBlock  # noqa: E402
from repro.storage.kernels import columnar_enabled, use_columnar  # noqa: E402


def _block_of(events):
    block = ColumnBlock()
    for event in events:
        block.append(event)
    return block


class TestSelect:
    """kernel.select(block, candidates) == [i for i if kernel.test(row_i)]."""

    def _events(self, world):
        registry, proc, fobj, conn, event, net_event = world
        return [event, net_event]

    def assert_equivalent(self, flt, events, lookup):
        kernel = compile_filter(flt)
        block = _block_of(events)
        expected = [
            i for i, ev in enumerate(events) if kernel.test(ev, lookup)
        ]
        assert list(kernel.select(block, range(len(events)), lookup)) == expected

    def test_unconstrained_select_passes_candidates_through(self, world):
        registry = world[0]
        kernel = compile_filter(EventFilter())
        block = _block_of(self._events(world))
        candidates = range(2)
        assert kernel.select(block, candidates, registry.get) is candidates

    def test_constant_false_selects_nothing(self, world):
        registry = world[0]
        flt = EventFilter(subject_ids=frozenset())
        kernel = compile_filter(flt)
        block = _block_of(self._events(world))
        assert kernel.select(block, range(2), registry.get) == []

    def test_window_bisects_sorted_blocks(self, world):
        registry = world[0]
        flt = EventFilter(window=TimeWindow(start=1500.0, end=2500.0))
        self.assert_equivalent(flt, self._events(world), registry.get)

    def test_structural_and_predicate_passes(self, world):
        registry, proc, fobj, conn, event, net_event = world
        events = [event, net_event]
        cases = [
            EventFilter(agent_ids=frozenset({2})),
            EventFilter(operations=frozenset({Operation.READ})),
            EventFilter(object_type=EntityType.NETWORK),
            EventFilter(subject_ids=frozenset({proc.id})),
            EventFilter(object_ids=frozenset({conn.id})),
            EventFilter(subject_pred=leaf("user", "=", "root")),
            EventFilter(object_pred=leaf("dst_port", "=", 4444)),
            EventFilter(event_pred=leaf("amount", ">", 100)),
        ]
        for flt in cases:
            self.assert_equivalent(flt, events, registry.get)

    def test_vacuous_passes_are_hoisted(self, world):
        registry, proc, fobj, conn, event, net_event = world
        # every row is READ/FILE: the op/otype passes must not narrow
        events = [event]
        flt = EventFilter(
            operations=frozenset({Operation.READ}),
            object_type=EntityType.FILE,
        )
        kernel = compile_filter(flt)
        block = _block_of(events)
        candidates = range(1)
        assert kernel.select(block, candidates, registry.get) is candidates

    def test_entity_memo_consistent_across_blocks(self, world):
        registry, proc, fobj, conn, event, net_event = world
        flt = EventFilter(subject_pred=leaf("exe_name", "=", "sshd"))
        kernel = compile_filter(flt)
        for _ in range(2):  # second round hits the kernel-lifetime memo
            for events in ([event], [event, net_event]):
                block = _block_of(events)
                got = kernel.select(block, range(len(events)), registry.get)
                assert list(got) == list(range(len(events)))

    def test_columnar_toggle(self):
        assert columnar_enabled()
        with use_columnar(False):
            assert not columnar_enabled()
            with use_columnar(True):
                assert columnar_enabled()
            assert not columnar_enabled()
        assert columnar_enabled()


# -- property equivalence ----------------------------------------------------

_prop_registry = EntityRegistry()
_PROP_ENTITIES = [
    _prop_registry.process(1, 100, "sshd", user="root", cmd="/usr/sbin/sshd -D"),
    _prop_registry.process(2, 200, "nginx", user="www", cmd="nginx -g daemon"),
    _prop_registry.file(1, "/etc/passwd", owner="root"),
    _prop_registry.file(2, "/var/log/auth.log", owner="syslog"),
    _prop_registry.connection(1, "10.0.0.5", 51000, "166.213.1.129", 4444),
]
_PROP_PROCESSES = _PROP_ENTITIES[:2]

_prop_attrs = st.sampled_from(
    ("exe_name", "user", "cmd", "name", "owner", "dst_port", "amount", "id")
)
_prop_scalars = st.one_of(
    st.integers(min_value=-5, max_value=5000),
    st.sampled_from(["sshd", "root", "%ssh%", "%a%", ""]),
)
_prop_preds = st.one_of(
    st.builds(
        AttrPredicate,
        attr=_prop_attrs,
        op=st.sampled_from(("=", "!=", "<", ">")),
        value=_prop_scalars,
    ),
    st.builds(
        AttrPredicate,
        attr=_prop_attrs,
        op=st.sampled_from(("in", "not in")),
        value=st.lists(_prop_scalars, max_size=3).map(tuple),
    ),
)

_prop_trees = st.recursive(
    st.builds(PredicateLeaf, _prop_preds),
    lambda children: st.one_of(
        st.builds(PredicateNot, children),
        st.builds(lambda a, b: PredicateAnd((a, b)), children, children),
        st.builds(lambda a, b: PredicateOr((a, b)), children, children),
    ),
    max_leaves=4,
)

_prop_filters = st.builds(
    EventFilter,
    agent_ids=st.none() | st.frozensets(st.integers(1, 3), max_size=2),
    window=st.just(TimeWindow())
    | st.builds(
        lambda start, length: TimeWindow(start=start, end=start + length),
        start=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
        length=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
    ),
    operations=st.none()
    | st.frozensets(st.sampled_from(list(Operation)), max_size=3),
    object_type=st.none() | st.sampled_from(list(EntityType)),
    subject_pred=st.none() | _prop_trees,
    object_pred=st.none() | _prop_trees,
    event_pred=st.none() | _prop_trees,
    subject_ids=st.none()
    | st.frozensets(st.integers(min_value=0, max_value=8), max_size=4),
    object_ids=st.none()
    | st.frozensets(st.integers(min_value=0, max_value=8), max_size=4),
)

_prop_events = st.builds(
    lambda eid, agent, start, op, subject, obj, amount: SystemEvent(
        event_id=eid,
        agent_id=agent,
        seq=eid,
        start_time=start,
        end_time=start + 1.0,
        operation=op,
        subject_id=subject.id,
        object_id=obj.id,
        object_type=obj.entity_type,
        amount=amount,
    ),
    eid=st.integers(min_value=1, max_value=100),
    agent=st.integers(min_value=1, max_value=3),
    start=st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    op=st.sampled_from(list(Operation)),
    subject=st.sampled_from(_PROP_PROCESSES),
    obj=st.sampled_from(_PROP_ENTITIES),
    amount=st.integers(min_value=0, max_value=10_000),
)


class TestSelectProperties:
    @settings(max_examples=120, deadline=None)
    @given(flt=_prop_filters, events=st.lists(_prop_events, max_size=12))
    def test_select_equals_per_event_kernel(self, flt, events):
        # sorted + unsorted blocks exercise both window pass shapes
        for ordering in (events, sorted(events, key=lambda e: e.start_time)):
            block = _block_of(ordering)
            kernel = compile_filter(flt)
            lookup = _prop_registry.get
            expected = [
                i for i, ev in enumerate(ordering) if kernel.test(ev, lookup)
            ]
            got = kernel.select(block, range(len(ordering)), lookup)
            assert list(got) == expected
