"""Unit tests for repro.storage.index."""

from repro.model.entities import EntityRegistry, EntityType
from repro.storage.filters import AttrPredicate
from repro.storage.index import (
    EntityAttributeIndex,
    HashIndex,
    SortedTimeIndex,
)


class TestHashIndex:
    def test_exact_lookup(self):
        idx = HashIndex()
        idx.add("bash", 1)
        idx.add("bash", 2)
        idx.add("zsh", 3)
        assert idx.lookup("bash") == frozenset({1, 2})
        assert idx.lookup("fish") == frozenset()

    def test_case_insensitive_keys(self):
        idx = HashIndex()
        idx.add("CMD.EXE", 1)
        assert idx.lookup("cmd.exe") == frozenset({1})

    def test_lookup_in(self):
        idx = HashIndex()
        idx.add("a", 1)
        idx.add("b", 2)
        assert idx.lookup_in(["a", "b", "c"]) == frozenset({1, 2})

    def test_lookup_like(self):
        idx = HashIndex()
        idx.add("/usr/bin/telnetd", 1)
        idx.add("/usr/bin/sshd", 2)
        assert idx.lookup_like("%telnet%") == frozenset({1})
        assert idx.lookup_like("/usr/bin/%") == frozenset({1, 2})

    def test_lookup_predicate(self):
        idx = HashIndex()
        idx.add("x", 1)
        assert idx.lookup_predicate(AttrPredicate("a", "=", "x")) == frozenset({1})
        assert idx.lookup_predicate(AttrPredicate("a", "in", ("x", "y"))) == frozenset({1})
        assert idx.lookup_predicate(AttrPredicate("a", ">", 1)) is None
        assert idx.lookup_predicate(AttrPredicate("a", "!=", "x")) is None

    def test_numeric_keys(self):
        idx = HashIndex()
        idx.add(4444, 1)
        assert idx.lookup(4444) == frozenset({1})


class TestEntityAttributeIndex:
    def setup_method(self):
        self.reg = EntityRegistry()
        self.idx = EntityAttributeIndex()
        self.p1 = self.reg.process(1, 10, "cmd.exe")
        self.p2 = self.reg.process(1, 11, "osql.exe")
        self.f1 = self.reg.file(1, "/var/www/a.html")
        self.n1 = self.reg.connection(1, "10.0.0.1", 1, "8.8.8.8", 443)
        for entity in (self.p1, self.p2, self.f1, self.n1):
            self.idx.add(entity)

    def test_default_coverage(self):
        assert self.idx.covers(EntityType.PROCESS, "exe_name")
        assert self.idx.covers(EntityType.FILE, "name")
        assert self.idx.covers(EntityType.NETWORK, "dst_ip")
        assert not self.idx.covers(EntityType.PROCESS, "user")

    def test_candidates_exact(self):
        preds = [AttrPredicate("exe_name", "=", "cmd.exe")]
        assert self.idx.candidates(EntityType.PROCESS, preds) == frozenset(
            {self.p1.id}
        )

    def test_candidates_like(self):
        preds = [AttrPredicate("exe_name", "=", "%sql%")]
        assert self.idx.candidates(EntityType.PROCESS, preds) == frozenset(
            {self.p2.id}
        )

    def test_candidates_unservable_returns_none(self):
        preds = [AttrPredicate("user", "=", "root")]
        assert self.idx.candidates(EntityType.PROCESS, preds) is None

    def test_candidates_intersection(self):
        preds = [
            AttrPredicate("exe_name", "=", "%exe%"),
            AttrPredicate("exe_name", "=", "cmd.exe"),
        ]
        assert self.idx.candidates(EntityType.PROCESS, preds) == frozenset(
            {self.p1.id}
        )

    def test_all_ids(self):
        assert self.idx.all_ids(EntityType.PROCESS) == frozenset(
            {self.p1.id, self.p2.id}
        )


class TestSortedTimeIndex:
    def test_in_order_append_and_range(self):
        idx = SortedTimeIndex()
        for pos, t in enumerate([1.0, 2.0, 3.0, 4.0]):
            idx.add(t, pos)
        assert idx.range(2.0, 4.0) == [1, 2]
        assert idx.range(None, 2.0) == [0]
        assert idx.range(3.0, None) == [2, 3]
        assert idx.range(None, None) == [0, 1, 2, 3]

    def test_out_of_order_insertion(self):
        idx = SortedTimeIndex()
        idx.add(5.0, 0)
        idx.add(1.0, 1)
        idx.add(3.0, 2)
        assert idx.range(None, None) == [1, 2, 0]
        assert idx.range(2.0, 4.0) == [2]

    def test_half_open_semantics(self):
        idx = SortedTimeIndex()
        idx.add(10.0, 0)
        assert idx.range(10.0, 11.0) == [0]
        assert idx.range(9.0, 10.0) == []

    def test_len(self):
        idx = SortedTimeIndex()
        idx.add(1.0, 0)
        assert len(idx) == 1


class TestConcurrentReads:
    def test_lookup_like_during_concurrent_add(self):
        """Regression: the concurrent query service reads indexes while an
        ingest thread registers entities; lookup_like used to crash with
        'dictionary changed size during iteration'."""
        import threading

        index = HashIndex()
        for i in range(100):
            index.add(f"/tmp/seed{i}", i)
        stop = threading.Event()
        errors = []

        def writer():
            i = 1000
            while not stop.is_set():
                index.add(f"/tmp/new{i}", i)
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    index.lookup_like("/tmp/%")
                    index.lookup_in([f"/tmp/seed{i}" for i in range(0, 100, 7)])
            except RuntimeError as exc:  # pragma: no cover - the old bug
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert index.lookup_like("/tmp/seed1").issuperset({1})
