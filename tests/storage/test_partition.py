"""Unit tests for time/space partitioning (paper Sec. 3.2)."""

import pytest

from repro.model.time import DAY, TimeWindow
from repro.storage.partition import PartitionKey, PartitionScheme


class TestScheme:
    def test_key_for(self):
        scheme = PartitionScheme(agents_per_group=10)
        key = scheme.key_for(agent_id=13, start_time=3 * DAY + 5)
        assert key == PartitionKey(day=3, agent_group=1)

    def test_group_width(self):
        scheme = PartitionScheme(agents_per_group=5)
        assert scheme.group_of(0) == 0
        assert scheme.group_of(4) == 0
        assert scheme.group_of(5) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PartitionScheme(agents_per_group=0)


class TestPruning:
    def setup_method(self):
        self.scheme = PartitionScheme(agents_per_group=10)
        self.keys = [
            PartitionKey(day=d, agent_group=g)
            for d in range(3)
            for g in range(2)
        ]

    def test_no_constraints_keeps_all(self):
        kept = self.scheme.prune(self.keys, None, TimeWindow())
        assert len(kept) == len(self.keys)

    def test_agent_pruning(self):
        kept = self.scheme.prune(self.keys, frozenset({3}), TimeWindow())
        assert {k.agent_group for k in kept} == {0}

    def test_day_pruning(self):
        window = TimeWindow(start=DAY, end=2 * DAY)
        kept = self.scheme.prune(self.keys, None, window)
        assert {k.day for k in kept} == {1}

    def test_combined_pruning(self):
        window = TimeWindow(start=0.0, end=DAY)
        kept = self.scheme.prune(self.keys, frozenset({15}), window)
        assert kept == [PartitionKey(day=0, agent_group=1)]

    def test_half_bounded_window_overlap(self):
        window = TimeWindow(start=2 * DAY - 1)  # touches day 1 and later
        kept = self.scheme.prune(self.keys, None, window)
        assert {k.day for k in kept} == {1, 2}

    def test_end_only_window(self):
        window = TimeWindow(end=DAY)  # day 0 only
        kept = self.scheme.prune(self.keys, None, window)
        assert {k.day for k in kept} == {0}

    def test_window_ending_exactly_at_midnight(self):
        window = TimeWindow(start=0.0, end=DAY)
        kept = self.scheme.prune(self.keys, None, window)
        assert {k.day for k in kept} == {0}

    def test_output_deterministically_sorted(self):
        kept = self.scheme.prune(reversed(self.keys), None, TimeWindow())
        assert kept == sorted(kept, key=lambda k: (k.day, k.agent_group))
