"""Store-level tests: pruning soundness, policy equivalence, parallelism."""

import pytest

from repro.model.entities import EntityType
from repro.model.time import DAY, TimeWindow
from repro.storage.database import EventStore
from repro.storage.filters import AttrPredicate, EventFilter, PredicateLeaf
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore
from repro.workload.topology import APT_DAY, ATTACKER_IP


FILTERS = [
    EventFilter(),
    EventFilter(agent_ids=frozenset({1})),
    EventFilter(agent_ids=frozenset({3}), window=TimeWindow(APT_DAY, APT_DAY + DAY)),
    EventFilter(
        object_type=EntityType.NETWORK,
        object_pred=PredicateLeaf(AttrPredicate("dst_ip", "=", ATTACKER_IP)),
    ),
    EventFilter(
        subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "%sbblv%")),
    ),
    EventFilter(window=TimeWindow(start=APT_DAY + DAY / 2)),
]


class TestEventStoreSoundness:
    @pytest.mark.parametrize("flt", FILTERS)
    def test_scan_equals_full_scan(self, enterprise, flt):
        store = enterprise.store("partitioned")
        assert store.scan(flt) == store.full_scan(flt)

    @pytest.mark.parametrize("flt", FILTERS)
    def test_parallel_scan_equals_serial(self, enterprise, flt):
        store = enterprise.store("partitioned")
        assert store.scan(flt, parallel=True) == store.scan(flt, parallel=False)

    def test_partitions_exist_per_day_and_group(self, enterprise):
        store = enterprise.store("partitioned")
        days = {k.day for k in store.partition_keys}
        groups = {k.agent_group for k in store.partition_keys}
        assert len(days) >= 16
        assert groups == {0, 1}  # agents 1-9 and 10-15

    def test_stats(self, enterprise):
        stats = enterprise.store("partitioned").stats()
        assert stats["events"] == len(enterprise.store("partitioned"))
        assert stats["partitions"] > 16


class TestStoreEquivalence:
    """All stores ingest the same stream -> all scans agree."""

    @pytest.mark.parametrize("flt", FILTERS)
    @pytest.mark.parametrize(
        "name", ["flat", "segmented_domain", "segmented_arrival"]
    )
    def test_same_results_as_partitioned(self, enterprise, name, flt):
        reference = enterprise.store("partitioned").scan(flt)
        assert enterprise.store(name).scan(flt) == reference

    def test_same_event_counts(self, enterprise):
        counts = {name: len(store) for name, store in enterprise.stores.items()}
        assert len(set(counts.values())) == 1


class TestSegmentedStore:
    def test_domain_policy_balances_by_host_day(self, enterprise):
        store = enterprise.store("segmented_domain")
        assert store.skew() < 2.0

    def test_arrival_policy_round_robin_is_even(self, enterprise):
        store = enterprise.store("segmented_arrival")
        sizes = store.segment_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_domain_policy_prunes_segments(self, enterprise):
        store = enterprise.store("segmented_domain")
        flt = EventFilter(
            agent_ids=frozenset({3}),
            window=TimeWindow(APT_DAY, APT_DAY + DAY),
        )
        relevant = store._relevant_segments(flt)
        assert len(relevant) < store.segment_count

    def test_arrival_policy_cannot_prune(self, enterprise):
        store = enterprise.store("segmented_arrival")
        flt = EventFilter(
            agent_ids=frozenset({3}),
            window=TimeWindow(APT_DAY, APT_DAY + DAY),
        )
        assert len(store._relevant_segments(flt)) == store.segment_count

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SegmentedStore(policy="random")

    def test_invalid_segment_count_rejected(self):
        with pytest.raises(ValueError):
            SegmentedStore(segments=0)


class TestSmallStoreBehaviors:
    def test_flat_store_roundtrip(self):
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        p = ingestor.process(1, 5, "bash")
        f = ingestor.file(1, "/x")
        ingestor.emit(1, 100.0, "read", p, f)
        assert len(store) == 1
        assert store.stats()["partitions"] == 1

    def test_event_store_iteration_ordered_by_partition(self):
        ingestor = Ingestor()
        store = EventStore(
            registry=ingestor.registry, scheme=PartitionScheme(agents_per_group=1)
        )
        ingestor.attach(store)
        p1 = ingestor.process(1, 5, "bash")
        p2 = ingestor.process(2, 6, "zsh")
        f = ingestor.file(1, "/x")
        f2 = ingestor.file(2, "/y")
        ingestor.emit(2, DAY + 1.0, "read", p2, f2)
        ingestor.emit(1, 1.0, "read", p1, f)
        events = list(store)
        assert events[0].agent_id == 1  # day 0 before day 1
