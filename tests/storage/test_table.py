"""Unit tests for repro.storage.table: access paths must equal full scans."""

import pytest

from repro.model.entities import EntityType
from repro.model.time import TimeWindow
from repro.storage.filters import AttrPredicate, EventFilter, PredicateLeaf
from repro.storage.index import EntityAttributeIndex
from repro.storage.ingest import Ingestor
from repro.storage.table import EventTable


@pytest.fixture()
def populated():
    """A table with a mix of file/process/network events."""
    ingestor = Ingestor()
    reg = ingestor.registry
    table = EventTable(reg.get)
    index = EntityAttributeIndex()

    class _Sink:
        registry = reg

        def register_entity(self, entity):
            index.add(entity)

        def add_event(self, event):
            table.append(event)

    ingestor.attach(_Sink())
    shell = ingestor.process(1, 10, "bash")
    editor = ingestor.process(1, 11, "vim")
    browser = ingestor.process(2, 12, "firefox")
    passwd = ingestor.file(1, "/etc/passwd")
    notes = ingestor.file(1, "/home/u/notes.txt")
    conn = ingestor.connection(2, "10.0.0.2", 5000, "8.8.8.8", 443)
    ingestor.emit(1, 100.0, "read", shell, passwd)
    ingestor.emit(1, 200.0, "write", editor, notes, amount=100)
    ingestor.emit(1, 300.0, "start", shell, editor)
    ingestor.emit(2, 400.0, "connect", browser, conn)
    ingestor.emit(2, 500.0, "read", browser, conn, amount=4096)
    return table, index, {"shell": shell, "editor": editor, "passwd": passwd}


class TestScanPaths:
    def test_scan_equals_full_scan_empty_filter(self, populated):
        table, index, _ = populated
        flt = EventFilter()
        assert table.scan(flt, index) == table.full_scan(flt)

    def test_time_index_path(self, populated):
        table, index, _ = populated
        flt = EventFilter(window=TimeWindow(start=150.0, end=450.0))
        events = table.scan(flt, index)
        assert [e.start_time for e in events] == [200.0, 300.0, 400.0]
        assert events == table.full_scan(flt)

    def test_entity_index_path(self, populated):
        table, index, _ = populated
        flt = EventFilter(
            subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "bash")),
        )
        events = table.scan(flt, index)
        assert len(events) == 2
        assert events == table.full_scan(flt)

    def test_object_index_path(self, populated):
        table, index, _ = populated
        flt = EventFilter(
            object_type=EntityType.FILE,
            object_pred=PredicateLeaf(AttrPredicate("name", "=", "%passwd")),
        )
        events = table.scan(flt, index)
        assert len(events) == 1
        assert events == table.full_scan(flt)

    def test_id_set_path(self, populated):
        table, index, keys = populated
        flt = EventFilter(subject_ids=frozenset({keys["shell"].id}))
        events = table.scan(flt, index)
        assert {e.subject_id for e in events} == {keys["shell"].id}
        assert events == table.full_scan(flt)

    def test_results_sorted_by_time(self, populated):
        table, index, _ = populated
        events = table.scan(EventFilter(), index)
        times = [e.start_time for e in events]
        assert times == sorted(times)

    def test_min_max_time_tracked(self, populated):
        table, _, _ = populated
        assert table.min_time == 100.0
        assert table.max_time == 500.0

    def test_scan_without_entity_index(self, populated):
        table, _, _ = populated
        flt = EventFilter(
            subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "bash")),
        )
        # no index: falls back to scanning, same results
        assert table.scan(flt, None) == table.full_scan(flt)

    def test_len_and_iter(self, populated):
        table, _, _ = populated
        assert len(table) == 5
        assert len(list(table)) == 5


class TestIdSetTimeIntersection:
    """The id-set access path must drop out-of-window positions when the
    window is bounded, instead of walking every posting position."""

    def test_bounded_window_with_id_set(self, populated):
        table, index, keys = populated
        flt = EventFilter(
            subject_ids=frozenset({keys["shell"].id}),
            window=TimeWindow(start=150.0, end=350.0),
        )
        events = table.scan(flt, index)
        assert [e.start_time for e in events] == [300.0]
        assert events == table.full_scan(flt)

    def test_candidates_pruned_by_time_window(self, populated):
        table, index, keys = populated
        flt = EventFilter(
            subject_ids=frozenset({keys["shell"].id}),
            window=TimeWindow(start=150.0, end=350.0),
        )
        positions = list(table._candidate_positions(flt, index))
        # shell has postings at t=100 and t=300; only t=300 is in-window,
        # so the walk must touch a single position.
        assert len(positions) == 1

    def test_unbounded_window_unchanged(self, populated):
        table, index, keys = populated
        flt = EventFilter(subject_ids=frozenset({keys["shell"].id}))
        events = table.scan(flt, index)
        assert [e.start_time for e in events] == [100.0, 300.0]
        assert events == table.full_scan(flt)

    def test_covering_window_skips_intersection(self, populated):
        table, index, keys = populated
        flt = EventFilter(
            subject_ids=frozenset({keys["shell"].id}),
            window=TimeWindow(start=0.0, end=1000.0),
        )
        # Window covers the whole table: _window_cuts is False and the
        # id-set path alone decides.
        assert not table._window_cuts(flt.window)
        assert table.scan(flt, index) == table.full_scan(flt)
