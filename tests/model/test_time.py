"""Unit tests for repro.model.time."""

import pytest

from repro.model.time import (
    DAY,
    HOUR,
    MINUTE,
    ClockSynchronizer,
    TimeParseError,
    TimeWindow,
    day_of,
    day_start,
    format_timestamp,
    parse_datetime,
    parse_duration,
    parse_duration_text,
)


class TestParseDatetime:
    def test_us_date(self):
        assert parse_datetime("01/01/2017") == 1483228800.0

    def test_us_datetime(self):
        assert parse_datetime("01/01/2017 01:00:00") == 1483228800.0 + HOUR

    def test_us_datetime_minutes(self):
        assert parse_datetime("01/01/2017 00:30") == 1483228800.0 + 30 * MINUTE

    def test_iso_date(self):
        assert parse_datetime("2017-01-01") == 1483228800.0

    def test_iso_datetime_t_separator(self):
        assert parse_datetime("2017-01-01T02:00:00") == 1483228800.0 + 2 * HOUR

    def test_iso_datetime_space_separator(self):
        assert parse_datetime("2017-01-01 02:00:00") == 1483228800.0 + 2 * HOUR

    def test_quoted_input_accepted(self):
        assert parse_datetime('"01/01/2017"') == 1483228800.0

    def test_iso_datetime_t_separator_minutes(self):
        # Regression: %Y-%m-%dT%H:%M was rejected while the space-separated
        # form was accepted.
        assert parse_datetime("2017-01-01T10:30") == (
            1483228800.0 + 10 * HOUR + 30 * MINUTE
        )

    def test_fractional_seconds(self):
        assert parse_datetime("2017-01-01T10:30:00.500") == (
            1483228800.0 + 10 * HOUR + 30 * MINUTE + 0.5
        )

    def test_fractional_seconds_space_separator(self):
        assert parse_datetime("2017-01-01 10:30:00.250") == (
            1483228800.0 + 10 * HOUR + 30 * MINUTE + 0.25
        )

    def test_fractional_seconds_us_format(self):
        assert parse_datetime("01/01/2017 10:30:00.500") == (
            1483228800.0 + 10 * HOUR + 30 * MINUTE + 0.5
        )

    @pytest.mark.parametrize(
        "text",
        [
            "2017-01-01",
            "2017-01-01 10:30",
            "2017-01-01T10:30",
            "2017-01-01T10:30:00",
            "2017-03-15 23:59:59",
        ],
    )
    def test_round_trip_through_format(self, text):
        """format_timestamp(parse_datetime(x)) reparses to the same instant."""
        ts = parse_datetime(text)
        assert parse_datetime(format_timestamp(ts)) == ts

    def test_equivalent_forms_agree(self):
        forms = (
            "2017-01-01T10:30",
            "2017-01-01 10:30",
            "2017-01-01T10:30:00",
            "2017-01-01 10:30:00",
            "01/01/2017 10:30",
            "01/01/2017 10:30:00",
        )
        stamps = {parse_datetime(f) for f in forms}
        assert len(stamps) == 1

    def test_utc_z_suffix(self):
        assert parse_datetime("2017-01-01T02:00:00Z") == 1483228800.0 + 2 * HOUR

    def test_utc_z_suffix_lowercase(self):
        assert parse_datetime("2017-01-01T02:00:00z") == 1483228800.0 + 2 * HOUR

    def test_utc_explicit_zero_offset(self):
        assert parse_datetime("2017-01-01T02:00:00+00:00") == (
            1483228800.0 + 2 * HOUR
        )

    def test_positive_offset_normalizes_to_utc(self):
        # 10:30 IST (+05:30) is 05:00 UTC
        assert parse_datetime("2017-01-01T10:30:00+05:30") == (
            1483228800.0 + 5 * HOUR
        )

    def test_negative_offset_normalizes_to_utc(self):
        # 02:00 PST (-08:00) is 10:00 UTC
        assert parse_datetime("2017-01-01T02:00:00-08:00") == (
            1483228800.0 + 10 * HOUR
        )

    def test_compact_offset_without_colon(self):
        assert parse_datetime("2017-01-01T10:30:00+0530") == (
            1483228800.0 + 5 * HOUR
        )

    def test_fractional_seconds_with_z(self):
        assert parse_datetime("2017-01-01T10:30:00.500Z") == (
            1483228800.0 + 10 * HOUR + 30 * MINUTE + 0.5
        )

    def test_offset_on_minute_precision_form(self):
        assert parse_datetime("2017-01-01T10:30+05:30") == (
            1483228800.0 + 5 * HOUR
        )

    def test_offset_equivalent_forms_agree(self):
        forms = (
            "2017-01-01T05:00:00Z",
            "2017-01-01T05:00:00+00:00",
            "2017-01-01T10:30:00+05:30",
            "2017-01-01 10:30:00+05:30",
            "2016-12-31T21:00:00-08:00",
            "2017-01-01T05:00:00",
        )
        stamps = {parse_datetime(f) for f in forms}
        assert stamps == {1483228800.0 + 5 * HOUR}

    def test_bare_date_is_not_an_offset(self):
        # the trailing -01 of a date literal must not parse as a tz offset
        assert parse_datetime("2017-01-01") == 1483228800.0

    def test_z_on_date_only_rejected(self):
        with pytest.raises(TimeParseError):
            parse_datetime("2017-01-01Z")

    def test_rejects_garbage(self):
        with pytest.raises(TimeParseError):
            parse_datetime("yesterday")

    def test_rejects_partial(self):
        with pytest.raises(TimeParseError):
            parse_datetime("2017")


class TestDurations:
    @pytest.mark.parametrize(
        "amount,unit,expected",
        [
            (1, "sec", 1.0),
            (2, "seconds", 2.0),
            (1, "min", MINUTE),
            (10, "minutes", 10 * MINUTE),
            (1, "hour", HOUR),
            (3, "h", 3 * HOUR),
            (1, "day", DAY),
            (2, "d", 2 * DAY),
        ],
    )
    def test_units(self, amount, unit, expected):
        assert parse_duration(amount, unit) == expected

    def test_unit_case_insensitive(self):
        assert parse_duration(1, "MIN") == MINUTE

    def test_unknown_unit(self):
        with pytest.raises(TimeParseError):
            parse_duration(1, "fortnight")

    def test_text_form(self):
        assert parse_duration_text("10 sec") == 10.0
        assert parse_duration_text("1 min") == 60.0

    def test_text_form_rejects_missing_unit(self):
        with pytest.raises(TimeParseError):
            parse_duration_text("10")


class TestTimeWindow:
    def test_contains_half_open(self):
        w = TimeWindow(start=10.0, end=20.0)
        assert w.contains(10.0)
        assert w.contains(19.999)
        assert not w.contains(20.0)
        assert not w.contains(9.999)

    def test_unbounded_contains_everything(self):
        w = TimeWindow()
        assert w.contains(-1e12)
        assert w.contains(1e12)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(start=20.0, end=10.0)

    def test_at_day_covers_exactly_one_day(self):
        w = TimeWindow.at_day("01/01/2017")
        assert w.end - w.start == DAY
        assert w.contains(w.start)
        assert not w.contains(w.end)

    def test_intersect_bounded(self):
        a = TimeWindow(start=0.0, end=100.0)
        b = TimeWindow(start=50.0, end=200.0)
        c = a.intersect(b)
        assert (c.start, c.end) == (50.0, 100.0)

    def test_intersect_with_unbounded(self):
        a = TimeWindow(start=10.0)
        b = TimeWindow(end=50.0)
        c = a.intersect(b)
        assert (c.start, c.end) == (10.0, 50.0)

    def test_intersect_disjoint_is_empty(self):
        a = TimeWindow(start=0.0, end=10.0)
        b = TimeWindow(start=20.0, end=30.0)
        assert a.intersect(b).is_empty()

    def test_days_range(self):
        w = TimeWindow(start=0.0, end=2 * DAY)
        assert list(w.days()) == [0, 1]

    def test_days_partial_day(self):
        w = TimeWindow(start=DAY + 100, end=DAY + 200)
        assert list(w.days()) == [1]

    def test_days_unbounded_is_none(self):
        assert TimeWindow(start=0.0).days() is None

    def test_day_of_and_day_start_inverse(self):
        assert day_of(day_start(5)) == 5
        assert day_of(day_start(5) + DAY - 1) == 5

    def test_format_timestamp(self):
        assert format_timestamp(1483228800.0) == "2017-01-01 00:00:00"


class TestClockSynchronizer:
    def test_offset_correction(self):
        clock = ClockSynchronizer()
        clock.observe(agent_id=7, agent_clock=1000.0, server_clock=1003.5)
        assert clock.offset(7) == 3.5
        assert clock.correct(7, 2000.0) == 2003.5

    def test_unknown_agent_no_correction(self):
        clock = ClockSynchronizer()
        assert clock.correct(99, 500.0) == 500.0

    def test_latest_observation_wins(self):
        clock = ClockSynchronizer()
        clock.observe(1, 100.0, 101.0)
        clock.observe(1, 100.0, 99.0)
        assert clock.offset(1) == -1.0
