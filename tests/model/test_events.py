"""Unit tests for repro.model.events (paper Table 2)."""

import pytest

from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import (
    EVENT_ATTRIBUTES,
    OPERATIONS_BY_OBJECT,
    EventType,
    Operation,
    SystemEvent,
    event_type_of,
    validate_event,
)


def _event(**overrides):
    defaults = dict(
        event_id=1,
        agent_id=1,
        seq=1,
        start_time=100.0,
        end_time=101.0,
        operation=Operation.READ,
        subject_id=10,
        object_id=20,
        object_type=EntityType.FILE,
        amount=512,
    )
    defaults.update(overrides)
    return SystemEvent(**defaults)


class TestOperation:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("read", Operation.READ),
            ("WRITE", Operation.WRITE),
            ("exec", Operation.EXECUTE),
            ("fork", Operation.START),
            ("spawn", Operation.START),
            ("unlink", Operation.DELETE),
            ("mv", Operation.RENAME),
            ("receive", Operation.RECV),
        ],
    )
    def test_parse_aliases(self, text, expected):
        assert Operation.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Operation.parse("teleport")

    def test_start_only_for_processes(self):
        assert Operation.START in OPERATIONS_BY_OBJECT[EntityType.PROCESS]
        assert Operation.START not in OPERATIONS_BY_OBJECT[EntityType.FILE]
        assert Operation.START not in OPERATIONS_BY_OBJECT[EntityType.NETWORK]

    def test_connect_only_for_network(self):
        assert Operation.CONNECT in OPERATIONS_BY_OBJECT[EntityType.NETWORK]
        assert Operation.CONNECT not in OPERATIONS_BY_OBJECT[EntityType.FILE]


class TestEventTypes:
    def test_categorization_by_object(self):
        assert event_type_of(EntityType.FILE) is EventType.FILE
        assert event_type_of(EntityType.PROCESS) is EventType.PROCESS
        assert event_type_of(EntityType.NETWORK) is EventType.NETWORK

    def test_event_type_property(self):
        assert _event(object_type=EntityType.NETWORK).event_type is EventType.NETWORK


class TestSystemEvent:
    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            _event(start_time=100.0, end_time=99.0)

    def test_table2_attributes_present(self):
        # Table 2: operation, start/end time, sequence, subject/object ids...
        for attr in (
            "optype",
            "starttime",
            "endtime",
            "seq",
            "agentid",
            "amount",
            "failure_code",
            "subject_id",
            "object_id",
        ):
            assert attr in EVENT_ATTRIBUTES

    def test_attribute_lookup(self):
        e = _event()
        assert e.attribute("optype") == "read"
        assert e.attribute("starttime") == 100.0
        assert e.attribute("start_time") == 100.0
        assert e.attribute("amount") == 512
        assert e.attribute("agentid") == 1
        assert e.attribute("access") == "read"

    def test_attribute_unknown(self):
        with pytest.raises(AttributeError):
            _event().attribute("color")


class TestValidation:
    def setup_method(self):
        self.reg = EntityRegistry()
        self.proc = self.reg.process(1, 5, "bash")
        self.file = self.reg.file(1, "/x")

    def test_valid_file_read(self):
        event = _event(subject_id=self.proc.id, object_id=self.file.id)
        validate_event(event, self.proc, self.file)  # does not raise

    def test_subject_must_be_process(self):
        event = _event(subject_id=self.file.id, object_id=self.proc.id,
                       object_type=EntityType.PROCESS,
                       operation=Operation.START)
        with pytest.raises(ValueError, match="subject must be a process"):
            validate_event(event, self.file, self.proc)

    def test_operation_object_compatibility(self):
        event = _event(
            subject_id=self.proc.id,
            object_id=self.file.id,
            operation=Operation.CONNECT,
        )
        with pytest.raises(ValueError, match="invalid for object type"):
            validate_event(event, self.proc, self.file)

    def test_id_mismatch_detected(self):
        event = _event(subject_id=999, object_id=self.file.id)
        with pytest.raises(ValueError, match="ids do not match"):
            validate_event(event, self.proc, self.file)
