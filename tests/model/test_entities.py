"""Unit tests for repro.model.entities (paper Table 1)."""

import pytest

from repro.model.entities import (
    ATTRIBUTES_BY_TYPE,
    EntityRegistry,
    EntityType,
    default_attribute,
    is_valid_attribute,
    normalize_attribute,
)


class TestEntityType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("proc", EntityType.PROCESS),
            ("process", EntityType.PROCESS),
            ("FILE", EntityType.FILE),
            ("ip", EntityType.NETWORK),
            ("conn", EntityType.NETWORK),
        ],
    )
    def test_parse_aliases(self, text, expected):
        assert EntityType.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            EntityType.parse("socket")

    def test_extension_types_parse(self):
        assert EntityType.parse("registry") is EntityType.REGISTRY
        assert EntityType.parse("pipe") is EntityType.PIPE


class TestAttributeSchema:
    def test_table1_file_attributes(self):
        # Table 1: Name, Owner/Group, VolID, DataID
        for attr in ("name", "owner", "group", "vol_id", "data_id"):
            assert attr in ATTRIBUTES_BY_TYPE[EntityType.FILE]

    def test_table1_process_attributes(self):
        # Table 1: PID, Name, User, Cmd, Binary Signature
        for attr in ("pid", "exe_name", "user", "cmd", "signature"):
            assert attr in ATTRIBUTES_BY_TYPE[EntityType.PROCESS]

    def test_table1_network_attributes(self):
        # Table 1: IP, Port, Protocol
        for attr in ("src_ip", "src_port", "dst_ip", "dst_port", "protocol"):
            assert attr in ATTRIBUTES_BY_TYPE[EntityType.NETWORK]

    def test_agent_id_on_every_type(self):
        for etype in EntityType:
            assert "agent_id" in ATTRIBUTES_BY_TYPE[etype]

    def test_default_attributes(self):
        assert default_attribute(EntityType.FILE) == "name"
        assert default_attribute(EntityType.PROCESS) == "exe_name"
        assert default_attribute(EntityType.NETWORK) == "dst_ip"

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("dstip", "dst_ip"),
            ("dstport", "dst_port"),
            ("srcip", "src_ip"),
            ("agentid", "agent_id"),
            ("exename", "exe_name"),
            ("DSTIP", "dst_ip"),
        ],
    )
    def test_alias_normalization(self, alias, canonical):
        assert normalize_attribute(None, alias) == canonical

    def test_is_valid_attribute(self):
        assert is_valid_attribute(EntityType.NETWORK, "dstport")
        assert not is_valid_attribute(EntityType.FILE, "dstport")


class TestEntityRegistry:
    def test_ids_unique_and_increasing(self):
        reg = EntityRegistry()
        a = reg.file(1, "/a")
        b = reg.process(1, 2, "bash")
        c = reg.connection(1, "10.0.0.1", 1, "10.0.0.2", 2)
        assert len({a.id, b.id, c.id}) == 3

    def test_file_dedup(self):
        reg = EntityRegistry()
        a = reg.file(1, "/etc/passwd")
        b = reg.file(1, "/etc/passwd")
        assert a is b
        assert len(reg) == 1

    def test_file_differs_per_agent(self):
        reg = EntityRegistry()
        assert reg.file(1, "/etc/passwd").id != reg.file(2, "/etc/passwd").id

    def test_process_dedup_by_pid_and_generation(self):
        reg = EntityRegistry()
        a = reg.process(1, 100, "bash")
        b = reg.process(1, 100, "bash")
        c = reg.process(1, 100, "bash", generation=1)
        assert a is b
        assert a.id != c.id

    def test_connection_dedup_by_five_tuple(self):
        reg = EntityRegistry()
        a = reg.connection(1, "10.0.0.1", 5000, "1.2.3.4", 443)
        b = reg.connection(1, "10.0.0.1", 5000, "1.2.3.4", 443)
        c = reg.connection(1, "10.0.0.1", 5001, "1.2.3.4", 443)
        assert a is b
        assert a.id != c.id

    def test_get_and_maybe_get(self):
        reg = EntityRegistry()
        a = reg.file(1, "/x")
        assert reg.get(a.id) is a
        assert reg.maybe_get(a.id) is a
        assert reg.maybe_get(99999) is None

    def test_iteration_covers_all(self):
        reg = EntityRegistry()
        reg.file(1, "/a")
        reg.file(1, "/b")
        assert len(list(reg)) == 2


class TestEntityAttributeLookup:
    def test_file_attribute(self):
        reg = EntityRegistry()
        f = reg.file(3, "/var/log/syslog", owner="root")
        assert f.attribute("name") == "/var/log/syslog"
        assert f.attribute("owner") == "root"
        assert f.attribute("agent_id") == 3
        assert f.attribute("agentid") == 3

    def test_process_attribute_alias(self):
        reg = EntityRegistry()
        p = reg.process(1, 42, "nginx", user="www")
        assert p.attribute("exename") == "nginx"
        assert p.attribute("pid") == 42

    def test_network_attribute_alias(self):
        reg = EntityRegistry()
        n = reg.connection(1, "10.0.0.1", 1234, "8.8.8.8", 53, protocol="udp")
        assert n.attribute("dstip") == "8.8.8.8"
        assert n.attribute("dstport") == 53
        assert n.attribute("protocol") == "udp"

    def test_invalid_attribute_raises(self):
        reg = EntityRegistry()
        f = reg.file(1, "/x")
        with pytest.raises(AttributeError):
            f.attribute("dst_ip")

    def test_cmd_defaults_to_exe_name(self):
        reg = EntityRegistry()
        p = reg.process(1, 7, "sshd")
        assert p.attribute("cmd") == "sshd"
