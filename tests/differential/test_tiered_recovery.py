"""Differential harness for the tiered storage subsystem.

For every storage backend, the full query corpus must answer identically on

* the **live** durable deployment (hot tier only, WAL attached),
* a **crash-recovered** copy (snapshot + WAL replay into a fresh system —
  the deployment was never checkpointed or closed, so this is the pure
  WAL-replay path), and
* a **compacted** copy whose oldest partitions were migrated into
  compressed cold segments (answers must flow through the zone-map-pruned
  cold-scan path).

Run standalone (the CI differential job):

    PYTHONPATH=src python -m pytest -q tests/differential
"""

import shutil

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise

BACKEND_CONFIGS = {
    "partitioned": dict(backend="partitioned"),
    "flat": dict(backend="flat"),
    "segmented_domain": dict(backend="segmented", distribution="domain"),
    "segmented_arrival": dict(backend="segmented", distribution="arrival"),
}

RETENTION_DAYS = 4  # the 16-day corpus leaves most days past the horizon


@pytest.fixture(scope="module", params=sorted(BACKEND_CONFIGS))
def trio(request, tmp_path_factory):
    """(live, crash-recovered, compacted) systems over identical data."""
    name = request.param
    root = tmp_path_factory.mktemp(f"tier-{name}")
    live_dir = root / "live"
    config = SystemConfig(
        data_dir=str(live_dir),
        compact_interval_s=3600,
        **BACKEND_CONFIGS[name],
    )
    live = AIQLSystem(config)
    build_enterprise(
        stores=(),
        ingestor=live.ingestor,
        events_per_host_day=30,
        stream_batch_size=64,
    )

    # Crash: duplicate the data dir as-is (open WAL, no checkpoint, no
    # close) and recover each copy independently of the live deployment.
    crash_dir = root / "crash"
    compact_dir = root / "compact"
    shutil.copytree(live_dir, crash_dir)
    shutil.copytree(live_dir, compact_dir)

    recovered = AIQLSystem.recover(str(crash_dir), config=SystemConfig(
        compact_interval_s=3600, **BACKEND_CONFIGS[name]
    ))
    compacted = AIQLSystem.recover(str(compact_dir), config=SystemConfig(
        compact_interval_s=3600, **BACKEND_CONFIGS[name]
    ))
    report = compacted.compact(RETENTION_DAYS)
    assert report.moved, "corpus must reach past the retention horizon"

    yield live, recovered, compacted
    for system in (live, recovered, compacted):
        system.close()


class TestTieredEquivalence:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_live_recovered_compacted_agree(self, trio, query):
        live, recovered, compacted = trio
        reference = set(live.query(query.text).rows)
        assert set(recovered.query(query.text).rows) == reference, (
            "crash recovery changed query results"
        )
        assert set(compacted.query(query.text).rows) == reference, (
            "cold-tier compaction changed query results"
        )

    def test_recovery_lost_no_committed_event(self, trio):
        live, recovered, compacted = trio
        total = live.ingestor.events_ingested
        assert total > 0
        assert recovered.ingestor.events_ingested == total
        assert len(recovered.store) == len(live.store) == total
        assert len(compacted.store) == total

    def test_compaction_actually_went_cold(self, trio):
        _, _, compacted = trio
        cold = compacted.store.cold
        assert cold.event_count > 0
        assert len(compacted.store.hot) + cold.event_count == len(
            compacted.store
        )
        # the corpus' day-scoped queries must have pruned cold segments
        assert cold.segments_pruned > 0
