"""Differential harness: compiled scan kernels == the interpreted filter path.

Two layers of evidence that kernel compilation changes *nothing* about what
a scan matches:

* **Corpus equivalence** — every corpus query answers identically with
  kernels on vs. the interpreted ``EventFilter.matches`` path, on all four
  storage backends *and* on a compacted tiered store (hot+cold windows
  through the columnar cold path and the sorted-run merge).
* **Property equivalence** — hypothesis generates random filters (every
  comparison operator, LIKE patterns, IN lists, cross-type literals,
  NOT/OR/AND trees, windows, id sets) against random events and asserts
  ``kernel.test(event) == flt.matches(event, subject, obj)`` case by case.

Run standalone (the CI differential job):

    PYTHONPATH=src python -m pytest -q tests/differential
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import Operation, SystemEvent
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
)
from repro.storage.kernels import compile_filter, use_kernels
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise
from tests.conftest import compile_text

BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")


@pytest.fixture(scope="module")
def enterprise():
    return build_enterprise(stores=BACKENDS, events_per_host_day=40)


@pytest.fixture(scope="module")
def tiered(tmp_path_factory):
    """A durable deployment with most of its corpus compacted cold."""
    system = AIQLSystem(
        SystemConfig(
            data_dir=str(tmp_path_factory.mktemp("kernel-tiered")),
            retention_days=2,
            compact_interval_s=3600,
            wal_sync=False,
        )
    )
    build_enterprise(stores=(), ingestor=system.ingestor, events_per_host_day=40)
    report = system.compact()
    assert report.moved  # the corpus spans 16 days: most of it went cold
    yield system.store
    system.close()


def run_query(store, ctx):
    if ctx.kind == "anomaly":
        return AnomalyExecutor(store).run(ctx)
    return MultieventExecutor(store).run(ctx)


class TestCorpusEquivalence:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_all_backends_agree_with_interpreter(self, enterprise, query):
        ctx = compile_text(query.text)
        for name in BACKENDS:
            store = enterprise.store(name)
            with use_kernels(False):
                interpreted = set(run_query(store, ctx).rows)
            with use_kernels(True):
                compiled = set(run_query(store, ctx).rows)
            assert compiled == interpreted, (
                f"kernels change {query.qid} on {name}"
            )

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_compacted_tiered_store_agrees(self, tiered, query):
        ctx = compile_text(query.text)
        with use_kernels(False):
            interpreted = set(run_query(tiered, ctx).rows)
        with use_kernels(True):
            compiled = set(run_query(tiered, ctx).rows)
        assert compiled == interpreted, (
            f"kernels change {query.qid} on the compacted tiered store"
        )


# ---------------------------------------------------------------------------
# property-based equivalence
# ---------------------------------------------------------------------------

_registry = EntityRegistry()
_ENTITIES = [
    _registry.process(1, 100, "sshd", user="root", cmd="/usr/sbin/sshd -D"),
    _registry.process(2, 200, "nginx", user="www", cmd="nginx -g daemon"),
    _registry.file(1, "/etc/passwd", owner="root"),
    _registry.file(2, "/var/log/auth.log", owner="syslog"),
    _registry.connection(1, "10.0.0.5", 51000, "166.213.1.129", 4444),
    _registry.connection(2, "10.0.0.9", 33000, "10.1.1.1", 80),
]
_PROCESSES = [e for e in _ENTITIES if e.entity_type is EntityType.PROCESS]

_ATTRS = (
    "exe_name", "user", "cmd", "pid", "name", "owner",
    "dst_ip", "dst_port", "src_port", "agent_id", "id",
    "amount", "operation", "start_time", "seq", "bogus_attr",
)

_literals = st.one_of(
    st.integers(min_value=-5, max_value=5000),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    st.sampled_from(
        ["sshd", "SSHD", "4444", "4.5", "%ssh%", "%a%g%", "root", "", "%"]
    ),
)

_predicates = st.builds(
    AttrPredicate,
    attr=st.sampled_from(_ATTRS),
    op=st.sampled_from(("=", "!=", "<", "<=", ">", ">=")),
    value=_literals,
) | st.builds(
    AttrPredicate,
    attr=st.sampled_from(_ATTRS),
    op=st.sampled_from(("in", "not in")),
    value=st.lists(_literals, min_size=0, max_size=4).map(tuple),
)


def _trees(children):
    return st.one_of(
        st.builds(PredicateNot, children),
        st.builds(lambda a, b: PredicateAnd((a, b)), children, children),
        st.builds(lambda a, b: PredicateOr((a, b)), children, children),
    )


_predicate_trees = st.recursive(
    st.builds(PredicateLeaf, _predicates), _trees, max_leaves=6
)

_windows = st.builds(
    lambda start, length: TimeWindow(
        start=start, end=None if length is None else start + length
    ),
    start=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
    length=st.none() | st.floats(min_value=0.0, max_value=3000.0, allow_nan=False),
) | st.just(TimeWindow())

_maybe_ids = st.none() | st.frozensets(
    st.integers(min_value=0, max_value=8), max_size=4
)

_filters = st.builds(
    EventFilter,
    agent_ids=st.none() | st.frozensets(st.integers(1, 3), max_size=3),
    window=_windows,
    operations=st.none()
    | st.frozensets(st.sampled_from(list(Operation)), max_size=3),
    object_type=st.none() | st.sampled_from(list(EntityType)),
    subject_pred=st.none() | _predicate_trees,
    object_pred=st.none() | _predicate_trees,
    event_pred=st.none() | _predicate_trees,
    subject_ids=_maybe_ids,
    object_ids=_maybe_ids,
)

_events = st.builds(
    lambda eid, agent, start, op, subject, obj, amount: SystemEvent(
        event_id=eid,
        agent_id=agent,
        seq=eid,
        start_time=start,
        end_time=start + 1.0,
        operation=op,
        subject_id=subject.id,
        object_id=obj.id,
        object_type=obj.entity_type,
        amount=amount,
    ),
    eid=st.integers(min_value=1, max_value=100),
    agent=st.integers(min_value=1, max_value=3),
    start=st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    op=st.sampled_from(list(Operation)),
    subject=st.sampled_from(_PROCESSES),
    obj=st.sampled_from(_ENTITIES),
    amount=st.integers(min_value=0, max_value=10000),
)


class TestPropertyEquivalence:
    @settings(max_examples=400, deadline=None)
    @given(flt=_filters, event=_events)
    def test_kernel_agrees_with_interpreter(self, flt, event):
        kernel = compile_filter(flt)
        subject = _registry.get(event.subject_id)
        obj = _registry.get(event.object_id)
        interpreted = flt.matches(event, subject, obj)
        assert kernel.test(event, _registry.get) == interpreted
        if kernel.always_false:
            assert not interpreted
