"""Differential harness: every backend answers every corpus query identically.

The paper's Sec. 6.2.2 fairness requirement — all storage backends hold the
same copies of the data — as an executable invariant, over a *live-streamed*
ingest: the whole enterprise (background + attack scenarios) is appended
through a ``StreamSession`` and committed in batches, then every corpus
query runs against the optimized partitioned store, the flat (PostgreSQL-
like) baseline, and both MPP segment distributions, asserting identical
result sets.

Run standalone (the CI differential job):

    PYTHONPATH=src python -m pytest -q tests/differential
"""

import pytest

from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise
from tests.conftest import compile_text

BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")
BASELINES = BACKENDS[1:]


@pytest.fixture(scope="module")
def streamed():
    """Every backend fed the identical event stream through a StreamSession."""
    return build_enterprise(
        stores=BACKENDS,
        events_per_host_day=40,
        stream_batch_size=64,
    )


def run_query(store, ctx):
    if ctx.kind == "anomaly":
        return AnomalyExecutor(store).run(ctx)
    return MultieventExecutor(store).run(ctx)


class TestStreamedBackendEquivalence:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_all_backends_agree(self, streamed, query):
        ctx = compile_text(query.text)
        reference = set(run_query(streamed.store("partitioned"), ctx).rows)
        for name in BASELINES:
            got = set(run_query(streamed.store(name), ctx).rows)
            assert got == reference, (
                f"{name} disagrees with partitioned on {query.qid} over the "
                f"live-streamed corpus"
            )

    def test_every_backend_holds_the_full_stream(self, streamed):
        total = streamed.total_events
        assert total > 0
        for name in BACKENDS:
            assert len(streamed.store(name)) == total, name
        assert streamed.session is not None
        assert streamed.session.watermark == total
        assert streamed.session.pending == 0


class TestStreamedMatchesBurst:
    """Streaming through batched commits must be byte-equivalent to the
    seed's exclusive burst load — same events, same order, same partitions."""

    def test_partitioned_store_content_identical(self, streamed):
        burst = build_enterprise(
            stores=("partitioned",), events_per_host_day=40
        )
        streamed_events = [
            (e.agent_id, e.seq, e.start_time, e.operation, e.amount)
            for e in streamed.store("partitioned")
        ]
        burst_events = [
            (e.agent_id, e.seq, e.start_time, e.operation, e.amount)
            for e in burst.store("partitioned")
        ]
        assert streamed_events == burst_events
        assert (
            streamed.store("partitioned").partition_keys
            == burst.store("partitioned").partition_keys
        )
