"""Differential harness: columnar block execution == the row paths.

ISSUE-6 evidence that block-at-a-time kernel dispatch changes *nothing*
about what a query answers:

* **Corpus equivalence** — every corpus query answers identically in
  columnar mode vs. the per-event compiled-closure path vs. the
  interpreted oracle, on all four storage backends *and* on a compacted
  tiered store (hot block slices merged with decoded cold segments).
* **Property equivalence** — hypothesis cross-checks
  ``kernel.select(block)`` against the per-event kernel row by row in
  ``tests/storage/test_kernels.py``; this module covers the end-to-end
  query surface.

Run standalone (the CI differential job):

    PYTHONPATH=src python -m pytest -q tests/differential
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.storage.kernels import use_columnar, use_kernels
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise
from tests.conftest import compile_text

BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")


@pytest.fixture(scope="module")
def enterprise():
    return build_enterprise(stores=BACKENDS, events_per_host_day=40)


@pytest.fixture(scope="module")
def tiered(tmp_path_factory):
    """A durable deployment with most of its corpus compacted cold."""
    system = AIQLSystem(
        SystemConfig(
            data_dir=str(tmp_path_factory.mktemp("columnar-tiered")),
            retention_days=2,
            compact_interval_s=3600,
            wal_sync=False,
        )
    )
    build_enterprise(stores=(), ingestor=system.ingestor, events_per_host_day=40)
    report = system.compact()
    assert report.moved  # the corpus spans 16 days: most of it went cold
    yield system.store
    system.close()


def run_query(store, ctx):
    if ctx.kind == "anomaly":
        return AnomalyExecutor(store).run(ctx)
    return MultieventExecutor(store).run(ctx)


def answers_in_each_mode(store, ctx):
    """(interpreted-oracle, compiled-closure, columnar) answer sets."""
    with use_kernels(False):
        oracle = set(run_query(store, ctx).rows)
    with use_kernels(True):
        with use_columnar(False):
            closure = set(run_query(store, ctx).rows)
        with use_columnar(True):
            columnar = set(run_query(store, ctx).rows)
    return oracle, closure, columnar


class TestCorpusEquivalence:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_all_backends_agree_across_modes(self, enterprise, query):
        ctx = compile_text(query.text)
        for name in BACKENDS:
            oracle, closure, columnar = answers_in_each_mode(
                enterprise.store(name), ctx
            )
            assert columnar == oracle, (
                f"columnar mode changes {query.qid} on {name}"
            )
            assert columnar == closure, (
                f"columnar and closure paths disagree on {query.qid} ({name})"
            )

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_compacted_tiered_store_agrees(self, tiered, query):
        ctx = compile_text(query.text)
        oracle, closure, columnar = answers_in_each_mode(tiered, ctx)
        assert columnar == oracle, (
            f"columnar mode changes {query.qid} on the compacted tiered store"
        )
        assert columnar == closure, (
            f"columnar and closure paths disagree on {query.qid} (tiered)"
        )
