"""Differential: continuous alerts == batch results over the same prefix.

The continuous engine's core invariant: with an unbounded horizon, the
set of tuples a standing query has alerted on after a committed stream
prefix is exactly the tuple set the batch scheduler produces for the same
query over the same prefix.  Here the whole evaluation workload (16 days
of background noise + every attack scenario) streams through one session
feeding four storage backends and a continuous engine; at the end — and
at an intermediate prefix — every standing query's alert keys are
compared against a fresh batch execution on every backend.
"""

from __future__ import annotations

import pytest

from repro.engine import compile_query, make_scheduler
from repro.service.continuous import ContinuousQueryEngine
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore
from repro.workload.attacks import inject_apt2, inject_apt_case_study
from repro.workload.behaviors import (
    inject_abnormal_behaviors,
    inject_dependency_behaviors,
    inject_malware_behaviors,
)
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import HOSTS

BACKENDS = ("partitioned", "flat", "segmented_domain", "segmented_arrival")

# Standing queries covering the shapes the engine evaluates: unwindowed
# and windowed, one to three patterns, temporal + entity-join
# relationships, LIKE/IN predicates.
STANDING = {
    "single-like": """
        proc p1["gsecdump.exe"] read file f1["%SAM"] as evt1
        return p1, f1
    """,
    "single-windowed": """
        (at "01/05/2017")
        proc p1 connect ip i1[dstip = "203.0.113.129"] as evt1
        return p1, i1
    """,
    "pair-join": """
        proc p1["%excel%"] write file f1["%payload.exe"] as evt1
        proc p1 start proc p2["%payload%"] as evt2
        with evt1 before evt2
        return p1, f1, p2
    """,
    "triple-chain": """
        proc p1["%cmd%"] write file f1["%.vbs"] as evt1
        proc p2["%wscript%"] read file f1 as evt2
        proc p2 start proc p3 as evt3
        with evt1 before evt2, evt2 before evt3
        return p1, f1, p2, p3
    """,
    "cross-host": """
        proc p1["%implant%" || "%.updater%"] send ip i1 as evt1
        proc p2["%apache%"] recv ip i2 as evt2
        with i1.dstip = i2.dstip, evt1 before evt2
        return p1, p2
    """,
}


def batch_keys(store, text):
    """Tuple keys the batch scheduler produces for ``text`` on ``store``."""
    ctx = compile_query(text)
    tuples = make_scheduler("relationship", store).run(ctx)
    return {
        tuple(
            row[tuples.column_of(i)].event_id
            for i in sorted(tuples.patterns)
        )
        for row in tuples.rows
    }


@pytest.fixture(scope="module")
def streamed():
    """Stream the whole workload into four backends + standing queries."""
    ingestor = Ingestor()
    stores = {
        "partitioned": EventStore(
            registry=ingestor.registry, scheme=PartitionScheme()
        ),
        "flat": FlatStore(registry=ingestor.registry),
        "segmented_domain": SegmentedStore(
            registry=ingestor.registry, segments=5, policy="domain"
        ),
        "segmented_arrival": SegmentedStore(
            registry=ingestor.registry, segments=5, policy="arrival"
        ),
    }
    for store in stores.values():
        ingestor.attach(store)

    engine = ContinuousQueryEngine(ingestor.registry)
    subs = {
        name: engine.subscribe(text, window_s=float("inf"), name=name)
        for name, text in STANDING.items()
    }
    session = StreamSession(ingestor, batch_size=97)
    session.on_commit(lambda batch, started: engine.push(batch, started))

    BackgroundGenerator(
        session,
        GeneratorConfig(seed=20170101, hosts=HOSTS, events_per_host_day=40),
    ).run()
    session.commit()
    # Mid-stream checkpoint: alert keys after the background-only prefix.
    prefix_keys = {
        name: {alert_key for alert_key in sub.seen}
        for name, sub in subs.items()
    }
    prefix_batch = {
        name: batch_keys(stores["partitioned"], text)
        for name, text in STANDING.items()
    }

    inject_apt_case_study(session)
    inject_apt2(session)
    inject_dependency_behaviors(session)
    inject_malware_behaviors(session)
    inject_abnormal_behaviors(session)
    session.commit()
    return stores, subs, prefix_keys, prefix_batch


class TestContinuousEqualsBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("query", sorted(STANDING))
    def test_final_prefix_equivalence(self, streamed, backend, query):
        stores, subs, _, _ = streamed
        expected = batch_keys(stores[backend], STANDING[query])
        assert subs[query].seen == expected
        # the attack scenarios make every standing query non-vacuous
        assert expected, f"standing query {query} matched nothing"

    @pytest.mark.parametrize("query", sorted(STANDING))
    def test_intermediate_prefix_equivalence(self, streamed, query):
        _, _, prefix_keys, prefix_batch = streamed
        assert prefix_keys[query] == prefix_batch[query]

    def test_alert_events_carry_matched_tuples(self, streamed):
        stores, subs, _, _ = streamed
        sub = subs["pair-join"]
        assert sub.alerts_emitted == len(sub.seen)
