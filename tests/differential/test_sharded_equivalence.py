"""Differential harness: sharded deployments answer like one process.

The whole corpus runs against sharded deployments — the partitioned
backend at 1, 2 and 4 shards, every baseline backend at 2 shards, and a
durable 2-shard deployment after compaction has pushed most days into
cold segments — asserting result sets identical to the single-process
reference for every query.  This is the end-to-end soundness gate of
the scatter/gather path: routing, the wire codec, watermark capping and
the recovery-independent merge all have to be exact for the sets to
agree.

Run standalone (the CI shard-smoke job):

    PYTHONPATH=src python -m pytest -q tests/differential/test_sharded_equivalence.py
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.workload.corpus import ALL_QUERIES
from repro.workload.loader import build_enterprise

RATE = 30

SHARDED_CONFIGS = (
    pytest.param(SystemConfig(shards=1), id="partitioned-1shard"),
    pytest.param(SystemConfig(shards=2), id="partitioned-2shards"),
    pytest.param(SystemConfig(shards=4), id="partitioned-4shards"),
    pytest.param(SystemConfig(shards=2, backend="flat"), id="flat-2shards"),
    pytest.param(
        SystemConfig(shards=2, backend="segmented", distribution="domain"),
        id="segmented-domain-2shards",
    ),
    pytest.param(
        SystemConfig(shards=2, backend="segmented", distribution="arrival"),
        id="segmented-arrival-2shards",
    ),
)


@pytest.fixture(scope="module")
def reference():
    """Single-process answers for every corpus query."""
    enterprise = build_enterprise(
        stores=("partitioned",), events_per_host_day=RATE
    )
    system = AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )
    return {
        query.qid: set(system.query(query.text).rows) for query in ALL_QUERIES
    }, enterprise.total_events


def build_sharded(config):
    system = AIQLSystem(config)
    build_enterprise(
        stores=(), ingestor=system.ingestor, events_per_host_day=RATE,
        stream_batch_size=128,
    )
    return system


def assert_full_corpus_agrees(system, reference, label):
    answers, total = reference
    assert len(system.store) == total, f"{label} lost events"
    for query in ALL_QUERIES:
        got = set(system.query(query.text).rows)
        assert got == answers[query.qid], (
            f"{label} disagrees with the single-process reference on "
            f"{query.qid}"
        )


@pytest.mark.parametrize("config", SHARDED_CONFIGS)
def test_sharded_matches_single_process(config, reference):
    system = build_sharded(config)
    try:
        assert_full_corpus_agrees(
            system, reference, f"{config.backend} x{config.shards}"
        )
    finally:
        system.close()


def test_compacted_durable_sharded_matches_single_process(reference, tmp_path):
    """Scatter scans stay exact when most days live in cold segments."""
    config = SystemConfig(shards=2, data_dir=str(tmp_path), retention_days=4)
    system = build_sharded(config)
    try:
        report = system.store.compact(retention_days=4)
        assert report.moved, "compaction moved nothing; gate is vacuous"
        assert_full_corpus_agrees(system, reference, "compacted durable x2")
    finally:
        system.close()
