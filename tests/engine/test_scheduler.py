"""Scheduler tests: Algorithm 1 vs fetch-and-filter equivalence + behavior."""

import pytest

from repro.engine.scheduler import (
    FetchFilterScheduler,
    RelationshipScheduler,
    make_scheduler,
)
from repro.workload.corpus import (
    CASE_STUDY_QUERIES,
    PERFORMANCE_QUERIES,
)
from tests.conftest import compile_text

NON_ANOMALY = [
    q for q in CASE_STUDY_QUERIES + PERFORMANCE_QUERIES if q.kind != "anomaly"
]


def rows_as_set(tuples):
    return {tuple(e.event_id for e in row) for row in tuples.rows}


class TestEquivalence:
    """Both strategies must produce identical tuple sets (paper invariant)."""

    @pytest.mark.parametrize("query", NON_ANOMALY, ids=lambda q: q.qid)
    def test_relationship_equals_fetch_filter(self, store, query):
        ctx = compile_text(query.text)
        rel = RelationshipScheduler(store).run(ctx)
        ff = FetchFilterScheduler(store).run(ctx)
        assert rel.patterns == ff.patterns
        assert rows_as_set(rel) == rows_as_set(ff)


class TestRelationshipScheduling:
    def test_higher_score_executes_first(self, store):
        # pattern 2 has far more constraints than pattern 1
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            "proc p1 read file f1 as e1\n"
            'proc p2["%sbblv.exe"] write ip i1[dstip = "203.0.113.129"] as e2\n'
            "with p1 = p2, e1 before e2\nreturn p1, f1"
        )
        scheduler = RelationshipScheduler(store)
        scheduler.run(ctx)
        assert scheduler.stats.order[0] == 1  # the constrained pattern first

    def test_constrained_execution_fetches_less(self, store):
        query = (
            'agentid = 3\n(at "01/05/2017")\n'
            "proc p1 read file f1 as e1\n"
            'proc p2["%sbblv.exe"] write ip i1[dstip = "203.0.113.129"] as e2\n'
            "with p1 = p2, e1 before e2\nreturn p1, f1"
        )
        ctx = compile_text(query)
        rel = RelationshipScheduler(store)
        rel.run(ctx)
        ff = FetchFilterScheduler(store)
        ff.run(ctx)
        assert rel.stats.constrained_executions >= 1
        assert rel.stats.events_fetched < ff.stats.events_fetched

    def test_single_pattern_no_relationships(self, store):
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p1 write ip i1[dstip = "203.0.113.129"] as e1\nreturn p1'
        )
        scheduler = RelationshipScheduler(store)
        tuples = scheduler.run(ctx)
        assert len(tuples) > 0
        assert scheduler.stats.data_queries_executed == 1

    def test_disconnected_patterns_cross_join(self, store):
        # two patterns with no relationship: result is the cross product
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p1["%osql.exe%"] start proc p2 as e1\n'
            'proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as e2\n'
            "return p1, f1"
        )
        rel = RelationshipScheduler(store).run(ctx)
        ff = FetchFilterScheduler(store).run(ctx)
        assert rows_as_set(rel) == rows_as_set(ff)

    def test_file_relationships_sorted_last(self, store):
        # relationship between two network/process patterns should be
        # processed before one touching a file pattern
        ctx = compile_text(
            'agentid = 1\n(at "01/05/2017")\n'
            "proc p1 start proc p2 as e1\n"
            "proc p2 connect ip i1 as e2\n"
            "proc p2 read file f1 as e3\n"
            "with e1 before e2, e2 before e3\nreturn p1, f1"
        )
        scheduler = RelationshipScheduler(store)
        scheduler.run(ctx)
        # first two executed patterns must be the process/network ones
        assert set(scheduler.stats.order[:2]) <= {0, 1}

    def test_empty_result_when_no_match(self, store):
        ctx = compile_text(
            'agentid = 1\n(at "01/05/2017")\n'
            'proc p1["%no_such_binary%"] start proc p2 as e1\n'
            "proc p2 read file f1 as e2\nwith e1 before e2\nreturn p1"
        )
        tuples = RelationshipScheduler(store).run(ctx)
        assert len(tuples) == 0


class TestFactory:
    def test_make_scheduler(self, store):
        assert isinstance(
            make_scheduler("relationship", store), RelationshipScheduler
        )
        assert isinstance(
            make_scheduler("fetch_filter", store), FetchFilterScheduler
        )

    def test_unknown_scheduler(self, store):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("quantum", store)
