"""Dependency query rewriting tests (paper Sec. 4.2)."""

import pytest

from repro.engine.dependency import compile_dependency, rewrite_dependency
from repro.engine.executor import MultieventExecutor
from repro.lang import ast
from repro.lang.errors import AIQLSemanticError
from repro.lang.parser import parse
from tests.conftest import compile_text

FORWARD = """
(at "01/07/2017")
forward: proc p1["%/bin/cp%", agentid = 4] ->[write]
  file f1["/var/www/%info_stealer%"] <-[read] proc p2["%apache%"]
  ->[connect] proc p3[agentid = 5] ->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2
"""


class TestRewriting:
    def test_simple_forward_chain(self):
        q = parse(
            '(at "01/07/2017")\n'
            'forward: proc p1 ->[write] file f1["%x%"] <-[read] proc p2\n'
            "return p1, f1, p2"
        )
        rewritten = rewrite_dependency(q)
        assert isinstance(rewritten, ast.MultieventQuery)
        assert len(rewritten.patterns) == 2
        # f1 shared between patterns -> entity reuse
        assert (
            rewritten.patterns[0].object.entity_id
            == rewritten.patterns[1].object.entity_id
        )
        temp = [r for r in rewritten.relationships if isinstance(r, ast.TempRel)]
        assert len(temp) == 1 and temp[0].kind == "before"

    def test_backward_chain_uses_after(self):
        q = parse(
            '(at "01/07/2017")\n'
            'backward: proc u1["%upd%"] ->[read] file f1 <-[write] proc p1\n'
            "return u1, f1, p1"
        )
        rewritten = rewrite_dependency(q)
        temp = [r for r in rewritten.relationships if isinstance(r, ast.TempRel)]
        assert temp[0].kind == "after"

    def test_no_direction_no_temporal(self):
        q = parse(
            "proc p1 ->[write] file f1 <-[read] proc p2\nreturn p1, f1, p2"
        )
        rewritten = rewrite_dependency(q)
        temp = [r for r in rewritten.relationships if isinstance(r, ast.TempRel)]
        assert not temp

    def test_edge_direction_decides_subject(self):
        q = parse("proc p1 ->[write] file f1 <-[read] proc p2\nreturn p1")
        rewritten = rewrite_dependency(q)
        assert rewritten.patterns[0].subject.entity_id == "p1"
        assert rewritten.patterns[1].subject.entity_id == "p2"

    def test_cross_host_connect_expanded(self):
        rewritten = rewrite_dependency(parse(FORWARD))
        # 4 edges, one cross-host -> 5 patterns
        assert len(rewritten.patterns) == 5
        ip_patterns = [
            p for p in rewritten.patterns if p.object.type_name == "ip"
        ]
        assert len(ip_patterns) == 2
        attr_rels = [
            r for r in rewritten.relationships if isinstance(r, ast.AttrRel)
        ]
        attrs = {(r.left_attr, r.right_attr) for r in attr_rels}
        assert ("dst_ip", "dst_ip") in attrs
        assert ("dst_port", "dst_port") in attrs

    def test_file_cannot_act(self):
        q = parse("file f1 ->[read] proc p1\nreturn p1")
        with pytest.raises(AIQLSemanticError, match="must be a process"):
            rewrite_dependency(q)

    def test_globals_and_returns_pass_through(self):
        rewritten = rewrite_dependency(parse(FORWARD))
        assert any(isinstance(g, ast.TimeWindowSpec) for g in rewritten.globals)
        assert [i.expr.ref for i in rewritten.returns.items] == [
            "f1",
            "p1",
            "p2",
            "p3",
            "f2",
        ]


class TestExecution:
    def test_forward_tracking_finds_ramification(self, store):
        """The paper's Query 3 scenario end-to-end."""
        result = MultieventExecutor(store).run(compile_text(FORWARD))
        rows = set(result.rows)
        assert len(rows) >= 1
        row = next(iter(rows))
        labels = dict(zip(result.columns, row))
        assert labels["p1"] == "/bin/cp"
        assert labels["p2"] == "apache2"
        assert labels["p3"] == "wget"
        assert "info_stealer" in labels["f2"]

    def test_dependency_equals_manual_multievent(self, store):
        """A dependency query and its hand-written multievent equivalent
        return the same rows."""
        dep = compile_text(
            '(at "01/07/2017")\nagentid = 7\n'
            'forward: proc p1["%chrome.exe"] ->[write] '
            'file f1["%chrome_update%"] <-[read] proc p2\n'
            "return p1, f1, p2"
        )
        manual = compile_text(
            '(at "01/07/2017")\nagentid = 7\n'
            'proc p1["%chrome.exe"] write file f1["%chrome_update%"] as e1\n'
            "proc p2 read file f1 as e2\n"
            "with e1 before e2\n"
            "return p1, f1, p2"
        )
        executor = MultieventExecutor(store)
        assert set(executor.run(dep).rows) == set(executor.run(manual).rows)

    def test_compile_dependency_returns_context(self):
        ctx = compile_dependency(parse(FORWARD))
        assert ctx.kind == "multievent"
        assert len(ctx.patterns) == 5
