"""Temporal parallelization tests (paper Sec. 5.2 time window partition)."""

import pytest

from repro.engine.parallel import scan_split, split_window
from repro.model.time import DAY, HOUR, TimeWindow
from repro.storage.filters import EventFilter
from repro.workload.topology import APT_DAY


class TestSplitWindow:
    def test_single_day_not_split(self):
        w = TimeWindow(start=0.0, end=DAY)
        assert split_window(w) == [w]

    def test_multi_day_split_on_boundaries(self):
        w = TimeWindow(start=HOUR, end=2 * DAY + HOUR)
        pieces = split_window(w)
        assert len(pieces) == 3
        assert pieces[0].start == HOUR and pieces[0].end == DAY
        assert pieces[1].start == DAY and pieces[1].end == 2 * DAY
        assert pieces[2].start == 2 * DAY and pieces[2].end == 2 * DAY + HOUR

    def test_pieces_cover_exactly(self):
        w = TimeWindow(start=123.0, end=5 * DAY + 456.0)
        pieces = split_window(w)
        assert pieces[0].start == w.start
        assert pieces[-1].end == w.end
        for a, b in zip(pieces, pieces[1:]):
            assert a.end == b.start

    def test_unbounded_window_whole(self):
        w = TimeWindow(start=100.0)
        assert split_window(w) == [w]

    def test_custom_granularity(self):
        w = TimeWindow(start=0.0, end=4 * HOUR)
        pieces = split_window(w, granularity=HOUR)
        assert len(pieces) == 4

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            split_window(TimeWindow(start=0.0, end=1.0), granularity=0)


class TestScanSplit:
    def test_equals_plain_scan(self, enterprise):
        store = enterprise.store("partitioned")
        flt = EventFilter(
            agent_ids=frozenset({1, 3}),
            window=TimeWindow(start=APT_DAY - 2 * DAY, end=APT_DAY + DAY),
        )
        assert scan_split(store, flt) == store.scan(flt)

    def test_on_flat_store(self, enterprise):
        store = enterprise.store("flat")
        flt = EventFilter(
            window=TimeWindow(start=APT_DAY - DAY, end=APT_DAY + 2 * DAY),
        )
        assert scan_split(store, flt) == store.scan(flt)

    def test_single_piece_delegates(self, enterprise):
        store = enterprise.store("partitioned")
        flt = EventFilter(window=TimeWindow(start=APT_DAY, end=APT_DAY + HOUR))
        assert scan_split(store, flt) == store.scan(flt)
