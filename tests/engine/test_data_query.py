"""Data query narrowing tests (constrained execution, Sec. 5.2)."""

import pytest

from repro.engine.data_query import (
    DataQuery,
    attr_rel_narrowing,
    temp_rel_narrowing,
    values_of,
)
from repro.lang.context import FieldRef, ResolvedAttrRel, ResolvedTempRel
from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import Operation, SystemEvent
from tests.conftest import compile_text


def make_event(eid, subject_id, object_id, t):
    return SystemEvent(
        event_id=eid,
        agent_id=1,
        seq=eid,
        start_time=t,
        end_time=t,
        operation=Operation.READ,
        subject_id=subject_id,
        object_id=object_id,
        object_type=EntityType.FILE,
    )


@pytest.fixture()
def pattern():
    ctx = compile_text("proc p read file f\nreturn p")
    return ctx.patterns[0]


class TestNarrowing:
    def test_narrow_by_subject_ids(self, pattern):
        query = DataQuery.for_pattern(pattern)
        narrowed = query.narrowed_by_values(
            FieldRef(0, "subject", "id"), [5, 7]
        )
        assert narrowed.filter.subject_ids == frozenset({5, 7})

    def test_narrow_by_object_ids(self, pattern):
        query = DataQuery.for_pattern(pattern)
        narrowed = query.narrowed_by_values(FieldRef(0, "object", "id"), [3])
        assert narrowed.filter.object_ids == frozenset({3})

    def test_narrow_by_attribute_becomes_in_predicate(self, pattern):
        query = DataQuery.for_pattern(pattern)
        narrowed = query.narrowed_by_values(
            FieldRef(0, "object", "name"), ["/a", "/b"]
        )
        assert narrowed.filter.object_pred is not None

    def test_narrow_empty_values_yields_empty_filter(self, pattern):
        query = DataQuery.for_pattern(pattern)
        narrowed = query.narrowed_by_values(FieldRef(0, "subject", "id"), [])
        assert narrowed.filter.subject_ids == frozenset()

    def test_narrow_window(self, pattern):
        from repro.model.time import TimeWindow

        query = DataQuery.for_pattern(pattern)
        narrowed = query.narrowed_by_window(TimeWindow(start=100.0))
        assert narrowed.filter.window.start == 100.0

    def test_original_query_unchanged(self, pattern):
        query = DataQuery.for_pattern(pattern)
        query.narrowed_by_values(FieldRef(0, "subject", "id"), [1])
        assert query.filter.subject_ids is None


class TestValuesOf:
    def test_extracts_distinct(self):
        reg = EntityRegistry()
        p = reg.process(1, 1, "bash")
        f = reg.file(1, "/x")
        events = [make_event(1, p.id, f.id, 1.0), make_event(2, p.id, f.id, 2.0)]
        values = values_of(FieldRef(0, "subject", "exe_name"), events, reg.get)
        assert values == frozenset({"bash"})


class TestAttrRelNarrowing:
    def test_narrows_pending_side(self):
        reg = EntityRegistry()
        p = reg.process(1, 1, "bash")
        f = reg.file(1, "/x")
        events = [make_event(1, p.id, f.id, 1.0)]
        rel = ResolvedAttrRel(
            left=FieldRef(0, "object", "id"),
            op="=",
            right=FieldRef(1, "object", "id"),
        )
        ref, values = attr_rel_narrowing(rel, 0, events, reg.get)
        assert ref.pattern == 1
        assert values == frozenset({f.id})

    def test_non_equality_cannot_narrow(self):
        rel = ResolvedAttrRel(
            left=FieldRef(0, "object", "id"),
            op="!=",
            right=FieldRef(1, "object", "id"),
        )
        assert attr_rel_narrowing(rel, 0, [], lambda i: None) is None


class TestTempRelNarrowing:
    def executed(self, *times):
        return [make_event(i, 1, 2, t) for i, t in enumerate(times, 1)]

    def test_before_narrows_pending_right(self):
        rel = ResolvedTempRel(left=0, kind="before", right=1)
        window = temp_rel_narrowing(rel, 0, self.executed(100.0, 200.0))
        assert window.start == 100.0 and window.end is None

    def test_before_narrows_pending_left(self):
        rel = ResolvedTempRel(left=0, kind="before", right=1)
        window = temp_rel_narrowing(rel, 1, self.executed(100.0, 200.0))
        assert window.start is None and window.end == 200.0

    def test_after_flips(self):
        rel = ResolvedTempRel(left=0, kind="after", right=1)
        window = temp_rel_narrowing(rel, 0, self.executed(100.0))
        assert window.end == 100.0

    def test_bounds_applied(self):
        rel = ResolvedTempRel(left=0, kind="before", right=1, low=10.0, high=20.0)
        window = temp_rel_narrowing(rel, 0, self.executed(100.0))
        assert window.start == 110.0
        assert window.end == pytest.approx(120.0, abs=1e-3)

    def test_within_bounded(self):
        rel = ResolvedTempRel(left=0, kind="within", right=1, low=0.0, high=30.0)
        window = temp_rel_narrowing(rel, 0, self.executed(100.0))
        assert window.start == 70.0
        assert window.end == pytest.approx(130.0, abs=1e-3)

    def test_within_unbounded_is_none(self):
        rel = ResolvedTempRel(left=0, kind="within", right=1)
        assert temp_rel_narrowing(rel, 0, self.executed(100.0)) is None

    def test_empty_executed_gives_empty_window(self):
        rel = ResolvedTempRel(left=0, kind="before", right=1)
        window = temp_rel_narrowing(rel, 0, [])
        assert window.is_empty()

    def test_narrowing_is_sound(self):
        """Every pending event pairable with an executed one stays inside
        the narrowed window."""
        rel = ResolvedTempRel(left=0, kind="before", right=1, low=5.0, high=50.0)
        executed = self.executed(100.0, 140.0)
        window = temp_rel_narrowing(rel, 0, executed)
        for pending_t in [106.0, 120.0, 150.0, 189.9]:
            pending = make_event(99, 1, 2, pending_t)
            pairable = any(
                rel.check(e, pending) for e in executed
            )
            if pairable:
                assert window.contains(pending_t)
