"""Tests for the cardinality scoring extension (paper Sec. 7 proposal)."""

import pytest

from repro.engine.scheduler import (
    RelationshipScheduler,
    make_scheduler,
)
from repro.workload.corpus import CASE_STUDY_QUERIES, PERFORMANCE_QUERIES
from tests.conftest import compile_text

NON_ANOMALY = [
    q for q in CASE_STUDY_QUERIES + PERFORMANCE_QUERIES if q.kind != "anomaly"
]


def rows_as_set(tuples):
    return {tuple(e.event_id for e in row) for row in tuples.rows}


class TestEquivalence:
    @pytest.mark.parametrize("query", NON_ANOMALY, ids=lambda q: q.qid)
    def test_cardinality_model_same_results(self, store, query):
        ctx = compile_text(query.text)
        default = RelationshipScheduler(store).run(ctx)
        statistical = RelationshipScheduler(
            store, score_model="cardinality"
        ).run(ctx)
        assert rows_as_set(default) == rows_as_set(statistical)


class TestScoring:
    def test_estimates_reflect_selectivity(self, store):
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p1["%sbblv.exe"] read file f1 as e1\n'
            "proc p2 read file f2 as e2\n"
            "with f1 = f2\nreturn p1, f1"
        )
        scheduler = RelationshipScheduler(store, score_model="cardinality")
        selective = scheduler._estimated_rows(ctx.patterns[0])
        unselective = scheduler._estimated_rows(ctx.patterns[1])
        assert selective < unselective

    def test_unservable_pattern_estimated_at_store_size(self, store):
        ctx = compile_text("proc p read file f\nreturn p")
        scheduler = RelationshipScheduler(store, score_model="cardinality")
        assert scheduler._estimated_rows(ctx.patterns[0]) == len(store)

    def test_d3_fetches_no_more_than_constraint_model(self, store):
        """The statistical model should fix (or at least not worsen) the
        d3 misprediction documented in EXPERIMENTS.md."""
        from repro.workload.corpus import by_id

        ctx = compile_text(by_id("d3").text)
        default = RelationshipScheduler(store)
        default.run(ctx)
        statistical = RelationshipScheduler(store, score_model="cardinality")
        statistical.run(ctx)
        assert (
            statistical.stats.events_fetched <= default.stats.events_fetched
        )

    def test_invalid_model_rejected(self, store):
        with pytest.raises(ValueError, match="score model"):
            RelationshipScheduler(store, score_model="vibes")

    def test_factory_knows_cardinality(self, store):
        scheduler = make_scheduler("relationship_cardinality", store)
        assert isinstance(scheduler, RelationshipScheduler)
        assert scheduler.score_model == "cardinality"
