"""Anomaly executor tests: sliding windows, history, moving averages."""

import pytest

from repro.engine.anomaly import AnomalyExecutor
from repro.lang.errors import AIQLSemanticError
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.workload.topology import BASE_DAY
from tests.conftest import compile_text


@pytest.fixture()
def spike_store():
    """A store with steady beaconing then a burst (SMA3-detectable)."""
    ingestor = Ingestor()
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    beacon = ingestor.process(1, 100, "beacon")
    sink = ingestor.connection(1, "10.0.0.1", 5000, "203.0.113.9", 443)
    t = BASE_DAY
    for k in range(30):
        ingestor.emit(1, t + k * 20, "write", beacon, sink, amount=1000)
    for k in range(3):
        ingestor.emit(1, t + 620 + k * 10, "write", beacon, sink, amount=900000)
    return store


SPIKE_QUERY = """
(at "01/01/2017")
agentid = 1
window = 1 min, step = 10 sec
proc p write ip i[dstip = "203.0.113.9"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
"""


class TestSpikeDetection:
    def test_spike_detected(self, spike_store):
        result = AnomalyExecutor(spike_store).run(compile_text(SPIKE_QUERY))
        assert len(result) >= 1
        assert all(row[0] == "beacon" for row in result.rows)
        assert result.columns == ("p", "amt", "window_start")

    def test_no_spike_no_alert(self, spike_store):
        flat = compile_text(SPIKE_QUERY.replace("2 *", "900 *"))
        assert len(AnomalyExecutor(spike_store).run(flat)) == 0

    def test_window_metadata(self, spike_store):
        result = AnomalyExecutor(spike_store).run(compile_text(SPIKE_QUERY))
        assert result.meta["window_seconds"] == 60.0
        assert result.meta["step_seconds"] == 10.0
        assert result.meta["windows"] > 1000  # a day of 10s steps

    def test_early_windows_skipped_for_history(self, spike_store):
        """Windows earlier than the deepest history index never alert."""
        result = AnomalyExecutor(spike_store).run(compile_text(SPIKE_QUERY))
        starts = result.column("window_start")
        assert min(starts) >= "2017-01-01 00:00:20"

    def test_ewma_variant(self, spike_store):
        query = SPIKE_QUERY.replace(
            "having (amt > 2 * (amt + amt[1] + amt[2]) / 3)",
            "having (amt - EWMA(amt, 0.9)) / EWMA(amt, 0.9) > 0.2",
        )
        result = AnomalyExecutor(spike_store).run(compile_text(query))
        assert len(result) >= 1

    def test_count_distinct_frequency(self, spike_store):
        query = """
        (at "01/01/2017")
        agentid = 1
        window = 5 min, step = 1 min
        proc p write ip i as evt
        return p, count(distinct i) as freq
        group by p
        having freq > 0
        """
        result = AnomalyExecutor(spike_store).run(compile_text(query))
        assert len(result) >= 1
        assert all(row[1] == 1.0 for row in result.rows)  # one distinct sink


class TestValidation:
    def test_requires_anomaly_context(self, spike_store):
        ctx = compile_text("proc p read file f\nreturn p")
        with pytest.raises(AIQLSemanticError, match="anomaly"):
            AnomalyExecutor(spike_store).run(ctx)

    def test_requires_aggregate(self, spike_store):
        ctx = compile_text(
            '(at "01/01/2017")\nwindow = 1 min, step = 10 sec\n'
            "proc p write ip i\nreturn p"
        )
        with pytest.raises(AIQLSemanticError, match="aggregate"):
            AnomalyExecutor(spike_store).run(ctx)


class TestSlidingSemantics:
    def test_history_aligned_per_group(self):
        """Two groups alert independently; quiet group never alerts."""
        ingestor = Ingestor()
        store = FlatStore(registry=ingestor.registry)
        ingestor.attach(store)
        loud = ingestor.process(1, 1, "loud")
        quiet = ingestor.process(1, 2, "quiet")
        sink = ingestor.connection(1, "10.0.0.1", 1, "203.0.113.9", 443)
        t = BASE_DAY
        for k in range(30):
            ingestor.emit(1, t + k * 20, "write", loud, sink, amount=1000)
            ingestor.emit(1, t + k * 20 + 1, "write", quiet, sink, amount=1000)
        for k in range(3):
            ingestor.emit(1, t + 620 + k * 10, "write", loud, sink,
                          amount=900000)
        result = AnomalyExecutor(store).run(compile_text(SPIKE_QUERY))
        procs = {row[0] for row in result.rows}
        assert procs == {"loud"}
