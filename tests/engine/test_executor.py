"""Executor tests: return-clause evaluation on live data."""

import pytest

from repro.engine.executor import MultieventExecutor
from repro.lang.errors import AIQLSemanticError
from tests.conftest import compile_text


@pytest.fixture(scope="module")
def executor(enterprise):
    return MultieventExecutor(enterprise.store("partitioned"))


class TestProjection:
    def test_plain_columns(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1\n'
                "return p1, p2"
            )
        )
        assert result.columns == ("p1", "p2")
        assert ("cmd.exe", "osql.exe") in set(result.rows)

    def test_entity_attribute_projection(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%sbblv.exe"] write ip i1 as e1\n'
                "return distinct p1.user, i1.dst_port"
            )
        )
        assert result.columns == ("p1.user", "i1.dst_port")
        assert all(isinstance(r[1], int) for r in result.rows)

    def test_event_attribute_projection(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%sbblv.exe"] read file f1["%backup1.dmp"] as e1\n'
                "return p1, e1.optype, e1.amount"
            )
        )
        assert result.rows[0][1] == "read"
        assert result.rows[0][2] > 0

    def test_distinct(self, executor):
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p1["%sbblv.exe"] write ip i1[dstip = "203.0.113.129"] as e1\n'
            "return distinct p1, i1"
        )
        result = executor.run(ctx)
        assert len(result) == 1  # many exfil writes, one distinct pair

    def test_count(self, executor):
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p1["%sbblv.exe"] write ip i1[dstip = "203.0.113.129"] as e1\n'
            "return count p1"
        )
        result = executor.run(ctx)
        assert result.columns == ("count",)
        assert result.rows[0][0] == 24  # 18 beacons + 6 burst writes

    def test_sort_and_top(self, executor):
        ctx = compile_text(
            'agentid = 1\n(at "01/05/2017")\n'
            "proc p1 start proc p2 as e1\n"
            "return distinct p1, p2\nsort by p2 desc\ntop 3"
        )
        result = executor.run(ctx)
        assert len(result) == 3
        col = [r[1] for r in result.rows]
        assert col == sorted(col, reverse=True)


class TestAggregation:
    def test_group_by_count_distinct(self, executor):
        ctx = compile_text(
            'agentid = 11\n(at "01/06/2017")\n'
            "proc p connect ip i\n"
            "return p, count(distinct i) as freq\ngroup by p\n"
            "having freq > 20"
        )
        result = executor.run(ctx)
        assert ("nmap", 40) in set(result.rows)

    def test_sum_avg_min_max(self, executor):
        base = (
            'agentid = 3\n(at "01/05/2017")\n'
            'proc p["%sbblv.exe"] write ip i[dstip = "203.0.113.129"] as e\n'
        )
        sums = executor.run(compile_text(base + "return p, sum(e.amount) as s\ngroup by p"))
        avgs = executor.run(compile_text(base + "return p, avg(e.amount) as a\ngroup by p"))
        mins = executor.run(compile_text(base + "return p, min(e.amount) as lo\ngroup by p"))
        maxs = executor.run(compile_text(base + "return p, max(e.amount) as hi\ngroup by p"))
        total = sums.rows[0][1]
        assert total == 18 * 4096 + 6 * 13107200
        assert avgs.rows[0][1] == pytest.approx(total / 24)
        assert mins.rows[0][1] == 4096
        assert maxs.rows[0][1] == 13107200

    def test_aggregate_without_group_by_uses_plain_items(self, executor):
        # non-aggregate return items act as implicit group keys
        ctx = compile_text(
            'agentid = 3\n(at "01/05/2017")\n'
            "proc p write ip i\nreturn p, count(i) as n"
        )
        result = executor.run(ctx)
        assert len(result) >= 1
        labels = dict(zip(result.columns, result.rows[0]))
        assert labels["n"] >= 1

    def test_having_filters_groups(self, executor):
        ctx = compile_text(
            'agentid = 11\n(at "01/06/2017")\n'
            "proc p connect ip i\n"
            "return p, count(distinct i) as freq\ngroup by p\n"
            "having freq > 1000"
        )
        assert len(executor.run(ctx)) == 0


class TestErrors:
    def test_anomaly_rejected(self, executor):
        ctx = compile_text(
            '(at "01/06/2017")\nwindow = 1 min, step = 10 sec\n'
            "proc p read file f\nreturn p, count(f) as n\ngroup by p"
        )
        with pytest.raises(AIQLSemanticError, match="anomaly"):
            executor.run(ctx)


class TestResultSet:
    def test_to_text_renders(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%cmd.exe"] start proc p2 as e1\nreturn distinct p1, p2'
            )
        )
        text = result.to_text()
        assert "p1" in text and "cmd.exe" in text

    def test_column_accessor(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%cmd.exe"] start proc p2 as e1\nreturn distinct p1, p2'
            )
        )
        assert "osql.exe" in result.column("p2")
        with pytest.raises(KeyError):
            result.column("zz")

    def test_dicts(self, executor):
        result = executor.run(
            compile_text(
                'agentid = 3\n(at "01/05/2017")\n'
                'proc p1["%cmd.exe"] start proc p2["%osql%"] as e1\n'
                "return distinct p1, p2"
            )
        )
        assert result.dicts()[0] == {"p1": "cmd.exe", "p2": "osql.exe"}
