"""ResultSet unit tests."""

import pytest

from repro.engine.result import ResultSet


@pytest.fixture()
def rs():
    return ResultSet(
        columns=("name", "count"),
        rows=[("beta", 2), ("alpha", 10), ("alpha", 2), ("gamma", None)],
    )


class TestAccessors:
    def test_len_bool_iter(self, rs):
        assert len(rs) == 4
        assert rs
        assert not ResultSet(columns=("x",), rows=[])
        assert list(iter(rs))[0] == ("beta", 2)

    def test_column(self, rs):
        assert rs.column("name") == ["beta", "alpha", "alpha", "gamma"]
        with pytest.raises(KeyError):
            rs.column("missing")

    def test_dicts(self, rs):
        assert rs.dicts()[0] == {"name": "beta", "count": 2}


class TestManipulation:
    def test_distinct(self):
        rs = ResultSet(columns=("a",), rows=[(1,), (1,), (2,)])
        assert rs.distinct().rows == [(1,), (2,)]

    def test_distinct_preserves_first_occurrence_order(self):
        rs = ResultSet(columns=("a",), rows=[(2,), (1,), (2,)])
        assert rs.distinct().rows == [(2,), (1,)]

    def test_sorted_by_single(self, rs):
        out = rs.sorted_by(["name"])
        assert [r[0] for r in out.rows] == ["alpha", "alpha", "beta", "gamma"]

    def test_sorted_by_descending(self, rs):
        out = rs.sorted_by(["count"], descending=True)
        # None sorts first ascending -> last when reversed? _sort_key tags
        # None lowest, so descending puts it last.
        assert out.rows[0][1] == 10
        assert out.rows[-1][1] is None

    def test_sorted_by_multiple(self, rs):
        out = rs.sorted_by(["name", "count"])
        assert out.rows[0] == ("alpha", 2)
        assert out.rows[1] == ("alpha", 10)

    def test_sorted_mixed_types_deterministic(self):
        rs = ResultSet(columns=("v",), rows=[("b",), (2,), (None,), (1,)])
        out = rs.sorted_by(["v"])
        assert out.rows == [(None,), (1,), (2,), ("b",)]

    def test_sorted_unknown_column(self, rs):
        with pytest.raises(KeyError):
            rs.sorted_by(["zz"])

    def test_head(self, rs):
        assert len(rs.head(2)) == 2
        assert len(rs.head(99)) == 4

    def test_operations_keep_meta(self, rs):
        rs.meta["k"] = "v"
        assert rs.distinct().meta == {"k": "v"}
        assert rs.sorted_by(["name"]).meta == {"k": "v"}
        assert rs.head(1).meta == {"k": "v"}


class TestRendering:
    def test_to_text_aligned(self, rs):
        text = rs.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "count" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in text

    def test_to_text_none_rendered_empty(self, rs):
        assert "None" not in rs.to_text()

    def test_to_text_truncation(self):
        rs = ResultSet(columns=("a",), rows=[(i,) for i in range(100)])
        text = rs.to_text(max_rows=5)
        assert "(95 more rows)" in text
