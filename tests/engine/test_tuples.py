"""Unit tests for tuple-set joins (Algorithm 1's M-map values)."""

import pytest

from repro.engine.tuples import TupleSet
from repro.lang.context import FieldRef, ResolvedAttrRel, ResolvedTempRel
from repro.model.entities import EntityRegistry, EntityType
from repro.model.events import Operation, SystemEvent


def make_event(eid, subject_id, object_id, t, op=Operation.READ,
               object_type=EntityType.FILE):
    return SystemEvent(
        event_id=eid,
        agent_id=1,
        seq=eid,
        start_time=t,
        end_time=t,
        operation=op,
        subject_id=subject_id,
        object_id=object_id,
        object_type=object_type,
    )


@pytest.fixture()
def registry():
    reg = EntityRegistry()
    reg.process(1, 10, "bash")  # id 1
    reg.process(1, 11, "vim")  # id 2
    reg.file(1, "/a")  # id 3
    reg.file(1, "/b")  # id 4
    return reg


class TestTupleSetBasics:
    def test_from_events(self):
        ts = TupleSet.from_events(0, [make_event(1, 1, 3, 10.0)])
        assert ts.patterns == (0,)
        assert len(ts) == 1

    def test_events_of_deduplicates(self, registry):
        e1 = make_event(1, 1, 3, 10.0)
        e2 = make_event(2, 1, 4, 20.0)
        ts = TupleSet(patterns=(0, 1), rows=[(e1, e2), (e1, e2)])
        assert len(ts.events_of(0)) == 1

    def test_column_of_unknown(self):
        ts = TupleSet.from_events(0, [])
        with pytest.raises(KeyError):
            ts.column_of(5)


class TestJoins:
    def test_hash_join_on_equality(self, registry):
        # pattern 0 events object -> file; pattern 1 events subject -> proc
        a1 = make_event(1, 1, 3, 10.0)
        a2 = make_event(2, 1, 4, 11.0)
        b1 = make_event(3, 2, 3, 20.0)  # object id 3 matches a1
        left = TupleSet.from_events(0, [a1, a2])
        right = TupleSet.from_events(1, [b1])
        rel = ResolvedAttrRel(
            left=FieldRef(0, "object", "id"),
            op="=",
            right=FieldRef(1, "object", "id"),
        )
        joined = left.join(right, [rel], [], registry.get)
        assert joined.patterns == (0, 1)
        assert len(joined) == 1
        assert joined.rows[0] == (a1, b1)

    def test_nested_loop_with_temporal_only(self, registry):
        a = make_event(1, 1, 3, 10.0)
        b = make_event(2, 2, 4, 20.0)
        c = make_event(3, 2, 4, 5.0)
        rel = ResolvedTempRel(left=0, kind="before", right=1)
        joined = TupleSet.from_events(0, [a]).join(
            TupleSet.from_events(1, [b, c]), [], [rel], registry.get
        )
        assert len(joined) == 1
        assert joined.rows[0] == (a, b)

    def test_join_requires_disjoint(self, registry):
        ts = TupleSet.from_events(0, [make_event(1, 1, 3, 1.0)])
        with pytest.raises(ValueError):
            ts.join(ts, [], [], registry.get)

    def test_string_join_keys_case_insensitive(self, registry):
        reg = EntityRegistry()
        p1 = reg.process(1, 1, "CMD.EXE")
        p2 = reg.process(2, 2, "cmd.exe")
        a = make_event(1, p1.id, p1.id, 1.0, Operation.START, EntityType.PROCESS)
        b = make_event(2, p2.id, p2.id, 2.0, Operation.START, EntityType.PROCESS)
        rel = ResolvedAttrRel(
            left=FieldRef(0, "subject", "exe_name"),
            op="=",
            right=FieldRef(1, "subject", "exe_name"),
        )
        joined = TupleSet.from_events(0, [a]).join(
            TupleSet.from_events(1, [b]), [rel], [], reg.get
        )
        assert len(joined) == 1

    def test_cross_product(self, registry):
        a = TupleSet.from_events(0, [make_event(1, 1, 3, 1.0)])
        b = TupleSet.from_events(
            1, [make_event(2, 2, 4, 2.0), make_event(3, 2, 4, 3.0)]
        )
        assert len(a.cross(b)) == 2


class TestFilter:
    def test_temporal_filter(self, registry):
        a = make_event(1, 1, 3, 10.0)
        b = make_event(2, 2, 4, 5.0)
        ts = TupleSet(patterns=(0, 1), rows=[(a, b)])
        rel = ResolvedTempRel(left=0, kind="before", right=1)
        assert len(ts.filter([], [rel], registry.get)) == 0
        rel = ResolvedTempRel(left=0, kind="after", right=1)
        assert len(ts.filter([], [rel], registry.get)) == 1

    def test_temporal_bounds(self, registry):
        a = make_event(1, 1, 3, 0.0)
        b = make_event(2, 2, 4, 90.0)
        ts = TupleSet(patterns=(0, 1), rows=[(a, b)])
        within = ResolvedTempRel(left=0, kind="before", right=1, low=60.0, high=120.0)
        assert len(ts.filter([], [within], registry.get)) == 1
        tight = ResolvedTempRel(left=0, kind="before", right=1, low=100.0, high=120.0)
        assert len(ts.filter([], [tight], registry.get)) == 0

    def test_within_is_symmetric(self, registry):
        a = make_event(1, 1, 3, 100.0)
        b = make_event(2, 2, 4, 40.0)
        ts = TupleSet(patterns=(0, 1), rows=[(a, b)])
        rel = ResolvedTempRel(left=0, kind="within", right=1, low=0.0, high=70.0)
        assert len(ts.filter([], [rel], registry.get)) == 1

    def test_attr_filter_inequality(self, registry):
        a = make_event(1, 1, 3, 10.0)
        b = make_event(2, 1, 4, 20.0)
        ts = TupleSet(patterns=(0, 1), rows=[(a, b)])
        rel = ResolvedAttrRel(
            left=FieldRef(0, "object", "id"),
            op="!=",
            right=FieldRef(1, "object", "id"),
        )
        assert len(ts.filter([rel], [], registry.get)) == 1
