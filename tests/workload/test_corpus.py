"""Corpus structure tests: Table 3 counts and query well-formedness."""

import pytest

from repro.lang.parser import parse
from repro.workload.corpus import (
    ALL_QUERIES,
    CASE_STUDY_QUERIES,
    CASE_STUDY_WITH_ANOMALY,
    CONCISENESS_QUERY_IDS,
    PERFORMANCE_QUERIES,
    by_id,
    pattern_counts,
)
from tests.conftest import compile_text


class TestTable3Counts:
    """Sec. 6.2: 26 multievent queries + 1 anomaly query; per-step query
    and event-pattern counts match Table 3."""

    def test_twenty_six_plus_one(self):
        assert len(CASE_STUDY_QUERIES) == 26
        assert len(CASE_STUDY_WITH_ANOMALY) == 27

    @pytest.mark.parametrize(
        "step,queries,patterns",
        [("c1", 1, 3), ("c2", 8, 27), ("c3", 2, 4), ("c4", 8, 35), ("c5", 7, 18)],
    )
    def test_per_step_counts(self, step, queries, patterns):
        assert pattern_counts()[step] == (queries, patterns)

    def test_total_patterns_is_87(self):
        assert sum(v[1] for v in pattern_counts().values()) == 87

    def test_c48_is_seven_patterns(self):
        """Sec. 6.2.2: 'The largest AIQL query is c4-8 with 7 event
        patterns'."""
        q = parse(by_id("c4-8").text)
        assert len(q.patterns) == 7
        assert max(
            len(parse(query.text).patterns) for query in CASE_STUDY_QUERIES
        ) == 7


class TestPerformanceCorpus:
    def test_nineteen_queries(self):
        assert len(PERFORMANCE_QUERIES) == 19

    def test_behavior_groups(self):
        groups = [q.group for q in PERFORMANCE_QUERIES]
        assert groups.count("a") == 5
        assert groups.count("d") == 3
        assert groups.count("v") == 5
        assert groups.count("s") == 6

    def test_dependency_queries_are_dependencies(self):
        from repro.lang.ast import DependencyQuery

        for qid in ("d1", "d2", "d3"):
            assert isinstance(parse(by_id(qid).text), DependencyQuery)

    def test_s5_s6_are_anomalies_and_excluded_from_conciseness(self):
        assert by_id("s5").kind == "anomaly"
        assert by_id("s6").kind == "anomaly"
        assert "s5" not in CONCISENESS_QUERY_IDS
        assert "s6" not in CONCISENESS_QUERY_IDS
        assert len(CONCISENESS_QUERY_IDS) == 17


class TestWellFormedness:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_parses_and_compiles(self, query):
        ctx = compile_text(query.text)
        assert ctx.kind in ("multievent", "anomaly")

    def test_by_id_unknown(self):
        with pytest.raises(KeyError):
            by_id("zz-99")

    def test_qids_unique(self):
        qids = [q.qid for q in ALL_QUERIES]
        assert len(qids) == len(set(qids))
