"""Background generator tests: determinism, volume, realism."""

from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import BASE_DAY, HOSTS


def generate(seed=1, days=2, rate=50, hosts=HOSTS[:4]):
    ingestor = Ingestor()
    store = FlatStore(registry=ingestor.registry)
    ingestor.attach(store)
    config = GeneratorConfig(
        seed=seed, hosts=hosts, days=days, events_per_host_day=rate
    )
    BackgroundGenerator(ingestor, config).run()
    return store


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = generate(seed=42)
        b = generate(seed=42)
        sig_a = [(e.agent_id, e.start_time, e.operation) for e in a]
        sig_b = [(e.agent_id, e.start_time, e.operation) for e in b]
        assert sig_a == sig_b

    def test_different_seed_different_stream(self):
        a = generate(seed=1)
        b = generate(seed=2)
        sig_a = [(e.agent_id, e.start_time) for e in a]
        sig_b = [(e.agent_id, e.start_time) for e in b]
        assert sig_a != sig_b


class TestVolumeAndShape:
    def test_rate_approximately_honored(self):
        store = generate(days=2, rate=100, hosts=HOSTS[:4])
        per_host_day = len(store) / (2 * 4)
        assert 50 <= per_host_day <= 130

    def test_every_host_produces_events(self):
        store = generate()
        agents = {e.agent_id for e in store}
        assert agents == {h.agent_id for h in HOSTS[:4]}

    def test_events_inside_simulation_window(self):
        store = generate(days=2)
        for event in store:
            assert BASE_DAY <= event.start_time < BASE_DAY + 2 * 86400

    def test_file_events_dominate(self):
        """Real monitoring data is file-heavy — the premise behind the
        scheduler's process/network-before-file relationship ordering."""
        store = generate(days=2, rate=200)
        from repro.model.events import EventType

        counts = {t: 0 for t in EventType}
        for event in store:
            counts[event.event_type] += 1
        assert counts[EventType.FILE] > counts[EventType.PROCESS]
        assert counts[EventType.FILE] > counts[EventType.NETWORK]

    def test_sequence_monotone_per_agent(self):
        store = generate()
        last = {}
        for event in store:
            assert event.seq > last.get(event.agent_id, 0)
            last[event.agent_id] = event.seq

    def test_role_specific_activity(self):
        """Servers emit their role processes (apache/sqlservr/postfix)."""
        store = generate(days=3, rate=300, hosts=HOSTS[:5])
        reg = store.registry
        exes = {
            reg.get(e.subject_id).exe_name for e in store
        }
        assert "apache2" in exes
        assert "sqlservr.exe" in exes
        assert "postfix" in exes
