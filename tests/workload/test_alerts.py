"""AlertReplay: detection scoring against the APT ground truth."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.workload.alerts import WATCH_QUERIES, AlertReplay


@pytest.fixture(scope="module")
def score():
    system = AIQLSystem(SystemConfig())
    return AlertReplay(system, events_per_host_day=40).run()


class TestAlertReplay:
    def test_every_ground_truth_step_detected(self, score):
        assert score.missed == ()
        assert set(score.detections) == {q.name for q in WATCH_QUERIES}

    def test_detection_alerts_reference_the_attack(self, score):
        for query in WATCH_QUERIES:
            detection = score.detections[query.name]
            assert detection.step == query.step
            assert detection.alert.query == query.name
            assert detection.alert.latency_s is not None

    def test_latencies_recorded_for_every_alert(self, score):
        assert score.alerts > 0
        assert len(score.latencies_ms) == score.alerts
        assert score.p99_ms is not None
        assert score.p50_ms <= score.p99_ms

    def test_replay_stats(self, score):
        assert score.events > 0
        assert score.batches >= 1
        assert score.events_per_s > 0

    def test_to_dict_roundtrips_json(self, score):
        import json

        payload = json.loads(json.dumps(score.to_dict()))
        assert payload["missed"] == []
        assert payload["detections"]["credential-dump"]["step"] == "c3"

    def test_subscriptions_released_after_run(self, score):
        # module fixture ran one replay; a fresh system runs another two
        # back to back — names must not collide if cleanup worked.
        system = AIQLSystem(SystemConfig())
        AlertReplay(system, events_per_host_day=10).run()
        AlertReplay(system, events_per_host_day=10).run()
        assert system.continuous.subscriptions == ()


class TestPacing:
    def test_paced_replay_respects_rate_param(self):
        system = AIQLSystem(SystemConfig())
        # tiny workload, generous rate: just exercises the paced path
        score = AlertReplay(
            system, events_per_host_day=2, rate=50_000.0
        ).run()
        assert score.missed == ()

    def test_negative_rate_rejected(self):
        system = AIQLSystem(SystemConfig())
        with pytest.raises(ValueError):
            AlertReplay(system, rate=-1.0)

    def test_percentile_of_empty_latencies_is_none(self):
        from repro.workload.alerts import AlertScore

        empty = AlertScore(
            events=0,
            batches=0,
            wall_s=0.0,
            alerts=0,
            detections={},
            missed=(),
            latencies_ms=[],
        )
        assert empty.p99_ms is None
        assert empty.events_per_s == 0.0
