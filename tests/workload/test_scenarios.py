"""Scenario injection ground-truth tests."""

from repro.model.time import DAY, TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateLeaf,
)
from repro.workload.topology import (
    APT2_DAY,
    APT_DAY,
    ABNORMAL_DAY,
    ATTACKER_IP,
    DEPENDENCY_DAY,
    MALWARE_DAY,
)


def scan_exe(store, agent, day, exe, op=None):
    flt = EventFilter(
        agent_ids=frozenset({agent}),
        window=TimeWindow(day, day + DAY),
        subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", exe)),
    )
    events = store.scan(flt)
    if op:
        events = [e for e in events if e.operation.value == op]
    return events


class TestAptCaseStudy:
    def test_c1_outlook_writes_attachment(self, store):
        events = scan_exe(store, 1, APT_DAY, "outlook.exe", "write")
        names = {store.registry.get(e.object_id).name for e in events}
        assert any("quarterly_report" in n for n in names)

    def test_c2_excel_starts_payload(self, store):
        events = scan_exe(store, 1, APT_DAY, "excel.exe", "start")
        children = {store.registry.get(e.object_id).exe_name for e in events}
        assert "payload.exe" in children

    def test_c3_gsecdump_reads_sam(self, store):
        events = scan_exe(store, 1, APT_DAY, "gsecdump.exe", "read")
        names = {store.registry.get(e.object_id).name for e in events}
        assert any("SAM" in n for n in names)

    def test_c4_wscript_drops_sbblv(self, store):
        events = scan_exe(store, 3, APT_DAY, "wscript.exe", "write")
        names = {store.registry.get(e.object_id).name for e in events}
        assert any("sbblv.exe" in n for n in names)

    def test_c5_exfiltration_to_attacker(self, store):
        events = scan_exe(store, 3, APT_DAY, "sbblv.exe", "write")
        ips = {
            store.registry.get(e.object_id).attribute("dst_ip")
            for e in events
            if e.object_type.value == "ip"
        }
        assert ATTACKER_IP in ips

    def test_c5_burst_amount_exceeds_beacons(self, store):
        events = scan_exe(store, 3, APT_DAY, "sbblv.exe", "write")
        amounts = sorted(e.amount for e in events if e.object_type.value == "ip")
        assert amounts[-1] > 100 * amounts[0]

    def test_attack_confined_to_attack_day(self, store):
        """sbblv.exe must not appear on other days (no ground-truth leak)."""
        for day in (APT_DAY - DAY, APT_DAY + DAY):
            assert not scan_exe(store, 3, day, "sbblv.exe")


class TestApt2:
    def test_a1_download(self, store):
        events = scan_exe(store, 5, APT2_DAY, "firefox", "write")
        names = {store.registry.get(e.object_id).name for e in events}
        assert any("flash_update" in n for n in names)

    def test_a4_shadow_read(self, store):
        events = scan_exe(store, 4, APT2_DAY, "sh", "read")
        names = {store.registry.get(e.object_id).name for e in events}
        assert "/etc/shadow" in names


class TestDependencyScenarios:
    def test_d3_cross_host_flow_same_tuple(self, store):
        """Both hosts record the info_stealer flow with identical
        (dst_ip, dst_port) — the correlation key of dependency rewriting."""
        reg = store.registry
        web_events = scan_exe(store, 4, DEPENDENCY_DAY, "apache2", "send")
        dev_events = scan_exe(store, 5, DEPENDENCY_DAY, "wget", "recv")
        web_tuples = {
            (reg.get(e.object_id).dst_ip, reg.get(e.object_id).dst_port)
            for e in web_events
        }
        dev_tuples = {
            (reg.get(e.object_id).dst_ip, reg.get(e.object_id).dst_port)
            for e in dev_events
        }
        assert web_tuples & dev_tuples


class TestMalwareScenarios:
    def test_all_five_samples_present(self, store, enterprise):
        from repro.workload.behaviors import MALWARE_SAMPLES

        for _vid, name, _cat, agent in MALWARE_SAMPLES:
            events = scan_exe(store, agent, MALWARE_DAY, f"{name}.exe")
            assert events, f"sample {name} missing on agent {agent}"

    def test_categories_behave_differently(self, store):
        # Hooker writes keys.log; Autorun writes autorun.inf
        hooker = scan_exe(store, 11, MALWARE_DAY,
                          "425327783e88bb6492753849bc43b7a0.exe", "write")
        names = {store.registry.get(e.object_id).name for e in hooker
                 if e.object_type.value == "file"}
        assert any("keys.log" in n for n in names)
        autorun = scan_exe(store, 12, MALWARE_DAY,
                           "ee111901739531d6963ab1ee3ecaf280.exe", "write")
        names = {store.registry.get(e.object_id).name for e in autorun}
        assert any("autorun.inf" in n for n in names)


class TestAbnormalScenarios:
    def test_s3_forty_distinct_ips(self, store):
        events = scan_exe(store, 11, ABNORMAL_DAY, "nmap", "connect")
        ips = {store.registry.get(e.object_id).dst_ip for e in events}
        assert len(ips) == 40

    def test_s4_delete_after_write(self, store):
        writes = scan_exe(store, 12, ABNORMAL_DAY, "shred", "write")
        deletes = scan_exe(store, 12, ABNORMAL_DAY, "shred", "delete")
        assert writes and deletes
        written = {e.object_id for e in writes}
        deleted = {e.object_id for e in deletes}
        assert written & deleted
