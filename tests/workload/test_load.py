"""Open-loop load client: percentiles, CO-free fleet, alert listener."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.workload.load import AlertListener, percentile, run_fleet_sync

QUERY = "agentid = 1\nproc p1 start proc p2\nreturn p1, p2"
WATCH = "proc p1 write file f1 as evt1\nreturn p1, f1"


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.999) == 7.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(100)]
        assert percentile(samples, 0.0) == 0.0
        assert percentile(samples, 0.5) == 50.0
        assert percentile(samples, 0.99) == 99.0

    def test_never_reads_past_the_end(self):
        assert percentile([1.0, 2.0], 0.999) == 2.0


@pytest.fixture(scope="module")
def served():
    system = AIQLSystem(SystemConfig())
    session = system.stream(batch_size=16)
    proc = session.process(1, 100, "bash")
    child = session.process(1, 101, "ls")
    target = session.file(1, "/data/x")
    for i in range(16):
        session.append(1, 1e9 + 2 * i, "start", proc, child)
        session.append(1, 1e9 + 2 * i + 1, "read", child, target)
    session.commit()
    handle = system.serve(port=0).start_background()
    yield system, handle
    handle.stop()
    system.close()


class TestRunFleet:
    def test_small_fleet_round_trips(self, served):
        _, handle = served
        report = run_fleet_sync(
            handle.host, handle.port, rate=40, duration_s=1.5,
            queries=[QUERY], clients=4,
        )
        assert report.scheduled > 0
        assert report.completed == report.scheduled
        assert report.errors == 0 and report.rejected == 0
        assert report.ok == report.completed
        assert report.rows > 0  # the seeded start edges came back
        assert len(report.latencies_ms) == report.ok
        assert report.quantiles_ms()["p99"] > 0

    def test_report_dict_shape(self, served):
        _, handle = served
        report = run_fleet_sync(
            handle.host, handle.port, rate=20, duration_s=1.0,
            queries=[QUERY], clients=2,
        )
        payload = report.to_dict()
        for key in ("target_rate", "achieved_rate", "ok_rate", "scheduled",
                    "ok", "rejected", "errors", "rows", "latency_ms"):
            assert key in payload
        assert set(payload["latency_ms"]) == {"p50", "p90", "p99", "p999", "max"}

    def test_validation(self, served):
        _, handle = served
        with pytest.raises(ValueError):
            run_fleet_sync(handle.host, handle.port, rate=0,
                           duration_s=1, queries=[QUERY])
        with pytest.raises(ValueError):
            run_fleet_sync(handle.host, handle.port, rate=10,
                           duration_s=1, queries=[])
        with pytest.raises(ValueError):
            run_fleet_sync(handle.host, handle.port, rate=10,
                           duration_s=1, queries=[QUERY], clients=0)


class TestAlertListener:
    def test_receives_alerts_for_matching_commits(self, served):
        system, handle = served
        listener = AlertListener(
            handle.host, handle.port, WATCH, name="load-test-watch",
            window_s=1e12,
        ).start()
        assert listener.ack is not None
        assert listener.ack.name == "load-test-watch"

        session = system.stream(batch_size=4)
        proc = session.process(1, 500, "dropper")
        target = session.file(1, "/tmp/payload")
        for i in range(4):
            session.append(1, 2e9 + i, "write", proc, target)
        session.commit()

        import time

        deadline = time.time() + 15
        while time.time() < deadline and not listener.alerts:
            time.sleep(0.05)
        alerts = listener.stop()
        assert alerts, "no alerts pushed for matching commits"
        assert all(a.subscription == "load-test-watch" for a in alerts)

    def test_start_raises_on_bad_subscription(self, served):
        _, handle = served
        listener = AlertListener(handle.host, handle.port, "proc p1 (")
        with pytest.raises(RuntimeError):
            listener.start()
