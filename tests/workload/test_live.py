"""LiveReplay: paced streaming of the simulated enterprise."""

import pytest

from repro.model.time import DAY
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.ingest import Ingestor
from repro.workload.live import LiveReplay
from repro.workload.topology import BASE_DAY, SIMULATION_DAYS


def make_session(batch_size=64):
    ingestor = Ingestor()
    store = EventStore(registry=ingestor.registry)
    ingestor.attach(store)
    return store, StreamSession(ingestor, batch_size=batch_size)


class TestLiveReplay:
    def test_streams_exactly_the_event_budget(self):
        store, session = make_session()
        replay = LiveReplay(session, rate=0)  # unthrottled
        stats = replay.stream(max_events=200)
        assert stats.events == 200
        assert stats.batches >= 1
        assert stats.watermark == 200
        assert len(store) == 200  # tail committed, everything visible
        assert stats.achieved_rate > 0

    def test_default_start_day_is_beyond_the_simulation_window(self):
        store, session = make_session()
        replay = LiveReplay(session, rate=0)
        assert replay.start_day == BASE_DAY + SIMULATION_DAYS * DAY
        replay.stream(max_events=50)
        horizon = BASE_DAY + SIMULATION_DAYS * DAY
        assert all(e.start_time >= horizon for e in store)

    def test_background_handle_stops_cleanly(self):
        store, session = make_session()
        replay = LiveReplay(session, rate=500.0)
        handle = replay.start()
        stats = handle.stop()
        assert stats.target_rate == 500.0
        assert len(store) == stats.events == stats.watermark

    def test_pacing_holds_the_target_rate(self):
        _, session = make_session()
        replay = LiveReplay(session, rate=2000.0)
        stats = replay.stream(max_events=100)
        # 100 events at 2000 ev/s need >= ~0.05 s; unthrottled this
        # workload streams orders of magnitude faster.
        assert stats.wall_s >= 0.045
        assert stats.achieved_rate <= 2300.0

    def test_stop_interrupts_a_long_inter_event_sleep(self):
        import time

        _, session = make_session()
        replay = LiveReplay(session, rate=0.01)  # 100 s between events
        handle = replay.start()
        started = time.monotonic()
        stats = handle.stop()
        assert time.monotonic() - started < 5.0
        assert stats.events <= 1

    def test_negative_rate_rejected(self):
        _, session = make_session()
        with pytest.raises(ValueError):
            LiveReplay(session, rate=-1.0)
