"""Coordinator: routing, scatter/gather scans, recovery merge, lifecycle.

Worker processes are real (``spawn``), so fixtures are module-scoped and
small: a handful of agents over a few days is enough to land partitions
on every shard.
"""

import pytest

from repro.core.config import SystemConfig
from repro.model.time import DAY, TimeWindow
from repro.shard import ShardedStore, ShardError
from repro.storage.database import EventStore
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateLeaf,
)
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionKey, PartitionScheme


def populate(ingestor, agents=(1, 2, 3), days=4, per_day=3):
    for agent in agents:
        shell = ingestor.process(agent, 100, "bash", cmd="bash -l")
        editor = ingestor.process(agent, 200, "vim")
        log = ingestor.file(agent, "/var/log/syslog")
        secret = ingestor.file(agent, "/etc/passwd")
        for day in range(days):
            base = day * DAY + 60.0 * agent
            ingestor.emit(agent, base, "start", shell, editor)
            for i in range(per_day):
                ingestor.emit(agent, base + 10 * (i + 1), "write", editor, log,
                              amount=128 * (i + 1))
            ingestor.emit(agent, base + 50, "read", shell, secret)


@pytest.fixture(scope="module")
def deployment():
    """A 2-shard store and an in-process reference fed the same stream."""
    ingestor = Ingestor()
    sharded = ShardedStore(ingestor, SystemConfig(shards=2))
    reference = EventStore(
        registry=ingestor.registry,
        scheme=PartitionScheme(agents_per_group=10),
    )
    ingestor.attach(sharded)
    ingestor.attach(reference)
    populate(ingestor)
    yield sharded, reference
    sharded.close()


FILTERS = (
    EventFilter(),
    EventFilter(agent_ids=frozenset({1, 3})),
    EventFilter(window=TimeWindow(start=DAY, end=3 * DAY)),
    EventFilter(
        subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "vim"))
    ),
    EventFilter(
        agent_ids=frozenset({2}),
        window=TimeWindow(start=0.0, end=2 * DAY),
        object_pred=PredicateLeaf(AttrPredicate("name", "=", "/etc/passwd")),
    ),
)


class TestRouting:
    def test_shard_of_is_deterministic_and_total(self, deployment):
        sharded, _ = deployment
        keys = [PartitionKey(day=d, agent_group=g)
                for d in range(6) for g in range(3)]
        first = [sharded.shard_of(k) for k in keys]
        assert first == [sharded.shard_of(k) for k in keys]
        assert set(first) == {0, 1}  # both shards actually used
        assert all(0 <= s < sharded.shards for s in first)

    def test_events_spread_over_both_shards(self, deployment):
        sharded, _ = deployment
        per_shard = sharded.stats()["shard_events"]
        assert len(per_shard) == 2
        assert all(count > 0 for count in per_shard)
        assert sum(per_shard) == len(sharded)


class TestScatterGatherScans:
    def test_len_matches_reference(self, deployment):
        sharded, reference = deployment
        assert len(sharded) == len(reference) > 0

    @pytest.mark.parametrize("flt", FILTERS, ids=lambda f: repr(f)[:40])
    def test_scan_matches_reference(self, deployment, flt):
        sharded, reference = deployment
        assert sharded.scan(flt) == reference.scan(flt)

    @pytest.mark.parametrize("flt", FILTERS[:3], ids=lambda f: repr(f)[:40])
    def test_full_scan_matches_reference(self, deployment, flt):
        sharded, reference = deployment
        assert sharded.full_scan(flt) == sorted(
            reference.full_scan(flt), key=lambda e: (e.start_time, e.event_id)
        )

    def test_scan_columns_result_is_globally_ordered(self, deployment):
        sharded, _ = deployment
        handles = sharded.scan_columns(EventFilter()).handles()
        order = [(t, eid) for t, eid, _, _ in handles]
        assert order == sorted(order)

    def test_iter_yields_the_whole_store(self, deployment):
        sharded, reference = deployment
        assert list(sharded) == sorted(
            reference.scan(EventFilter()),
            key=lambda e: (e.start_time, e.event_id),
        )

    def test_estimated_events_sums_shards(self, deployment):
        sharded, _ = deployment
        flt = EventFilter(agent_ids=frozenset({1}))
        assert sharded.estimated_events(EventFilter()) >= sharded.estimated_events(flt)
        assert sharded.estimated_events(flt) > 0

    def test_time_range_merges_shards(self, deployment):
        sharded, reference = deployment
        assert sharded.time_range() == reference.time_range()

    def test_stats_shape(self, deployment):
        sharded, _ = deployment
        stats = sharded.stats()
        assert stats["shards"] == 2
        assert stats["events"] == len(sharded)
        assert stats["entities"] == len(sharded.registry)
        assert len(stats["per_shard"]) == 2


class TestErrorContainment:
    def test_worker_error_surfaces_and_worker_survives(self, deployment):
        sharded, reference = deployment
        # checkpoint on a RAM-only deployment fails inside the worker …
        with pytest.raises(ShardError, match="not durable"):
            sharded.checkpoint()
        # … but the workers keep answering: errors are per command.
        assert sharded.scan(EventFilter()) == reference.scan(EventFilter())


class TestEntityBroadcast:
    def test_late_entity_reaches_every_shard(self, deployment):
        sharded, reference = deployment
        ingestor = sharded.ingestor
        tool = ingestor.process(2, 300, "nmap")
        target = ingestor.connection(2, "10.0.0.2", 40000, "8.8.8.8", 53)
        ingestor.emit(2, 5 * DAY + 7.0, "connect", tool, target)
        flt = EventFilter(
            subject_pred=PredicateLeaf(AttrPredicate("exe_name", "=", "nmap"))
        )
        got = sharded.scan(flt)
        assert got == reference.scan(flt)
        assert len(got) == 1


class TestLifecycle:
    def test_close_is_idempotent_and_context_managed(self):
        ingestor = Ingestor()
        with ShardedStore(ingestor, SystemConfig(shards=1)) as sharded:
            ingestor.attach(sharded)
            populate(ingestor, agents=(1,), days=1, per_day=1)
            assert len(sharded) == 3
            sharded.close()
        sharded.close()  # after __exit__ already closed it

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedStore(Ingestor(), SystemConfig(shards=0))


class TestDurableRecovery:
    def test_each_shard_replays_its_own_wal(self, tmp_path):
        config = SystemConfig(shards=2, data_dir=str(tmp_path))
        ingestor = Ingestor()
        sharded = ShardedStore(ingestor, config)
        ingestor.attach(sharded)
        populate(ingestor, days=3)
        before = sharded.scan(EventFilter())
        count = len(sharded)
        next_id = ingestor.events_ingested
        sharded.close()

        ingestor2 = Ingestor()
        recovered = ShardedStore(ingestor2, config)
        ingestor2.attach(recovered)
        try:
            report = recovered.recovery
            assert report is not None
            assert report.wal_events_replayed == count  # no checkpoint ran
            assert report.next_event_id == next_id + 1
            assert len(recovered) == count
            assert recovered.scan(EventFilter()) == before
            # The merged registry lets ingest continue seamlessly.
            agent = 1
            shell = ingestor2.process(agent, 100, "bash", cmd="bash -l")
            log = ingestor2.file(agent, "/var/log/syslog")
            event = ingestor2.emit(agent, 9 * DAY, "write", shell, log)
            assert event.event_id == next_id + 1
            assert len(recovered) == count + 1
        finally:
            recovered.close()

    def test_checkpoint_then_recover_uses_snapshot(self, tmp_path):
        config = SystemConfig(shards=2, data_dir=str(tmp_path))
        ingestor = Ingestor()
        sharded = ShardedStore(ingestor, config)
        ingestor.attach(sharded)
        populate(ingestor, agents=(1, 2), days=2)
        count = len(sharded)
        snapshotted = sharded.checkpoint()
        assert snapshotted == count
        before = sharded.scan(EventFilter())
        sharded.close()

        ingestor2 = Ingestor()
        recovered = ShardedStore(ingestor2, config)
        try:
            assert recovered.recovery.snapshot_events == count
            assert recovered.recovery.wal_events_replayed == 0
            assert recovered.scan(EventFilter()) == before
        finally:
            recovered.close()
