"""Shard observability: per-shard scatter/gather stats and worker metrics."""

import pytest

from repro.core.config import SystemConfig
from repro.model.time import DAY
from repro.shard import ShardedStore
from repro.shard.wire import encode_result, payload_nbytes
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor


def populate(ingestor, agents=(1, 2, 3), days=3, per_day=2):
    for agent in agents:
        shell = ingestor.process(agent, 100, "bash")
        log = ingestor.file(agent, f"/var/log/{agent}.log")
        for day in range(days):
            base = day * DAY + 60.0 * agent
            for i in range(per_day):
                ingestor.emit(agent, base + 10 * (i + 1), "write", shell, log)


@pytest.fixture(scope="module")
def sharded():
    ingestor = Ingestor()
    store = ShardedStore(ingestor, SystemConfig(shards=2))
    ingestor.attach(store)
    populate(ingestor)
    yield store
    store.close()


class TestPayloadNbytes:
    def test_counts_column_buffers_only(self, sharded):
        result = sharded.scan_columns(EventFilter())
        payload = encode_result(result)
        expected = sum(
            len(v) for v in payload.values()
            if isinstance(v, (bytes, bytearray))
        )
        assert payload_nbytes(payload) == expected
        assert payload_nbytes(payload) > 0


class TestPerShardStats:
    def test_merged_keys_preserved(self, sharded):
        sharded.scan(EventFilter())
        stats = sharded.stats()
        assert stats["shards"] == 2
        assert stats["events"] == len(sharded)
        assert sum(stats["shard_events"]) == len(sharded)
        assert len(stats["per_shard"]) == 2

    def test_per_shard_scatter_gather_detail(self, sharded):
        rows = len(sharded.scan(EventFilter()))
        stats = sharded.stats()
        for shard, entry in enumerate(stats["per_shard"]):
            sg = entry["scatter_gather"]
            assert entry["shard"] == shard
            assert sg["shard"] == shard
            assert sg["recv_seconds"] >= 0.0
            # Every event routed in was gathered back at least once by
            # the full scans above.
            assert sg["rows_gathered"] >= sg["events_routed"]
        routed = [e["scatter_gather"]["events_routed"]
                  for e in stats["per_shard"]]
        assert sum(routed) == len(sharded)
        assert all(n > 0 for n in routed)  # both shards own partitions
        gathered = [e["scatter_gather"]["bytes_gathered"]
                    for e in stats["per_shard"]]
        assert all(b > 0 for b in gathered)
        assert rows > 0

    def test_merged_scatter_gather_is_sum_of_per_shard(self, sharded):
        sharded.scan(EventFilter())
        stats = sharded.stats()
        merged = stats["scatter_gather"]
        per = [e["scatter_gather"] for e in stats["per_shard"]]
        for key in ("events_routed", "bytes_gathered", "rows_gathered"):
            assert merged[key] == sum(p[key] for p in per)
        assert merged["scan_rounds"] > 0
        assert merged["recv_seconds"] == pytest.approx(
            sum(p["recv_seconds"] for p in per)
        )

    def test_gather_accounting_accumulates_per_round(self, sharded):
        before = sharded.stats()["scatter_gather"]
        sharded.scan(EventFilter(agent_ids=frozenset({1})))
        after = sharded.stats()["scatter_gather"]
        assert after["scan_rounds"] == before["scan_rounds"] + 1
        assert after["rows_gathered"] > before["rows_gathered"]


class TestWorkerMetrics:
    def test_metrics_returns_one_snapshot_per_shard(self, sharded):
        sharded.scan(EventFilter())
        snapshots = sharded.metrics()
        assert len(snapshots) == 2
        for snap in snapshots:
            assert snap["aiql_scan_total"]["kind"] == "counter"
            # Workers executed scatter scans, so the counter moved.
            assert sum(snap["aiql_scan_total"]["values"].values()) > 0

    def test_metrics_disabled_workers_record_nothing(self):
        ingestor = Ingestor()
        store = ShardedStore(
            ingestor, SystemConfig(shards=2, metrics=False)
        )
        try:
            ingestor.attach(store)
            populate(ingestor, agents=(1,), days=1, per_day=1)
            store.scan(EventFilter())
            for snap in store.metrics():
                assert snap["aiql_scan_total"]["values"] == {}
        finally:
            store.close()
