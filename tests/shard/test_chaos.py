"""Deterministic fault plans: specs, generation, and the chaos agent."""

import pytest

from repro.shard.chaos import (
    ChaosAgent,
    ChaosSpecError,
    Fault,
    FaultPlan,
    plan_from_env,
)


class TestFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            Fault(shard=0, action="explode")
        with pytest.raises(ValueError):
            Fault(shard=-1, action="kill")
        with pytest.raises(ValueError):
            Fault(shard=0, action="kill", at_command=-1)
        with pytest.raises(ValueError):
            Fault(shard=0, action="delay", duration_s=0)

    def test_spec_roundtrip(self):
        faults = (
            Fault(shard=1, action="kill", command="scan", at_command=0),
            Fault(shard=0, action="wedge", at_command=2, duration_s=30.0),
            Fault(
                shard=2,
                action="delay",
                command="batch",
                at_command=1,
                duration_s=0.05,
            ),
        )
        plan = FaultPlan(faults=faults)
        assert FaultPlan.from_spec(plan.to_spec(), shards=3).faults == faults


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(seed=42, shards=4)
        b = FaultPlan.generate(seed=42, shards=4)
        assert a == b
        assert a.faults  # non-empty by construction

    def test_different_seeds_differ_somewhere(self):
        plans = {FaultPlan.generate(seed=s, shards=6).to_spec() for s in range(8)}
        assert len(plans) > 1

    def test_integer_spec_is_seeded_generation(self):
        assert FaultPlan.from_spec("42", shards=4) == FaultPlan.generate(
            42, shards=4
        )

    def test_kill_targets_early_scan_or_batch(self):
        for seed in range(10):
            plan = FaultPlan.generate(seed=seed, shards=4)
            kills = [f for f in plan.faults if f.action == "kill"]
            assert kills
            for fault in kills:
                assert fault.command in ("scan", "batch")
                assert 0 <= fault.at_command < 3

    def test_bad_specs_raise(self):
        with pytest.raises(ChaosSpecError):
            FaultPlan.from_spec("kill@", shards=2)
        with pytest.raises(ChaosSpecError):
            FaultPlan.from_spec("frob@0#1", shards=2)
        with pytest.raises(ChaosSpecError):
            FaultPlan.from_spec("kill@5:scan#0", shards=2)  # out of range

    def test_for_shard_partitions_the_plan(self):
        plan = FaultPlan.from_spec("kill@1:scan#0,delay@0:scan#1x0.02", shards=2)
        assert [f.action for f in plan.for_shard(0)] == ["delay"]
        assert [f.action for f in plan.for_shard(1)] == ["kill"]
        assert plan.for_shard(0) + plan.for_shard(1) != ()

    def test_empty_spec_is_empty_plan(self):
        assert not FaultPlan.from_spec("  ", shards=2)
        assert not FaultPlan()

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("AIQL_SHARD_CHAOS", raising=False)
        assert not plan_from_env(2)
        monkeypatch.setenv("AIQL_SHARD_CHAOS", "kill@1:scan#0")
        plan = plan_from_env(2)
        assert plan.faults[0].action == "kill"


class TestChaosAgent:
    def test_typed_counts_ignore_other_commands(self, monkeypatch):
        fired = []
        monkeypatch.setattr(ChaosAgent, "_fire", staticmethod(fired.append))
        agent = ChaosAgent(
            faults=(Fault(shard=0, action="kill", command="scan", at_command=1),)
        )
        # Heartbeats and entity broadcasts interleave freely: only the
        # second *scan* fires the fault.
        for command in ("ping", "entities", "scan", "ping", "batch"):
            agent.before(command)
        assert fired == []
        agent.before("scan")
        assert [f.action for f in fired] == ["kill"]

    def test_untyped_counts_every_command(self, monkeypatch):
        fired = []
        monkeypatch.setattr(ChaosAgent, "_fire", staticmethod(fired.append))
        agent = ChaosAgent(faults=(Fault(shard=0, action="delay", at_command=2),))
        agent.before("ping")
        agent.before("scan")
        assert fired == []
        agent.before("stats")
        assert len(fired) == 1

    def test_delay_sleeps_for_duration(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.shard.chaos.time.sleep", slept.append)
        ChaosAgent._fire(Fault(shard=0, action="delay", duration_s=0.02))
        assert slept == [0.02]

    def test_wedge_defaults_far_past_deadlines(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.shard.chaos.time.sleep", slept.append)
        ChaosAgent._fire(Fault(shard=0, action="wedge"))
        assert slept and slept[0] >= 3600
