"""Shard supervision: sentinels, heartbeats, recovery, read policies.

Worker processes are real (``spawn``), so deployments are small and
most fixtures function-scoped — each test mutates deployment health.
"""

import os
import signal
import time

import pytest

from repro.core.config import SystemConfig
from repro.model.time import DAY
from repro.shard import ShardError, ShardTimeout, ShardedStore
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor


def populate(ingestor, agents=(1, 2, 3), days=3, per_day=2):
    for agent in agents:
        shell = ingestor.process(agent, 100, "bash")
        log = ingestor.file(agent, "/var/log/syslog")
        for day in range(days):
            base = day * DAY + 60.0 * agent
            for i in range(per_day):
                ingestor.emit(agent, base + 10 * (i + 1), "write", shell, log,
                              amount=64 * (i + 1))


def build(tmp_path=None, **overrides):
    kwargs = dict(
        shards=2,
        data_dir=str(tmp_path) if tmp_path is not None else None,
        wal_sync=False,
        shard_command_timeout_s=15.0,
        shard_scan_timeout_s=30.0,
        shard_heartbeat_interval_s=0,  # explicit check() calls only
    )
    kwargs.update(overrides)
    config = SystemConfig(**kwargs)
    ingestor = Ingestor()
    store = ShardedStore(ingestor, config)
    ingestor.attach(store)
    populate(ingestor)
    return store


def kill_worker(store, shard):
    proc = store._procs[shard]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)
    assert not proc.is_alive()


class TestSentinelRecovery:
    def test_check_detects_and_restarts_dead_worker(self, tmp_path):
        store = build(tmp_path)
        try:
            before = len(store.scan(EventFilter()))
            kill_worker(store, 1)
            recovered = store.supervisor.check()
            assert recovered == [1]
            health = store.supervisor.health[1]
            assert health.restarts == 1
            assert not health.quarantined
            assert health.lost_events == 0  # durable: WAL replay restores
            assert health.last_recovery_s is not None
            # The deployment serves the full answer again.
            assert len(store.scan(EventFilter())) == before
        finally:
            store.close()

    def test_scan_recovers_dead_worker_inline(self, tmp_path):
        """A scan hitting a dead pipe recovers and retries by itself."""
        store = build(tmp_path)
        try:
            before = len(store.scan(EventFilter()))
            kill_worker(store, 0)
            assert len(store.scan(EventFilter())) == before
            assert store.supervisor.health[0].restarts == 1
            assert store.supervisor.health[0].retries >= 1
        finally:
            store.close()

    def test_ram_only_restart_reports_lost_events(self):
        store = build()
        try:
            acked = store._shard_acked[1]
            assert acked > 0
            kill_worker(store, 1)
            store.supervisor.check()
            assert store.supervisor.health[1].lost_events == acked
            summary = store.stats()["shard_health"]
            assert summary["lost_events"] == acked
        finally:
            store.close()


class TestWedgedWorker:
    def test_wedge_times_out_and_recovers(self, tmp_path):
        """A wedged (alive but stuck) worker blows the deadline, is
        SIGKILLed, respawned, and the scan retried — bounded wait, full
        answer, no leaked straggler blocking the drain."""
        store = build(
            tmp_path,
            shard_chaos="wedge@1:scan#0",
            shard_scan_timeout_s=2.0,
        )
        try:
            started = time.monotonic()
            events = store.scan(EventFilter())
            elapsed = time.monotonic() - started
            assert events  # full answer after recovery
            health = store.supervisor.health[1]
            assert health.timeouts >= 1
            assert health.restarts == 1
            # Deadline + recovery + retry, not the 3600 s wedge.
            assert elapsed < 30
        finally:
            store.close()


class TestReadPolicies:
    def test_fail_fast_raises_when_shard_unrecoverable(self):
        store = build(shard_max_restarts=0, shard_read_policy="fail_fast")
        try:
            kill_worker(store, 1)
            with pytest.raises((ShardError, ShardTimeout)):
                store.scan(EventFilter())
            assert store.supervisor.health[1].failed
        finally:
            store.close()

    def test_degraded_answers_from_survivors_with_annotation(self):
        store = build(shard_max_restarts=0, shard_read_policy="degraded")
        try:
            full = store.scan(EventFilter())
            acked = store._shard_acked[1]
            kill_worker(store, 1)
            result = store.scan_columns(EventFilter())
            events = result.events()
            assert 0 < len(events) < len(full)
            completeness = result.completeness
            assert completeness is not None
            assert completeness.missing_shards == (1,)
            assert completeness.estimated_missed_rows == acked
            assert completeness.total_shards == 2
            # Survivors' rows are exactly the reference rows they own.
            surviving_ids = {e.event_id for e in events}
            expected = {
                e.event_id
                for e in full
                if store.shard_of(
                    store.scheme.key_for(e.agent_id, e.start_time)
                )
                != 1
            }
            assert surviving_ids == expected
            assert store.stats()["shard_health"]["degraded_scans"] >= 1
        finally:
            store.close()

    def test_restart_budget_exhaustion_marks_failed(self):
        store = build(shard_max_restarts=1, shard_read_policy="degraded")
        try:
            kill_worker(store, 0)
            store.supervisor.check()
            assert store.supervisor.health[0].restarts == 1
            kill_worker(store, 0)
            store.supervisor.check()
            health = store.supervisor.health[0]
            assert health.failed
            assert store.stats()["shard_health"]["failed_shards"] == [0]
            # Degraded reads still answer.
            assert store.scan_columns(EventFilter()).completeness is not None
        finally:
            store.close()


class TestCommitFailFast:
    def test_commit_refused_when_target_shard_down(self):
        from repro.shard import ShardCommitError

        store = build(shard_max_restarts=0, shard_read_policy="degraded")
        try:
            kill_worker(store, 0)
            store.supervisor.check()  # quarantine + mark failed
            ingestor = store.ingestor
            shell = ingestor.process(9, 100, "bash")
            log = ingestor.file(9, "/tmp/x")
            with pytest.raises(ShardCommitError) as exc_info:
                for day in range(4):  # touch partitions on both shards
                    ingestor.emit(9, day * DAY + 5.0, "write", shell, log)
            assert exc_info.value.acked_shards == ()
            assert 0 in exc_info.value.failed_shards
        finally:
            store.close()

    def test_watermark_not_raised_on_refused_commit(self):
        from repro.shard import ShardCommitError

        store = build(shard_max_restarts=0, shard_read_policy="degraded")
        try:
            before = len(store)
            watermark = store._committed
            kill_worker(store, 0)
            store.supervisor.check()
            ingestor = store.ingestor
            shell = ingestor.process(9, 100, "bash")
            log = ingestor.file(9, "/tmp/x")
            with pytest.raises(ShardCommitError):
                for day in range(4):
                    ingestor.emit(9, day * DAY + 5.0, "write", shell, log)
            assert store._committed == watermark
            assert len(store) == before
        finally:
            store.close()


class TestLifecycle:
    def test_close_is_idempotent_and_counts_leaks(self, tmp_path):
        store = build(tmp_path)
        store.close()
        store.close()
        assert store.leaked_workers == 0
        assert all(
            proc is None or not proc.is_alive() for proc in store._procs
        )
        # stats() still answers after close (no scatter to dead pipes).
        stats = store.stats()
        assert stats["closed"] is True
        assert "shard_health" in stats

    def test_close_after_quarantine(self):
        store = build()
        kill_worker(store, 1)
        store.supervisor.check()
        store.close()
        assert all(
            proc is None or not proc.is_alive() for proc in store._procs
        )

    def test_stats_include_health_summary(self):
        store = build()
        try:
            health = store.stats()["shard_health"]
            assert health["restarts"] == 0
            assert health["failed_shards"] == []
            assert len(health["per_shard"]) == 2
            assert all(entry["alive"] for entry in health["per_shard"])
        finally:
            store.close()


class TestHeartbeatThread:
    def test_background_sweep_recovers_without_queries(self, tmp_path):
        store = build(tmp_path, shard_heartbeat_interval_s=0.2)
        try:
            kill_worker(store, 1)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if store.supervisor.health[1].restarts:
                    break
                time.sleep(0.05)
            assert store.supervisor.health[1].restarts == 1
            assert len(store.scan(EventFilter())) > 0
        finally:
            store.close()
