"""Wire codec: event batches and serialized scan-result blocks."""

from array import array

import pytest

from repro.model.entities import EntityType
from repro.model.events import Operation, SystemEvent
from repro.shard.wire import (
    WireError,
    decode_events,
    decode_result,
    encode_events,
    encode_result,
)
from repro.storage.blocks import (
    OP_VALUE_BY_CODE,
    BlockScanResult,
    ColumnBlock,
    Selection,
)


def make_event(
    eid,
    start,
    agent=1,
    op=Operation.READ,
    otype=EntityType.FILE,
    subject=100,
    obj=200,
    amount=0,
    failure=0,
):
    return SystemEvent(
        event_id=eid,
        agent_id=agent,
        seq=eid,
        start_time=start,
        end_time=start + 1.0,
        operation=op,
        subject_id=subject,
        object_id=obj,
        object_type=otype,
        amount=amount,
        failure_code=failure,
    )


def result_of(events):
    block = ColumnBlock()
    for event in events:
        block.append(event)
    return BlockScanResult([Selection(block, range(len(block)))])


SAMPLE = [
    make_event(1, 10.0, agent=3, op=Operation.WRITE, amount=512),
    make_event(2, 11.0, agent=4, otype=EntityType.NETWORK, failure=2),
    make_event(3, 12.0, agent=3, op=Operation.DELETE, subject=7, obj=9),
]


class TestEventBatches:
    def test_round_trip(self):
        assert decode_events(encode_events(SAMPLE)) == tuple(SAMPLE)

    def test_enums_cross_as_value_strings(self):
        payload = encode_events(SAMPLE)
        assert payload[0][5] == Operation.WRITE.value
        assert payload[1][8] == EntityType.NETWORK.value

    def test_unknown_operation_value_raises(self):
        payload = encode_events(SAMPLE[:1])
        bad = list(payload[0])
        bad[5] = "transmogrify"
        with pytest.raises(WireError):
            decode_events([tuple(bad)])


class TestResultRoundTrip:
    def test_events_survive(self):
        payload = encode_result(result_of(SAMPLE))
        selection = decode_result(payload)
        assert selection.block.events() == SAMPLE

    def test_decoded_block_is_time_sorted_with_bounds(self):
        selection = decode_result(encode_result(result_of(SAMPLE)))
        block = selection.block
        assert block.time_sorted
        assert block.min_time == 10.0
        assert block.max_time == 12.0
        assert block.max_event_id == 3
        assert list(selection.positions) == [0, 1, 2]

    def test_agent_dictionary_is_per_payload(self):
        payload = encode_result(result_of(SAMPLE))
        assert payload["agents"] == (3, 4)
        assert not payload["wide"]
        assert isinstance(payload["agent"], bytes)

    def test_unsorted_result_is_reserialized_in_handle_order(self):
        shuffled = [SAMPLE[2], SAMPLE[0], SAMPLE[1]]
        selection = decode_result(encode_result(result_of(shuffled)))
        assert [e.event_id for e in selection.block.events()] == [1, 2, 3]

    def test_empty_result_decodes_to_none(self):
        assert decode_result(encode_result(result_of([]))) is None

    def test_columns_are_fixed_width(self):
        payload = encode_result(result_of(SAMPLE))
        assert len(payload["eid"]) == 3 * 8
        assert len(payload["t0"]) == 3 * 8
        assert len(payload["op"]) == 3
        assert len(payload["ot"]) == 3


class TestWatermark:
    def test_rows_above_watermark_are_dropped(self):
        payload = encode_result(result_of(SAMPLE), watermark=2)
        selection = decode_result(payload)
        assert [e.event_id for e in selection.block.events()] == [1, 2]

    def test_everything_uncommitted_decodes_to_none(self):
        payload = encode_result(result_of(SAMPLE), watermark=0)
        assert payload["n"] == 0
        assert decode_result(payload) is None

    def test_no_watermark_keeps_everything(self):
        payload = encode_result(result_of(SAMPLE), watermark=None)
        assert payload["n"] == 3


class TestWideAgentDictionary:
    def test_past_256_agents_promotes_to_q_array(self):
        events = [make_event(i, float(i), agent=1000 + i) for i in range(1, 301)]
        payload = encode_result(result_of(events))
        assert payload["wide"]
        assert len(payload["agent"]) == 300 * 8  # array('q'), 8 bytes/code
        selection = decode_result(payload)
        assert isinstance(selection.block.agent_codes, array)
        assert selection.block.agent_codes.typecode == "q"
        assert [e.agent_id for e in selection.block.events()] == [
            1000 + i for i in range(1, 301)
        ]


class TestDictionaryRemap:
    """A sender whose enum order differs must remap, never alias."""

    def _permuted_payload(self):
        payload = encode_result(result_of(SAMPLE))
        ops = list(payload["ops"])
        # Simulate a sender that enumerates operations in reverse order:
        # code i over there means ops[n-1-i] here.
        sender_ops = tuple(reversed(ops))
        remap = {ops.index(v): code for code, v in enumerate(sender_ops)}
        payload["ops"] = sender_ops
        payload["op"] = bytes(remap[c] for c in payload["op"])
        return payload

    def test_permuted_op_table_remaps_to_local_codes(self):
        selection = decode_result(self._permuted_payload())
        assert [e.operation for e in selection.block.events()] == [
            e.operation for e in SAMPLE
        ]

    def test_identical_tables_round_trip(self):
        payload = encode_result(result_of(SAMPLE))
        assert payload["ops"] == tuple(OP_VALUE_BY_CODE)
        selection = decode_result(payload)
        assert selection.block.events() == SAMPLE

    def test_unknown_sender_value_raises_instead_of_aliasing(self):
        payload = encode_result(result_of(SAMPLE))
        ops = list(payload["ops"])
        ops[0] = "transmogrify"
        payload["ops"] = tuple(ops)
        with pytest.raises(WireError):
            decode_result(payload)

    def test_unknown_object_type_value_raises(self):
        payload = encode_result(result_of(SAMPLE))
        ots = list(payload["ots"])
        ots[0] = "tachyon"
        payload["ots"] = tuple(ots)
        with pytest.raises(WireError):
            decode_result(payload)
