"""Tests for context-aware syntax shortcuts (paper Sec. 4.1)."""

import pytest

from repro.lang.errors import AIQLSemanticError
from repro.lang.inference import entity_occurrences, infer_multievent
from repro.lang.parser import parse


def infer(text):
    return infer_multievent(parse(text))


class TestAttributeInference:
    def test_bare_file_value_gets_name(self):
        q = infer('proc p read file[".viminfo"]\nreturn p')
        leaf = q.patterns[0].object.constraints
        assert leaf.comparison.attr == "name"

    def test_bare_proc_value_gets_exe_name(self):
        q = infer('proc p["%apache%"] read file f\nreturn p')
        leaf = q.patterns[0].subject.constraints
        assert leaf.comparison.attr == "exe_name"

    def test_bare_ip_value_gets_dst_ip(self):
        q = infer('proc p connect ip i["1.2.3.4"]\nreturn p')
        leaf = q.patterns[0].object.constraints
        assert leaf.comparison.attr == "dst_ip"

    def test_inference_descends_into_or(self):
        q = infer('proc p read file[".viminfo" || ".bash_history"]\nreturn p')
        node = q.patterns[0].object.constraints
        assert node.left.comparison.attr == "name"
        assert node.right.comparison.attr == "name"

    def test_bare_event_constraint_rejected(self):
        with pytest.raises(AIQLSemanticError, match="default attribute"):
            infer('proc p read file f as e1["oops"]\nreturn p')

    def test_return_items_get_default_attr(self):
        q = infer("proc p read file f\nreturn p, f")
        assert q.returns.items[0].expr.attr == "exe_name"
        assert q.returns.items[1].expr.attr == "name"

    def test_return_label_stays_short(self):
        q = infer("proc p read file f\nreturn p, f")
        assert [i.rename for i in q.returns.items] == ["p", "f"]

    def test_explicit_attr_label_preserved(self):
        q = infer("proc p read file f as e1\nreturn p.user, e1.optype")
        assert [i.rename for i in q.returns.items] == ["p.user", "e1.optype"]

    def test_agg_label(self):
        q = infer("proc p read ip i\nreturn p, count(distinct i) as freq\ngroup by p")
        assert q.returns.items[1].rename == "freq"

    def test_group_by_inference(self):
        q = infer("proc p read ip i\nreturn p, count(i) as c\ngroup by p")
        assert q.filters.group_by[0].attr == "exe_name"

    def test_event_return_requires_attr(self):
        with pytest.raises(AIQLSemanticError, match="default attribute"):
            infer("proc p read file f as e1\nreturn e1")

    def test_attr_rel_defaults_to_id(self):
        q = infer(
            "proc p1 start proc p2 as e1\nproc p3 read file f as e2\n"
            "with p2 = p3\nreturn p1"
        )
        rel = q.relationships[0]
        assert (rel.left_attr, rel.right_attr) == ("id", "id")


class TestOptionalIds:
    def test_missing_ids_filled(self):
        q = infer('proc p read file[".viminfo"]\nreturn p')
        assert q.patterns[0].object.entity_id is not None
        assert q.patterns[0].event_id is not None

    def test_fresh_names_do_not_collide(self):
        q = infer("proc _e1 read file f\nreturn _e1")
        names = {
            q.patterns[0].subject.entity_id,
            q.patterns[0].object.entity_id,
        }
        assert len(names) == 2


class TestEntityReuse:
    def test_occurrences_map(self):
        q = infer(
            "proc p1 write file f1 as e1\nproc p1 read ip i1 as e2\nreturn p1"
        )
        occ = entity_occurrences(q)
        assert occ["p1"] == [(0, "subject"), (1, "subject")]

    def test_conflicting_type_reuse_rejected(self):
        with pytest.raises(AIQLSemanticError, match="conflicting types"):
            infer("proc x read file f\nproc p write file x\nreturn p")

    def test_reuse_as_subject_and_object(self):
        q = infer(
            "proc p1 start proc p2 as e1\nproc p2 read file f as e2\nreturn p2"
        )
        occ = entity_occurrences(q)
        assert occ["p2"] == [(0, "object"), (1, "subject")]
