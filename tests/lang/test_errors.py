"""Error-reporting tests (the Fig. 2 'Error Reporting' component)."""

import pytest

from repro.lang.errors import AIQLSemanticError, AIQLSyntaxError
from repro.lang.parser import parse
from tests.conftest import compile_text


class TestSyntaxErrorRendering:
    def test_includes_location(self):
        try:
            parse("proc p read file f\nreturn p,")
        except AIQLSyntaxError as exc:
            assert exc.line == 2
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_includes_source_line_and_caret(self):
        try:
            parse('proc p read file f\nreturn p sort from x')
        except AIQLSyntaxError as exc:
            rendered = str(exc)
            assert "^" in rendered
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_expected_token_named(self):
        with pytest.raises(AIQLSyntaxError, match="expected"):
            parse('(at "01/01/2017"\nproc p read file f\nreturn p')

    def test_lexer_errors_positioned(self):
        try:
            parse("proc p read file f\n  return p ~")
        except AIQLSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected error")


class TestSemanticErrorHints:
    def test_invalid_attribute_lists_valid_ones(self):
        try:
            compile_text('proc p[dstip = "1.1.1.1"] read file f\nreturn p')
        except AIQLSemanticError as exc:
            assert exc.hint is not None
            assert "exe_name" in exc.hint
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_history_without_window_hint(self):
        try:
            compile_text(
                "proc p read file f\nreturn p, count(f) as n\ngroup by p\n"
                "having n > n[1]"
            )
        except AIQLSemanticError as exc:
            assert "window" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_event_attr_suggestion(self):
        try:
            compile_text("proc p read file f as e[color = 1]\nreturn p")
        except AIQLSemanticError as exc:
            assert "optype" in (exc.hint or "")
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_message_prefix(self):
        with pytest.raises(AIQLSemanticError, match="^semantic error"):
            compile_text("file f read file g\nreturn f")
