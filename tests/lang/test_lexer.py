"""Unit tests for the AIQL lexer."""

import pytest

from repro.lang.errors import AIQLSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_numbers(self):
        tokens = tokenize("proc p1 4444 1.5")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.NUMBER,
            TokenType.NUMBER,
        ]
        assert tokens[2].value == 4444
        assert tokens[3].value == 1.5

    def test_strings_double_and_single(self):
        tokens = tokenize("\"%telnet%\" '.viminfo'")
        assert tokens[0].value == "%telnet%"
        assert tokens[1].value == ".viminfo"

    def test_string_escapes(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].value == 'a"b'

    def test_two_char_operators(self):
        assert types("&& || != <= >= -> <-") == [
            TokenType.AND,
            TokenType.OR,
            TokenType.NEQ,
            TokenType.LTE,
            TokenType.GTE,
            TokenType.ARROW,
            TokenType.BACKARROW,
        ]

    def test_single_char_operators(self):
        assert types("= < > ! ( ) [ ] , . : + - * /") == [
            TokenType.EQ,
            TokenType.LT,
            TokenType.GT,
            TokenType.BANG,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.COLON,
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
        ]

    def test_identifier_with_underscores_digits(self):
        assert texts("exe_name evt1 _tmp") == ["exe_name", "evt1", "_tmp"]


class TestCommentsAndLayout:
    def test_line_comments_skipped(self):
        tokens = tokenize("agentid = 1 // host id\nproc p")
        assert texts("agentid = 1 // host id\nproc p") == [
            "agentid",
            "=",
            "1",
            "proc",
            "p",
        ]
        assert tokens[-1].type is TokenType.EOF

    def test_comment_does_not_eat_division(self):
        assert types("4 / 2") == [
            TokenType.NUMBER,
            TokenType.SLASH,
            TokenType.NUMBER,
        ]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(AIQLSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_string_with_newline(self):
        with pytest.raises(AIQLSyntaxError):
            tokenize('"ab\ncd"')

    def test_unexpected_character(self):
        with pytest.raises(AIQLSyntaxError, match="unexpected character"):
            tokenize("a # b")

    def test_error_carries_position(self):
        try:
            tokenize("abc\n  @")
        except AIQLSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected error")


class TestNumberEdgeCases:
    def test_float_vs_attribute_access(self):
        # '1.5' is a float but 'freq[1]' style int stays int
        tokens = tokenize("0.9 2")
        assert tokens[0].value == 0.9
        assert tokens[1].value == 2

    def test_number_followed_by_dot_ident(self):
        # must not absorb the dot of e.g. '1.foo' (pathological but safe)
        tokens = tokenize("1.foo")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[1].type is TokenType.DOT
