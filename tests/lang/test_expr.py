"""Unit tests for the having-clause expression evaluator."""

import pytest

from repro.lang.ast import FuncCall, Name, Num
from repro.lang.errors import AIQLSemanticError
from repro.lang.expr import (
    MappingEnv,
    cma,
    evaluate,
    evaluate_bool,
    ewma,
    max_history_depth,
    referenced_names,
    sma,
    wma,
)
from repro.lang.parser import parse


def having_of(expr_text: str):
    """Parse an expression via a full query's having clause."""
    q = parse(
        f"proc p read file f\nreturn p, count(f) as freq\ngroup by p\n"
        f"having {expr_text}"
    )
    return q.filters.having


class TestArithmetic:
    def test_basic_ops(self):
        env = MappingEnv({"x": [10.0]})
        assert evaluate(having_of("x + 2"), env) == 12.0
        assert evaluate(having_of("x - 2"), env) == 8.0
        assert evaluate(having_of("x * 2"), env) == 20.0
        assert evaluate(having_of("x / 2"), env) == 5.0

    def test_precedence(self):
        env = MappingEnv({"x": [10.0]})
        assert evaluate(having_of("1 + x * 2"), env) == 21.0
        assert evaluate(having_of("(1 + x) * 2"), env) == 22.0

    def test_unary_minus(self):
        env = MappingEnv({"x": [10.0]})
        assert evaluate(having_of("-x + 1"), env) == -9.0

    def test_division_by_zero_is_zero(self):
        env = MappingEnv({"x": [10.0], "y": [0.0]})
        assert evaluate(having_of("x / y"), env) == 0.0

    def test_comparisons(self):
        env = MappingEnv({"x": [10.0]})
        assert evaluate_bool(having_of("x > 5"), env)
        assert not evaluate_bool(having_of("x < 5"), env)
        assert evaluate_bool(having_of("x >= 10"), env)
        assert evaluate_bool(having_of("x <= 10"), env)
        assert evaluate_bool(having_of("x = 10"), env)
        assert evaluate_bool(having_of("x != 5"), env)

    def test_boolean_connectives(self):
        env = MappingEnv({"x": [10.0]})
        assert evaluate_bool(having_of("x > 5 && x < 20"), env)
        assert evaluate_bool(having_of("x > 50 || x < 20"), env)
        assert not evaluate_bool(having_of("x > 50 && x < 20"), env)


class TestHistoryStates:
    def test_history_indexing(self):
        env = MappingEnv({"freq": [1.0, 2.0, 3.0]})  # oldest -> newest
        assert evaluate(Name("freq", 0), env) == 3.0
        assert evaluate(Name("freq", 1), env) == 2.0
        assert evaluate(Name("freq", 2), env) == 1.0

    def test_insufficient_history_raises(self):
        env = MappingEnv({"freq": [1.0]})
        with pytest.raises(AIQLSemanticError, match="history"):
            evaluate(Name("freq", 2), env)

    def test_unknown_name(self):
        env = MappingEnv({})
        with pytest.raises(AIQLSemanticError, match="unknown result"):
            evaluate(Name("nope"), env)

    def test_paper_sma3_expression(self):
        # Query 4: freq > 2 * (freq + freq[1] + freq[2]) / 3
        expr = having_of("freq > 2 * (freq + freq[1] + freq[2]) / 3")
        flat = MappingEnv({"freq": [10.0, 10.0, 10.0]})
        spike = MappingEnv({"freq": [10.0, 10.0, 100.0]})
        assert not evaluate_bool(expr, flat)
        assert evaluate_bool(expr, spike)

    def test_max_history_depth(self):
        expr = having_of("freq > 2 * (freq + freq[1] + freq[2]) / 3")
        assert max_history_depth(expr) == 2
        assert max_history_depth(Num(1.0)) == 0

    def test_referenced_names(self):
        expr = having_of("freq > amt + freq[1]")
        assert referenced_names(expr) == ["freq", "amt"]


class TestMovingAverages:
    def test_sma(self):
        assert sma([1.0, 2.0, 3.0, 4.0], 2) == 3.5
        assert sma([1.0], 5) == 1.0  # shorter series than window
        assert sma([], 3) == 0.0

    def test_sma_invalid_window(self):
        with pytest.raises(AIQLSemanticError):
            sma([1.0], 0)

    def test_cma(self):
        assert cma([1.0, 2.0, 3.0]) == 2.0
        assert cma([]) == 0.0

    def test_wma_linear_weights(self):
        # weights 1,2,3 over last 3: (1*1 + 2*2 + 3*3)/6
        assert wma([1.0, 2.0, 3.0], 3) == pytest.approx(14.0 / 6.0)

    def test_ewma_heavy_history(self):
        # alpha=0.9 keeps the baseline close to history despite a spike
        series = [10.0] * 10 + [100.0]
        assert ewma(series, 0.9) < 30.0

    def test_ewma_bounds(self):
        with pytest.raises(AIQLSemanticError):
            ewma([1.0], 1.5)

    def test_ewma_single_value(self):
        assert ewma([7.0], 0.9) == 7.0

    def test_function_call_evaluation(self):
        env = MappingEnv({"freq": [10.0, 10.0, 100.0]})
        expr = having_of("(freq - EWMA(freq, 0.9)) / EWMA(freq, 0.9) > 0.2")
        assert evaluate_bool(expr, env)

    def test_sma_via_funccall(self):
        env = MappingEnv({"freq": [2.0, 4.0]})
        assert evaluate(FuncCall("sma", (Name("freq"), Num(2.0))), env) == 3.0

    def test_abs(self):
        env = MappingEnv({"x": [-5.0]})
        assert evaluate(FuncCall("abs", (Name("x"),)), env) == 5.0

    def test_unknown_function(self):
        env = MappingEnv({"x": [1.0]})
        with pytest.raises(AIQLSemanticError, match="unknown function"):
            evaluate(FuncCall("median", (Name("x"),)), env)

    def test_wrong_arity(self):
        env = MappingEnv({"x": [1.0]})
        with pytest.raises(AIQLSemanticError, match="argument"):
            evaluate(FuncCall("ewma", (Name("x"),)), env)

    def test_series_arg_must_be_plain_name(self):
        env = MappingEnv({"x": [1.0]})
        with pytest.raises(AIQLSemanticError, match="plain result name"):
            evaluate(FuncCall("ewma", (Num(1.0), Num(0.9))), env)
