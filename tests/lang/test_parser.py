"""Parser tests: every query in the paper parses to the expected structure."""

import pytest

from repro.lang import ast
from repro.lang.errors import AIQLSyntaxError
from repro.lang.parser import parse, parse_many

QUERY_1 = """
agentid = 1 // host id; spatial constraints
(at "01/01/2017") // temporal constraints
proc p1 start proc p2["%telnet%"] as evt1
proc p3 start ip ipp[dstport = 4444] as evt2
proc p4["%apache%"] read file f1["/var/www%"] as evt3
with p2 = p3, // attribute relationship
evt1 before evt2, evt3 after evt2 // temporal relationships
return p1, p2, p4, f1
"""

QUERY_2 = """
agentid = 1
(at "01/01/2017")
proc p2 start proc p1 as evt1
proc p3 read file[".viminfo" || ".bash_history"] as evt2
with p1 = p3, evt1 before evt2
return p2, p1
sort by p2, p1
"""

QUERY_3 = """
(at "01/01/2017")
forward: proc p1["%/bin/cp%", agentid = 2] ->[write] file f1["/var/www/%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid=3]
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2
"""

QUERY_4 = """
(at "01/01/2017")
window = 1 min
step = 10 sec
proc p read ip ipp
return p, count(distinct ipp) as freq
group by p
having freq > 2 * (freq + freq[1] + freq[2]) / 3
"""


class TestPaperQueries:
    def test_query1_structure(self):
        q = parse(QUERY_1)
        assert isinstance(q, ast.MultieventQuery)
        assert len(q.patterns) == 3
        assert len(q.relationships) == 3
        assert isinstance(q.relationships[0], ast.AttrRel)
        assert isinstance(q.relationships[1], ast.TempRel)
        assert q.relationships[2].kind == "after"
        assert [i.expr.ref for i in q.returns.items] == ["p1", "p2", "p4", "f1"]

    def test_query1_globals(self):
        q = parse(QUERY_1)
        kinds = [type(g).__name__ for g in q.globals]
        assert kinds == ["GlobalConstraint", "TimeWindowSpec"]

    def test_query2_bare_values_and_sort(self):
        q = parse(QUERY_2)
        obj = q.patterns[1].object
        assert obj.entity_id is None
        assert isinstance(obj.constraints, ast.CstrOr)
        assert q.filters.sort.attrs == ("p2", "p1")

    def test_query3_dependency(self):
        q = parse(QUERY_3)
        assert isinstance(q, ast.DependencyQuery)
        assert q.direction == "forward"
        assert len(q.nodes) == 5
        assert [e.direction for e in q.edges] == ["->", "<-", "->", "->"]
        # comma inside brackets means AND
        assert isinstance(q.nodes[0].constraints, ast.CstrAnd)

    def test_query4_anomaly(self):
        q = parse(QUERY_4)
        assert q.is_anomaly
        assert q.sliding_window.window_seconds == 60.0
        assert q.sliding_window.step_seconds == 10.0
        agg = q.returns.items[1].expr
        assert isinstance(agg, ast.ResAgg)
        assert agg.func == "count" and agg.distinct
        assert q.returns.items[1].rename == "freq"
        assert q.filters.having is not None

    def test_query4_history_expression(self):
        q = parse(QUERY_4)
        having = q.filters.having
        assert isinstance(having, ast.BinOp) and having.op == ">"
        names = []

        def walk(n):
            if isinstance(n, ast.Name):
                names.append((n.name, n.history))
            elif isinstance(n, ast.BinOp):
                walk(n.left)
                walk(n.right)

        walk(having)
        assert ("freq", 1) in names and ("freq", 2) in names


class TestGrammarFeatures:
    def test_window_and_step_on_one_line(self):
        q = parse(
            'window = 1 min, step = 10 sec\n(at "01/01/2017")\n'
            "proc p read ip i\nreturn p, count(i) as c\ngroup by p"
        )
        assert q.sliding_window is not None

    def test_window_without_step_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="both"):
            parse("window = 1 min\nproc p read file f\nreturn p")

    def test_temporal_bounds(self):
        q = parse(
            "proc p1 start proc p2 as e1\nproc p3 start proc p4 as e2\n"
            "with e1 before[1-2 min] e2\nreturn p1"
        )
        rel = q.relationships[0]
        assert (rel.low, rel.high) == (60.0, 120.0)

    def test_temporal_bounds_reversed_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="low bound"):
            parse(
                "proc p1 start proc p2 as e1\nproc p3 start proc p4 as e2\n"
                "with e1 before[5-2 min] e2\nreturn p1"
            )

    def test_within_relationship(self):
        q = parse(
            "proc p1 start proc p2 as e1\nproc p3 start proc p4 as e2\n"
            "with e1 within[0-30 sec] e2\nreturn p1"
        )
        assert q.relationships[0].kind == "within"

    def test_in_and_not_in_constraints(self):
        q = parse('proc p[pid in (1, 2, 3)] read file f[name not in ("/a")]\nreturn p')
        subj = q.patterns[0].subject.constraints
        assert subj.comparison.op == "in"
        assert subj.comparison.value == (1, 2, 3)
        obj = q.patterns[0].object.constraints
        assert obj.comparison.op == "not in"

    def test_negated_constraint(self):
        q = parse('proc p[!"%svchost%"] read file f\nreturn p')
        assert isinstance(q.patterns[0].subject.constraints, ast.CstrNot)

    def test_op_expressions(self):
        q = parse("proc p read || write file f\nreturn p")
        assert isinstance(q.patterns[0].operation, ast.OpOr)
        q = parse("proc p !read file f\nreturn p")
        assert isinstance(q.patterns[0].operation, ast.OpNot)

    def test_unknown_operation_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="unknown operation"):
            parse("proc p teleport file f\nreturn p")

    def test_unknown_entity_type_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="expected an event pattern"):
            parse("socket s read file f\nreturn s")

    def test_unknown_object_entity_type_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="unknown entity type"):
            parse("proc p read socket s\nreturn p")

    def test_event_constraints(self):
        q = parse("proc p write ip i as e1[amount > 1000]\nreturn p")
        assert q.patterns[0].event_constraints is not None

    def test_per_pattern_time_window(self):
        q = parse(
            'proc p read file f as e1 (from "01/01/2017" to "01/02/2017")\nreturn p'
        )
        assert q.patterns[0].window.kind == "range"

    def test_return_count_distinct(self):
        q = parse("proc p read file f\nreturn count distinct p")
        assert q.returns.count and q.returns.distinct

    def test_return_count_function_not_flag(self):
        q = parse("proc p read file f\nreturn count(p) as n")
        assert not q.returns.count
        assert isinstance(q.returns.items[0].expr, ast.ResAgg)

    def test_top_and_sort_desc(self):
        q = parse(
            "proc p read file f\nreturn p, count(f) as n\n"
            "group by p\nsort by n desc\ntop 5"
        )
        assert q.filters.top == 5
        assert q.filters.sort.descending

    def test_event_attr_in_return(self):
        q = parse("proc p read file f as e1\nreturn p, e1.optype, e1.amount")
        assert q.returns.items[1].expr.attr == "optype"

    def test_from_to_global_window(self):
        q = parse(
            '(from "01/01/2017" to "01/03/2017")\nproc p read file f\nreturn p'
        )
        spec = q.globals[0]
        assert spec.kind == "range" and spec.end_text == "01/03/2017"

    def test_agentid_in_list_global(self):
        q = parse("agentid in (1, 2)\nproc p read file f\nreturn p")
        assert q.globals[0].comparison.value == (1, 2)

    def test_dependency_requires_edge(self):
        with pytest.raises(AIQLSyntaxError):
            parse("forward: proc p1 return p1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(AIQLSyntaxError, match="end of query"):
            parse("proc p read file f\nreturn p extra")

    def test_parse_many(self):
        queries = parse_many(
            "proc p read file f\nreturn p ; proc q write file g\nreturn q"
        )
        assert len(queries) == 2

    def test_error_message_includes_caret(self):
        try:
            parse("proc p read file f\nreturn")
        except AIQLSyntaxError as exc:
            assert "expected" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected error")
