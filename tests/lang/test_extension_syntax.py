"""Language-level tests for the registry/pipe extension types."""

import pytest

from repro.lang.context import compile_multievent
from repro.lang.errors import AIQLSemanticError
from repro.lang.formatter import format_query
from repro.lang.parser import parse
from repro.model.entities import EntityType
from repro.model.events import Operation


class TestParsing:
    def test_registry_pattern(self):
        q = parse('proc p write reg r["HKCU%Run"]\nreturn p, r')
        assert q.patterns[0].object.type_name == "reg"

    def test_registry_long_keyword(self):
        q = parse('proc p write registry r["HKCU%"]\nreturn p')
        assert q.patterns[0].object.type_name == "registry"

    def test_pipe_pattern_with_attr(self):
        q = parse('proc p read pipe q1[name = "/run/x"]\nreturn p, q1.mode')
        assert q.patterns[0].object.type_name == "pipe"


class TestCompilation:
    def test_registry_default_attribute(self):
        ctx = compile_multievent(parse('proc p write reg["%Run"]\nreturn p'))
        flt = ctx.patterns[0].filter
        assert flt.object_type is EntityType.REGISTRY
        leaves = flt.object_pred.leaves()
        assert leaves[0].attr == "key"

    def test_pipe_operations_validated(self):
        with pytest.raises(AIQLSemanticError, match="invalid for"):
            compile_multievent(parse("proc p connect pipe q\nreturn p"))

    def test_registry_delete_allowed(self):
        ctx = compile_multievent(parse("proc p delete reg r\nreturn p"))
        assert ctx.patterns[0].filter.operations == frozenset(
            {Operation.DELETE}
        )

    def test_value_name_attribute(self):
        ctx = compile_multievent(
            parse('proc p write reg r[value_name = "evil"]\nreturn p, r')
        )
        leaves = ctx.patterns[0].filter.object_pred.leaves()
        assert leaves[0].attr == "value_name"

    def test_invalid_registry_attribute(self):
        with pytest.raises(AIQLSemanticError, match="no attribute"):
            compile_multievent(
                parse('proc p write reg r[dst_ip = "x"]\nreturn p')
            )


class TestFormatterRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            'proc p write reg r["HKCU%Run"] as e1\nreturn p, r',
            'proc p read pipe q1[name = "/run/x"] as e1\nreturn p, q1.mode',
            'agentid = 1\nproc p["%evil%"] write reg r1["%Run"] as e1\n'
            "proc p start proc c as e2\nwith e1 before e2\nreturn p, r1, c",
        ],
    )
    def test_round_trip(self, text):
        first = parse(text)
        formatted = format_query(first)
        second = parse(formatted)
        assert len(first.patterns) == len(second.patterns)
        assert format_query(second) == formatted
