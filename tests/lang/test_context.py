"""Semantic compiler tests: QueryContext construction and validation."""

import pytest

from repro.lang.context import compile_multievent
from repro.lang.errors import AIQLSemanticError
from repro.lang.parser import parse
from repro.model.entities import EntityType
from repro.model.events import Operation
from repro.model.time import DAY


def compile_text(text):
    return compile_multievent(parse(text))


class TestPatternCompilation:
    def test_operations_set(self):
        ctx = compile_text("proc p read || write file f\nreturn p")
        assert ctx.patterns[0].filter.operations == frozenset(
            {Operation.READ, Operation.WRITE}
        )

    def test_negated_operation(self):
        ctx = compile_text("proc p !read file f\nreturn p")
        ops = ctx.patterns[0].filter.operations
        assert Operation.READ not in ops
        assert Operation.WRITE in ops

    def test_start_on_ip_becomes_connect(self):
        # paper Query 1: proc p3 start ip ipp[dstport = 4444]
        ctx = compile_text("proc p start ip i[dstport = 4444]\nreturn p")
        assert ctx.patterns[0].filter.operations == frozenset(
            {Operation.CONNECT}
        )

    def test_illegal_operation_for_object(self):
        with pytest.raises(AIQLSemanticError, match="invalid for"):
            compile_text("proc p connect file f\nreturn p")

    def test_contradictory_operation_expression(self):
        with pytest.raises(AIQLSemanticError, match="no operation"):
            compile_text("proc p read && write file f\nreturn p")

    def test_subject_must_be_process(self):
        with pytest.raises(AIQLSemanticError, match="must be processes"):
            compile_text("file f read file g\nreturn f")

    def test_object_type_recorded(self):
        ctx = compile_text("proc p connect ip i\nreturn p")
        assert ctx.patterns[0].object_type is EntityType.NETWORK

    def test_pruning_score_counts_constraints(self):
        ctx = compile_text(
            'agentid = 1\n(at "01/01/2017")\n'
            'proc p["%cmd%"] start proc q["%osql%"]\nreturn p'
        )
        # agent + window + ops + object_type + 2 predicates = 6
        assert ctx.patterns[0].score == 6

    def test_duplicate_event_id_rejected(self):
        with pytest.raises(AIQLSemanticError, match="two patterns"):
            compile_text(
                "proc p read file f as e1\nproc q write file g as e1\nreturn p"
            )


class TestSpatialTemporal:
    def test_global_agent_extraction(self):
        ctx = compile_text("agentid = 7\nproc p read file f\nreturn p")
        assert ctx.agent_ids == frozenset({7})
        assert ctx.patterns[0].filter.agent_ids == frozenset({7})

    def test_agent_in_list(self):
        ctx = compile_text("agentid in (1, 2)\nproc p read file f\nreturn p")
        assert ctx.agent_ids == frozenset({1, 2})

    def test_pattern_level_agent_constraint(self):
        ctx = compile_text("proc p[agentid = 4] read file f\nreturn p")
        assert ctx.patterns[0].filter.agent_ids == frozenset({4})
        assert ctx.agent_ids is None  # not global

    def test_global_and_pattern_agents_intersect(self):
        ctx = compile_text(
            "agentid in (3, 4)\nproc p[agentid = 4] read file f\nreturn p"
        )
        assert ctx.patterns[0].filter.agent_ids == frozenset({4})

    def test_at_window_covers_day(self):
        ctx = compile_text('(at "01/05/2017")\nproc p read file f\nreturn p')
        assert ctx.window.end - ctx.window.start == DAY

    def test_pattern_window_intersects_global(self):
        ctx = compile_text(
            '(from "01/01/2017" to "01/10/2017")\n'
            'proc p read file f (from "01/04/2017" to "01/20/2017")\nreturn p'
        )
        flt = ctx.patterns[0].filter
        assert flt.window.start > ctx.window.start
        assert flt.window.end == ctx.window.end


class TestRelationships:
    def test_explicit_attr_rel(self):
        ctx = compile_text(
            "proc p1 start proc p2 as e1\nproc p3 read file f as e2\n"
            "with p2 = p3\nreturn p1"
        )
        rel = ctx.attr_relationships[0]
        assert rel.left.attr == "id" and rel.right.attr == "id"
        assert {rel.left.pattern, rel.right.pattern} == {0, 1}

    def test_entity_reuse_creates_implicit_join(self):
        ctx = compile_text(
            "proc p1 write file f1 as e1\nproc p1 read ip i1 as e2\nreturn p1"
        )
        assert len(ctx.attr_relationships) == 1
        rel = ctx.attr_relationships[0]
        assert rel.left.role == "subject" and rel.right.role == "subject"

    def test_temporal_rel_resolution(self):
        ctx = compile_text(
            "proc p1 start proc p2 as e1\nproc p3 read file f as e2\n"
            "with e1 before e2\nreturn p1"
        )
        rel = ctx.temp_relationships[0]
        assert (rel.left, rel.right, rel.kind) == (0, 1, "before")

    def test_unknown_entity_in_rel(self):
        with pytest.raises(AIQLSemanticError, match="unknown entity"):
            compile_text(
                "proc p1 read file f as e1\nwith p9 = p1\nreturn p1"
            )

    def test_unknown_event_in_rel(self):
        with pytest.raises(AIQLSemanticError, match="unknown event"):
            compile_text(
                "proc p1 read file f as e1\nwith e1 before e9\nreturn p1"
            )

    def test_cross_entity_attr_rel(self):
        ctx = compile_text(
            "proc p1 connect ip i1 as e1\nproc p2 connect ip i2 as e2\n"
            "with i1.dst_ip = i2.dst_ip\nreturn p1"
        )
        rel = ctx.attr_relationships[0]
        assert rel.left.attr == "dst_ip"


class TestValidation:
    def test_invalid_entity_attribute(self):
        with pytest.raises(AIQLSemanticError, match="no attribute"):
            compile_text('proc p[dstip = "1.2.3.4"] read file f\nreturn p')

    def test_invalid_event_attribute(self):
        with pytest.raises(AIQLSemanticError, match="no attribute"):
            compile_text("proc p read file f as e1[color = 3]\nreturn p")

    def test_having_references_validated(self):
        with pytest.raises(AIQLSemanticError, match="unknown result"):
            compile_text(
                "proc p read file f\nreturn p, count(f) as n\n"
                "group by p\nhaving bogus > 1"
            )

    def test_sort_references_validated(self):
        with pytest.raises(AIQLSemanticError, match="unknown result"):
            compile_text("proc p read file f\nreturn p\nsort by zz")

    def test_history_requires_sliding_window(self):
        with pytest.raises(AIQLSemanticError, match="sliding window"):
            compile_text(
                "proc p read file f\nreturn p, count(f) as n\ngroup by p\n"
                "having n > n[1]"
            )

    def test_anomaly_requires_bounded_window(self):
        with pytest.raises(AIQLSemanticError, match="bounded"):
            compile_text(
                "window = 1 min, step = 10 sec\n"
                "proc p read file f\nreturn p, count(f) as n\ngroup by p"
            )

    def test_anomaly_kind_detected(self):
        ctx = compile_text(
            '(at "01/01/2017")\nwindow = 1 min, step = 10 sec\n'
            "proc p read file f\nreturn p, count(f) as n\ngroup by p"
        )
        assert ctx.kind == "anomaly"

    def test_labels_property(self):
        ctx = compile_text("proc p read file f\nreturn p, f.owner")
        assert ctx.labels == ("p", "f.owner")
