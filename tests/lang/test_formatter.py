"""Round-trip tests: parse -> format -> parse is structurally stable."""

import pytest

from repro.lang.formatter import format_query
from repro.lang.parser import parse
from repro.workload.corpus import ALL_QUERIES


def normalize(tree):
    """Re-parse the formatted text; compare pattern/relationship shapes."""
    return tree


class TestRoundTrip:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.qid)
    def test_corpus_round_trips(self, query):
        first = parse(query.text)
        formatted = format_query(first)
        second = parse(formatted)
        assert type(first) is type(second)
        if hasattr(first, "patterns"):
            assert len(first.patterns) == len(second.patterns)
            assert len(first.relationships) == len(second.relationships)
            for a, b in zip(first.patterns, second.patterns):
                assert a.subject.type_name == b.subject.type_name
                assert a.object.type_name == b.object.type_name
                assert a.event_id == b.event_id
        else:
            assert len(first.nodes) == len(second.nodes)
            assert [e.direction for e in first.edges] == [
                e.direction for e in second.edges
            ]
        assert len(first.returns.items) == len(second.returns.items)
        assert first.returns.count == second.returns.count
        assert first.returns.distinct == second.returns.distinct

    def test_second_format_is_fixpoint(self):
        from repro.workload.corpus import by_id

        text = by_id("c4-8").text
        once = format_query(parse(text))
        twice = format_query(parse(once))
        assert once == twice

    def test_formats_temporal_bounds(self):
        q = parse(
            "proc p1 start proc p2 as e1\nproc p3 start proc p4 as e2\n"
            "with e1 before[60-120 sec] e2\nreturn p1"
        )
        text = format_query(q)
        assert "before[60-120 sec]" in text
        again = parse(text)
        assert again.relationships[0].low == 60.0
        assert again.relationships[0].high == 120.0

    def test_formats_sliding_window(self):
        q = parse(
            '(at "01/01/2017")\nwindow = 1 min, step = 10 sec\n'
            "proc p read ip i\nreturn p, count(distinct i) as freq\ngroup by p"
        )
        text = format_query(q)
        assert "window = 1 min" in text and "step = 10 sec" in text
