"""Conciseness metric tests (paper Sec. 6.4, Fig. 8, Table 5)."""

import pytest

from repro.baselines.conciseness import (
    compare,
    count_aiql_constraints,
    improvement_table,
    text_metrics,
    translate_all,
)
from repro.lang.parser import parse
from repro.workload.corpus import CONCISENESS_QUERY_IDS, by_id


class TestTextMetrics:
    def test_words_and_characters(self):
        words, chars = text_metrics("return p1, p2")
        assert words == 3
        assert chars == len("returnp1,p2")

    def test_comments_stripped(self):
        words, chars = text_metrics("agentid = 1 // host id\nreturn p")
        assert words == 5  # agentid = 1 return p


class TestAiqlConstraintCount:
    def test_query2_count(self):
        q = parse(by_id("s1").text)
        # agentid, window, 2 ops, 2 bare values, 2 rels = 8
        assert count_aiql_constraints(q) == 8

    def test_counts_sliding_window_as_two(self):
        q = parse(by_id("s5").text)
        count = count_aiql_constraints(q)
        # agentid + window-spec(2) + op + dstip + having + window-literal
        assert count >= 6

    def test_dependency_counts_edges(self):
        q = parse(by_id("d3").text)
        assert count_aiql_constraints(q) >= 8


class TestComparisons:
    @pytest.mark.parametrize("qid", CONCISENESS_QUERY_IDS)
    def test_aiql_most_concise_everywhere(self, qid):
        """Fig. 8: AIQL wins all three metrics on all behaviors."""
        rows = {r.language: r for r in compare(qid, by_id(qid).text)}
        aiql = rows["aiql"]
        for lang in ("sql", "cypher", "spl"):
            assert rows[lang].constraints >= aiql.constraints, (qid, lang)
            assert rows[lang].words > aiql.words, (qid, lang)
            assert rows[lang].characters > aiql.characters, (qid, lang)

    def test_improvement_table_shape(self):
        rows = []
        for qid in CONCISENESS_QUERY_IDS:
            rows.extend(compare(qid, by_id(qid).text))
        table = improvement_table(rows)
        # Table 5 shape: every ratio > 1, SQL most verbose in words/chars
        for lang in ("sql", "cypher", "spl"):
            for metric in ("constraints", "words", "characters"):
                assert table[lang][metric] > 1.0
        assert table["sql"]["characters"] > table["cypher"]["characters"]

    def test_c48_is_largest_aiql_query(self):
        """Sec. 6.2.2: c4-8 is the biggest case-study query (7 patterns)."""
        translated = translate_all(by_id("c4-8").text)
        aiql = translated["aiql"]
        sql = translated["sql"]
        assert sql.constraints / aiql.constraints > 2.0
        w_aiql, c_aiql = text_metrics(aiql.text)
        w_sql, c_sql = text_metrics(sql.text)
        assert w_sql / w_aiql > 3.0
        assert c_sql / c_aiql > 3.5

    def test_translate_all_has_four_languages(self):
        translated = translate_all(by_id("a1").text)
        assert set(translated) == {"aiql", "sql", "cypher", "spl"}
