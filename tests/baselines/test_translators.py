"""SQL/Cypher/SPL translation tests."""

import pytest

from repro.baselines.translators import to_cypher, to_spl, to_sql
from repro.lang.errors import AIQLSemanticError
from repro.workload.corpus import CONCISENESS_QUERY_IDS, by_id
from tests.conftest import compile_text

C48 = by_id("c4-8").text


class TestSqlGeneration:
    def test_structure(self):
        sql = to_sql(compile_text(C48))
        assert sql.text.startswith("SELECT DISTINCT")
        assert "FROM events e1" in sql.text
        assert "JOIN processes s1 ON e1.subject_id = s1.id" in sql.text
        assert "WHERE" in sql.text

    def test_like_for_wildcards(self):
        sql = to_sql(compile_text(C48))
        assert "LIKE '%sqlservr.exe'" in sql.text

    def test_temporal_becomes_time_comparison(self):
        sql = to_sql(compile_text(C48))
        assert "e1.start_time < e2.start_time" in sql.text

    def test_spatial_repeated_per_alias(self):
        sql = to_sql(compile_text(C48))
        # 7 patterns -> the agent constraint appears once per events alias
        assert sql.text.count(".agent_id = 3") == 7

    def test_group_by_having(self):
        sql = to_sql(compile_text(by_id("s3").text))
        assert "GROUP BY" in sql.text
        assert "HAVING" in sql.text

    def test_order_and_limit(self):
        text = (
            'agentid = 1\nproc p read file f\nreturn p\nsort by p desc\ntop 5'
        )
        sql = to_sql(compile_text(text))
        assert "ORDER BY p DESC" in sql.text
        assert "LIMIT 5" in sql.text

    def test_in_list_rendering(self):
        text = 'proc p[pid in (1, 2)] read file f\nreturn p'
        sql = to_sql(compile_text(text))
        assert "s1.pid IN (1, 2)" in sql.text

    def test_anomaly_untranslatable(self):
        with pytest.raises(AIQLSemanticError, match="sliding windows"):
            to_sql(compile_text(by_id("s5").text))

    def test_constraint_count_positive(self):
        assert to_sql(compile_text(C48)).constraints > 20


class TestCypherGeneration:
    def test_structure(self):
        cypher = to_cypher(compile_text(C48))
        assert cypher.text.startswith("MATCH")
        assert "RETURN DISTINCT" in cypher.text
        assert "-[evt1:EVENT]->" in cypher.text

    def test_node_reuse_for_shared_entities(self):
        cypher = to_cypher(compile_text(C48))
        # p1 (wscript) appears in several patterns but is declared once
        assert cypher.text.count("(p1:Process)") == 1

    def test_regex_for_wildcards(self):
        cypher = to_cypher(compile_text(C48))
        assert "=~" in cypher.text

    def test_terser_than_sql(self):
        ctx = compile_text(C48)
        assert to_cypher(ctx).constraints < to_sql(ctx).constraints

    def test_anomaly_untranslatable(self):
        with pytest.raises(AIQLSemanticError):
            to_cypher(compile_text(by_id("s6").text))


class TestSplGeneration:
    def test_structure(self):
        spl = to_spl(compile_text(C48))
        assert spl.text.startswith("search index=sysmon")
        assert "| join" in spl.text
        assert "| where" in spl.text

    def test_one_join_per_extra_pattern(self):
        spl = to_spl(compile_text(C48))
        assert spl.text.count("| join") == 6  # 7 patterns

    def test_wildcards_become_stars(self):
        spl = to_spl(compile_text(C48))
        assert '"*sqlservr.exe"' in spl.text

    def test_stats_for_aggregates(self):
        spl = to_spl(compile_text(by_id("s3").text))
        assert "| stats dc(" in spl.text

    def test_anomaly_untranslatable(self):
        with pytest.raises(AIQLSemanticError):
            to_spl(compile_text(by_id("s5").text))


class TestWholeCorpus:
    @pytest.mark.parametrize("qid", CONCISENESS_QUERY_IDS)
    def test_all_three_languages_generate(self, qid):
        ctx = compile_text(by_id(qid).text)
        for translate in (to_sql, to_cypher, to_spl):
            translated = translate(ctx)
            assert translated.text
            assert translated.constraints > 0
            assert translated.words > 0
            assert translated.characters > 0
