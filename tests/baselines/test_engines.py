"""Baseline engines must return exactly the AIQL engine's results."""

import pytest

from repro.baselines.graph import GraphEngine, GraphStore
from repro.baselines.mpp import aiql_parallel_engine, greenplum_engine
from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.executor import MultieventExecutor
from repro.workload.corpus import CASE_STUDY_QUERIES, PERFORMANCE_QUERIES
from tests.conftest import compile_text

NON_ANOMALY = [
    q for q in CASE_STUDY_QUERIES + PERFORMANCE_QUERIES if q.kind != "anomaly"
]
SAMPLE = [q for q in NON_ANOMALY if q.qid in (
    "c1-1", "c2-5", "c2-8", "c3-2", "c4-4", "c4-8", "c5-2", "c5-7",
    "a2", "a5", "d1", "d3", "v1", "v4", "s1", "s3", "s4",
)]


@pytest.fixture(scope="module")
def engines(enterprise):
    flat = enterprise.store("flat")
    graph = GraphStore.from_events(enterprise.registry, iter(flat))
    return {
        "aiql": MultieventExecutor(enterprise.store("partitioned")),
        "postgres": MonolithicJoinEngine(flat),
        "postgres_sched": MonolithicJoinEngine(enterprise.store("partitioned")),
        "neo4j": GraphEngine(graph),
        "greenplum": greenplum_engine(enterprise.store("segmented_arrival")),
        "aiql_parallel": aiql_parallel_engine(
            enterprise.store("segmented_domain")
        ),
    }


class TestResultEquivalence:
    @pytest.mark.parametrize("query", SAMPLE, ids=lambda q: q.qid)
    def test_all_engines_agree(self, engines, query):
        ctx = compile_text(query.text)
        reference = set(engines["aiql"].run(ctx).rows)
        for name in ("postgres", "postgres_sched", "neo4j", "greenplum",
                     "aiql_parallel"):
            got = set(engines[name].run(ctx).rows)
            assert got == reference, f"{name} disagrees on {query.qid}"

    @pytest.mark.parametrize("query", NON_ANOMALY, ids=lambda q: q.qid)
    def test_postgres_full_corpus(self, engines, query):
        ctx = compile_text(query.text)
        assert set(engines["postgres"].run(ctx).rows) == set(
            engines["aiql"].run(ctx).rows
        )


class TestCostAsymmetry:
    """The baselines must *fetch more* than relationship scheduling —
    the mechanism behind the paper's Figs. 5-6 speedups."""

    def test_postgres_fetches_at_least_as_much(self, engines):
        query = next(q for q in NON_ANOMALY if q.qid == "c5-7")
        ctx = compile_text(query.text)
        engines["aiql"].run(ctx)
        engines["postgres_sched"].run(ctx)
        aiql_fetched = engines["aiql"].last_stats.events_fetched
        pg_fetched = engines["postgres_sched"].last_stats.events_fetched
        assert pg_fetched >= aiql_fetched

    def test_graph_scans_more_edges_than_aiql_fetches(self, engines):
        query = next(q for q in NON_ANOMALY if q.qid == "c4-8")
        ctx = compile_text(query.text)
        engines["aiql"].run(ctx)
        engines["neo4j"].run(ctx)
        assert (
            engines["neo4j"].last_stats.events_fetched
            > engines["aiql"].last_stats.events_fetched
        )


class TestMppGuards:
    def test_greenplum_requires_arrival(self, enterprise):
        with pytest.raises(ValueError, match="arrival"):
            greenplum_engine(enterprise.store("segmented_domain"))

    def test_aiql_parallel_requires_domain(self, enterprise):
        with pytest.raises(ValueError, match="domain"):
            aiql_parallel_engine(enterprise.store("segmented_arrival"))


class TestGraphStore:
    def test_edge_counts(self, enterprise):
        flat = enterprise.store("flat")
        graph = GraphStore.from_events(enterprise.registry, iter(flat))
        assert len(graph) == len(flat)

    def test_adjacency_lists(self, enterprise):
        flat = enterprise.store("flat")
        graph = GraphStore.from_events(enterprise.registry, iter(flat))
        event = next(iter(flat))
        assert any(
            graph.edges[i] is event
            for i in graph.out_edges[event.subject_id]
        )
