"""Tests for investigation sessions and the system facade helpers."""

import pytest

from repro.core.investigate import InvestigationSession
from repro.core.system import AIQLSystem
from repro.workload.corpus import by_id


@pytest.fixture(scope="module")
def session_system(enterprise):
    return AIQLSystem.over(
        enterprise.store("partitioned"), ingestor=enterprise.ingestor
    )


class TestAIQLSystemOver:
    def test_wraps_populated_store(self, enterprise, session_system):
        assert session_system.stats()["events"] == len(
            enterprise.store("partitioned")
        )

    def test_queries_see_existing_data(self, session_system):
        result = session_system.query(by_id("c5-7").text)
        assert len(result) == 1

    def test_anomaly_dispatch(self, session_system):
        result = session_system.query(by_id("c5-anomaly").text)
        assert "sbblv.exe" in result.column("p")

    def test_dependency_dispatch(self, session_system):
        result = session_system.query(by_id("d3").text)
        assert len(result) >= 1


class TestInvestigationSession:
    def test_records_steps_and_timing(self, session_system):
        session = InvestigationSession(system=session_system, name="t")
        session.run("starter", by_id("c5-1").text)
        session.run("refine", by_id("c5-3").text, note="drill-down")
        assert len(session.steps) == 2
        assert session.steps[0].rows >= 1
        assert session.steps[1].note == "drill-down"
        assert session.total_seconds > 0

    def test_findings_accumulate_across_steps(self, session_system):
        session = InvestigationSession(system=session_system)
        session.run("starter", by_id("c5-1").text)
        assert "sbblv.exe" in session.finding("p1")
        session.run("refine", by_id("c5-3").text)
        assert "sqlservr.exe" in session.finding("p3")
        # earlier findings are kept
        assert "sbblv.exe" in session.finding("p1")

    def test_unknown_finding_is_empty(self, session_system):
        session = InvestigationSession(system=session_system)
        assert session.finding("nothing") == set()

    def test_report_renders(self, session_system):
        session = InvestigationSession(system=session_system, name="demo")
        session.run("starter", by_id("c5-1").text, note="from the alert")
        report = session.report()
        assert "demo" in report
        assert "starter" in report
        assert "from the alert" in report
        assert "1 queries" in report
