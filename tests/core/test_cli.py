"""CLI tests (argument wiring + non-interactive paths)."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_subcommands_exist(self):
        parser = make_parser()
        for argv in (
            ["demo", "--query", "x"],
            ["explain", "--query", "x"],
            ["corpus"],
            ["translate", "--query", "x"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])


class TestExplain:
    def test_explain_query(self, capsys):
        rc = main(
            ["explain", "--query", 'agentid = 1\nproc p["%cmd%"] start proc q\nreturn p']
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "score=" in out

    def test_explain_syntax_error(self, capsys):
        rc = main(["explain", "--query", "proc p read"])
        assert rc == 1
        assert "syntax error" in capsys.readouterr().err


class TestTranslate:
    QUERY = (
        'agentid = 1\nproc p1["%cmd%"] start proc p2 as e1\n'
        "proc p2 read file f1 as e2\nwith e1 before e2\nreturn p1, f1"
    )

    def test_all_languages(self, capsys):
        rc = main(["translate", "--query", self.QUERY])
        out = capsys.readouterr().out
        assert rc == 0
        for marker in ("=== AIQL", "=== SQL", "=== CYPHER", "=== SPL"):
            assert marker in out

    def test_single_language(self, capsys):
        rc = main(["translate", "--query", self.QUERY, "--language", "sql"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "=== SQL" in out
        assert "=== CYPHER" not in out

    def test_semantic_error_reported(self, capsys):
        rc = main(["translate", "--query", "proc p teleport file f\nreturn p"])
        assert rc == 1


class TestCorpus:
    def test_list(self, capsys):
        rc = main(["corpus"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "c4-8" in out and "s5" in out

    def test_show(self, capsys):
        rc = main(["corpus", "--show", "c5-7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sbblv.exe" in out


class TestWatch:
    """corpus --watch: standing queries over the live replay stream."""

    def test_watch_parser_wiring(self):
        args = make_parser().parse_args(
            ["corpus", "--run", "--live", "100", "--watch", "q"]
        )
        assert args.watch == "q"

    def test_watch_requires_run_and_live(self, capsys):
        for argv in (
            ["corpus", "--watch", "q"],
            ["corpus", "--run", "--watch", "q"],
        ):
            rc = main(argv)
            assert rc == 2
            assert "--watch requires" in capsys.readouterr().err

    @staticmethod
    def _synchronous_replay(monkeypatch, max_events=600):
        """Make LiveReplay.start stream a fixed burst synchronously.

        The real replay runs on a thread; a fast corpus leg could stop it
        before anything commits, making alert assertions racy.
        """
        from repro.workload import live as live_mod

        orig_stream = live_mod.LiveReplay.stream

        def sync_start(self, _max_events=None):
            stats = orig_stream(self, max_events=max_events)

            class Handle:
                def stop(self, timeout=30.0):
                    return stats

            return Handle()

        monkeypatch.setattr(live_mod.LiveReplay, "start", sync_start)

    def test_watch_alerts_on_live_stream(self, capsys, monkeypatch):
        from repro.workload import corpus as corpus_mod

        # One tiny corpus query keeps the --run leg fast; min_rows=0 so
        # the exit code reflects only the machinery under test.
        tiny = (
            corpus_mod.CorpusQuery(
                "t1",
                "c1",
                "multievent",
                "agentid = 1\nproc p1 start proc p2\nreturn p1, p2",
                min_rows=0,
            ),
        )
        monkeypatch.setattr(corpus_mod, "ALL_QUERIES", tiny)
        self._synchronous_replay(monkeypatch)
        rc = main(
            [
                "corpus", "--run", "--rate", "10", "--live", "100000",
                "--watch", "proc p1 write file f1 as evt1\nreturn p1, f1",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "standing query 'watch' registered" in captured.err
        assert "ALERT watch:" in captured.out
        assert "alert(s)" in captured.err

    def test_watch_rejects_bad_query_cleanly(self, capsys, monkeypatch):
        from repro.workload import corpus as corpus_mod

        monkeypatch.setattr(corpus_mod, "ALL_QUERIES", ())
        rc = main(
            ["corpus", "--run", "--rate", "10", "--live", "100",
             "--watch", "proc p1 ("]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "--watch:" in err

    def test_watch_accepts_corpus_qid(self, capsys, monkeypatch):
        from repro.workload import corpus as corpus_mod

        tiny = (
            corpus_mod.CorpusQuery(
                "t1",
                "c1",
                "multievent",
                "proc p1 write file f1 as evt1\nreturn p1, f1",
                min_rows=0,
            ),
        )
        monkeypatch.setattr(corpus_mod, "ALL_QUERIES", tiny)
        rc = main(
            ["corpus", "--run", "--rate", "10", "--live", "2000",
             "--watch", "t1"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "standing query 't1' registered" in captured.err


class TestShardedCorpus:
    """corpus --shards N: the multi-process deployment behind the CLI."""

    def test_parser_wiring(self):
        args = make_parser().parse_args(["corpus", "--run", "--shards", "2"])
        assert args.shards == 2
        assert make_parser().parse_args(["corpus"]).shards == 0

    def test_negative_shards_rejected(self, capsys):
        rc = main(["corpus", "--run", "--shards", "-1"])
        assert rc == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_run_answers_the_corpus(self, capsys, monkeypatch):
        from repro.workload import corpus as corpus_mod

        tiny = (
            corpus_mod.CorpusQuery(
                "t1",
                "c1",
                "multievent",
                "agentid = 1\nproc p1 start proc p2\nreturn p1, p2",
                min_rows=1,
            ),
        )
        monkeypatch.setattr(corpus_mod, "ALL_QUERIES", tiny)
        rc = main(["corpus", "--run", "--rate", "10", "--shards", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "sharded across 2 worker process(es)" in captured.err
        assert "across 2 shard(s)" in captured.err
        assert "t1" in captured.out and "ok" in captured.out


class TestDemoNonInteractive:
    def test_demo_query(self, capsys):
        rc = main(
            [
                "demo",
                "--rate",
                "20",
                "--query",
                '(at "01/05/2017")\nagentid = 3\n'
                'proc p1["%cmd.exe"] start proc p2["%osql.exe"]\n'
                "return distinct p1, p2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "osql.exe" in out

    def test_demo_bad_query(self, capsys):
        rc = main(["demo", "--rate", "20", "--query", "nonsense ((("])
        assert rc == 1


class TestTieredStorageCommands:
    """archive / recover subcommands and durable corpus runs."""

    @staticmethod
    def _populate(data_dir):
        from repro.core.config import SystemConfig
        from repro.core.system import AIQLSystem
        from repro.workload.loader import build_enterprise

        system = AIQLSystem(
            SystemConfig(data_dir=str(data_dir), compact_interval_s=3600)
        )
        build_enterprise(
            stores=(),
            ingestor=system.ingestor,
            events_per_host_day=10,
            days=6,
            inject_attacks=False,
            stream_batch_size=64,
        )
        total = system.ingestor.events_ingested
        del system  # crash: recovery paths below must rebuild everything
        return total

    def test_parser_wiring(self):
        parser = make_parser()
        for argv in (
            ["archive", "--data-dir", "d", "--retention", "2"],
            ["recover", "--data-dir", "d"],
            ["corpus", "--run", "--data-dir", "d", "--retention", "2"],
        ):
            assert callable(parser.parse_args(argv).func)

    def test_recover_reports_the_stream(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        total = self._populate(data_dir)
        rc = main(["recover", "--data-dir", str(data_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"recovered {total} event(s)" in out
        assert "wal replay" in out

    def test_archive_compacts_and_checkpoints(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        self._populate(data_dir)
        rc = main(
            ["archive", "--data-dir", str(data_dir), "--retention", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "compacted" in out and "cold segment" in out
        assert "WAL reset" in out

    def test_archive_without_retention_fails(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        self._populate(data_dir)
        rc = main(["archive", "--data-dir", str(data_dir)])
        assert rc == 2
        assert "--retention" in capsys.readouterr().err

    def test_recover_runs_a_query(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        self._populate(data_dir)
        rc = main([
            "recover", "--data-dir", str(data_dir),
            "--query", "agentid = 1\nproc p1 start proc p2\nreturn p1, p2",
        ])
        assert rc == 0
        assert "row(s)" in capsys.readouterr().out
