"""RetryPolicy: backoff schedule shape, bounds and retry_call semantics."""

import random

import pytest

from repro.core.retry import RetryPolicy, retry_call


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay_s": -0.1},
            {"max_delay_s": 0.01, "base_delay_s": 0.05},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestDelays:
    def test_count_is_attempts_minus_one(self):
        for attempts in (1, 2, 5):
            policy = RetryPolicy(attempts=attempts)
            assert len(list(policy.delays(random.Random(0)))) == attempts - 1

    def test_deterministic_with_seeded_rng(self):
        policy = RetryPolicy(attempts=6)
        first = list(policy.delays(random.Random(7)))
        second = list(policy.delays(random.Random(7)))
        assert first == second

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, max_delay_s=10.0, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4])

    def test_cap_applies(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=1.0, max_delay_s=2.0, jitter=0.0
        )
        assert max(policy.delays()) == pytest.approx(2.0)

    def test_max_total_delay_bounds_any_draw(self):
        policy = RetryPolicy(attempts=5)
        for seed in range(20):
            total = sum(policy.delays(random.Random(seed)))
            assert total <= policy.max_total_delay_s + 1e-9


class TestRetryCall:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        result = retry_call(lambda: 42, sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        result = retry_call(
            flaky,
            RetryPolicy(attempts=3),
            rng=random.Random(0),
            sleep=lambda _s: None,
        )
        assert result == "done"
        assert len(calls) == 3

    def test_exhaustion_reraises_last_error(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_call(
                always_fails,
                RetryPolicy(attempts=3),
                rng=random.Random(0),
                sleep=lambda _s: None,
            )

    def test_non_retriable_error_fails_fast(self):
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            retry_call(fails, retry_on=(OSError,), sleep=lambda _s: None)
        assert len(calls) == 1

    def test_on_retry_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("again")
            return "ok"

        retry_call(
            flaky,
            RetryPolicy(attempts=3),
            rng=random.Random(0),
            sleep=lambda _s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert [attempt for attempt, _ in seen] == [0, 1]

    def test_single_attempt_policy_never_retries(self):
        calls = []

        def fails():
            calls.append(1)
            raise OSError("once")

        with pytest.raises(OSError):
            retry_call(fails, RetryPolicy(attempts=1), sleep=lambda _s: None)
        assert len(calls) == 1
