"""RFC 6455 WebSocket framing on asyncio streams (stdlib only).

Implements the handshake and the frame codec for both roles — the alert
push endpoint of :mod:`repro.server.app` (server) and the load harness /
``examples/client.py`` (client).  Text frames carry
:mod:`repro.api` JSON messages; ping/pong and close are handled inside
:meth:`WebSocket.recv_text` so callers only ever see text payloads.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from typing import Dict, Optional, Tuple

from repro.server.http import CRLF, HttpProtocolError, HttpRequest

WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

MAX_FRAME_BYTES = 8 * 1024 * 1024


class WebSocketError(Exception):
    """Protocol violation on an established socket."""


def accept_key(client_key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's nonce."""
    digest = hashlib.sha1((client_key + WS_MAGIC).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def is_upgrade(request: HttpRequest) -> bool:
    return (
        "upgrade" in request.header("connection").lower()
        and request.header("upgrade").lower() == "websocket"
    )


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One final frame (no fragmentation — our messages are small)."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head.extend(struct.pack("!H", length))
    else:
        head.append(mask_bit | 127)
        head.extend(struct.pack("!Q", length))
    if mask:
        key = os.urandom(4)
        head.extend(key)
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``."""
    head = await reader.readexactly(2)
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin and opcode not in (OP_CONT,):
        raise WebSocketError("fragmented messages unsupported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > MAX_FRAME_BYTES:
        raise WebSocketError(f"frame over {MAX_FRAME_BYTES} bytes")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


class WebSocket:
    """One established connection; ``client`` masks outbound frames."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client: bool = False,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._client = client
        self.closed = False

    async def send_text(self, text: str) -> None:
        if self.closed:
            raise WebSocketError("socket closed")
        self._writer.write(
            encode_frame(OP_TEXT, text.encode("utf-8"), mask=self._client)
        )
        await self._writer.drain()

    async def recv_text(self) -> Optional[str]:
        """Next text payload; ``None`` once the peer closed.

        Control frames are handled transparently: pings are ponged,
        pongs ignored, close is acknowledged and surfaces as ``None``.
        """
        while True:
            if self.closed:
                return None
            try:
                opcode, payload = await read_frame(self._reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                self.closed = True
                return None
            if opcode == OP_TEXT:
                return payload.decode("utf-8")
            if opcode == OP_PING:
                self._writer.write(
                    encode_frame(OP_PONG, payload, mask=self._client)
                )
                await self._writer.drain()
            elif opcode == OP_CLOSE:
                await self.close(echo=payload)
                return None
            elif opcode in (OP_PONG, OP_CONT, OP_BINARY):
                continue
            else:
                raise WebSocketError(f"unexpected opcode {opcode:#x}")

    async def close(self, echo: bytes = b"", code: int = 1000) -> None:
        if self.closed:
            return
        self.closed = True
        payload = echo if echo else struct.pack("!H", code)
        try:
            self._writer.write(
                encode_frame(OP_CLOSE, payload, mask=self._client)
            )
            await self._writer.drain()
        except (ConnectionError, RuntimeError):
            pass


async def server_handshake(
    request: HttpRequest,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> "WebSocket":
    """Answer an upgrade request; returns the established socket."""
    key = request.header("sec-websocket-key")
    if not key or request.header("sec-websocket-version") != "13":
        raise HttpProtocolError(400, "malformed websocket upgrade")
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {accept_key(key)}",
    ]
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    return WebSocket(reader, writer, client=False)


async def connect(
    host: str,
    port: int,
    path: str = "/v1/alerts",
    headers: Optional[Dict[str, str]] = None,
) -> "WebSocket":
    """Client-side: open a TCP connection and upgrade it."""
    reader, writer = await asyncio.open_connection(host, port)
    nonce = base64.b64encode(os.urandom(16)).decode("ascii")
    lines = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Key: {nonce}",
        "Sec-WebSocket-Version: 13",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    status_line = await reader.readuntil(CRLF)
    parts = status_line.decode("latin-1").split()
    if len(parts) < 2 or parts[1] != "101":
        raise WebSocketError(f"upgrade refused: {status_line!r}")
    expected = accept_key(nonce).encode("ascii")
    accepted = False
    while True:
        line = await reader.readuntil(CRLF)
        if line == CRLF:
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accepted = value.strip().encode("ascii") == expected
    if not accepted:
        raise WebSocketError("handshake accept key mismatch")
    return WebSocket(reader, writer, client=True)
