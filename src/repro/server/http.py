"""Minimal HTTP/1.1 on asyncio streams (stdlib only).

Just enough protocol for the AIQL network front door: request parsing
with header/body limits, keep-alive, fixed and chunked responses.  No
TLS, no compression, no multipart — clients needing more sit behind a
reverse proxy, which is how the service is meant to be deployed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
CRLF = b"\r\n"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """Malformed/oversized request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    params: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    peer: str = ""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    peer: str = "",
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readuntil(CRLF)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpProtocolError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(400, "request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpProtocolError(400, f"malformed request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpProtocolError(400, f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(CRLF)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpProtocolError(400, "truncated headers") from None
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpProtocolError(400, "headers too large")
        if line == CRLF:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpProtocolError(400, "bad Content-Length") from None
        if size < 0:
            raise HttpProtocolError(400, "bad Content-Length")
        if size > max_body_bytes:
            raise HttpProtocolError(413, f"body over {max_body_bytes} bytes")
        body = await reader.readexactly(size)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        # Requests are small (one query text) — chunked uploads are not
        # part of the contract.
        raise HttpProtocolError(400, "chunked request bodies unsupported")

    split = urlsplit(target)
    params = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        params=params,
        headers=headers,
        body=body,
        version=version,
        peer=peer,
    )


def _head(
    status: int,
    headers: Dict[str, str],
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Write one fixed-length response."""
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers) + body)
    await writer.drain()


async def send_chunked(
    writer: asyncio.StreamWriter,
    chunks: AsyncIterator[bytes],
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Stream a chunked response, one transfer chunk per yielded piece."""
    headers = {
        "Content-Type": content_type,
        "Transfer-Encoding": "chunked",
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers))
    async for chunk in chunks:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}".encode("latin-1") + CRLF + chunk + CRLF)
        await writer.drain()
    writer.write(b"0" + CRLF + CRLF)
    await writer.drain()


# -- client side (load harness / examples) ----------------------------------


@dataclass
class HttpResponse:
    """One parsed response (client side)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response, decoding chunked transfer when present."""
    line = await reader.readuntil(CRLF)
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpProtocolError(400, f"malformed status line {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readuntil(CRLF)
        if line == CRLF:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = bytearray()
        while True:
            size_line = await reader.readuntil(CRLF)
            size = int(size_line.strip().split(b";")[0], 16)
            chunk = await reader.readexactly(size + 2)  # chunk + CRLF
            if size == 0:
                break
            body.extend(chunk[:-2])
        return HttpResponse(status=status, headers=headers, body=bytes(body))
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return HttpResponse(status=status, headers=headers, body=body)


def request_bytes(
    method: str,
    path: str,
    host: str,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one client request (keep-alive by default)."""
    headers = {
        "Host": host,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive",
    }
    if body:
        headers["Content-Type"] = content_type
    if extra_headers:
        headers.update(extra_headers)
    lines = [f"{method} {path} HTTP/1.1"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def split_host_port(peername: Tuple) -> str:
    """Stable client identity from a transport peername."""
    if isinstance(peername, tuple) and len(peername) >= 2:
        return f"{peername[0]}:{peername[1]}"
    return str(peername)
