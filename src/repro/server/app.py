"""The AIQL network front door: asyncio HTTP + WebSocket service.

Routes (all JSON payloads are :mod:`repro.api` messages):

=========================  ======================================================
``POST /v1/query``         body :class:`QueryRequest`; responds with a chunked
                           NDJSON stream of :class:`QueryPage` (the final page
                           carries ``meta`` — elapsed, degraded-read
                           completeness)
``GET  /v1/explain``       ``?q=<aiql>&analyze=0|1``; one
                           :class:`ExplainReportPayload`
``GET  /v1/metrics``       Prometheus text exposition (the PR 8 registry)
``GET  /v1/stats``         :class:`StatsPayload` (deployment + server stats)
``GET  /healthz``          :class:`HealthPayload`
``GET  /v1/alerts``        WebSocket upgrade; client sends
                           :class:`SubscribeRequest`, server acks and pushes
                           one :class:`AlertMessage` per standing-query match
=========================  ======================================================

Queries execute on the existing :class:`~repro.service.QueryService`
(in-flight dedup, scan caches, sharded scatter/gather — nothing engine-
side changed) via ``asyncio``-wrapped futures; the event loop never
blocks on a scan.  Admission control
(:class:`~repro.server.admission.AdmissionController`) bounds in-flight
queries with per-client round-robin fairness and answers ``429`` +
``Retry-After`` past saturation.  Every error is one
:class:`~repro.api.ErrorEnvelope` with a stable taxonomy code.

Alert push: subscription callbacks fire on the stream-commit thread;
each alert is serialized there and marshalled onto the loop with
``call_soon_threadsafe`` into a bounded per-connection queue (drops are
counted, never block a commit) that a writer task drains into WebSocket
text frames.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, AsyncIterator, Dict, Optional, Set

from repro import api
from repro.obs.metrics import REGISTRY
from repro.server import websocket
from repro.server.admission import AdmissionController, Overloaded
from repro.server.http import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    send_chunked,
    send_response,
    split_host_port,
)

_M_REQUESTS = REGISTRY.counter(
    "aiql_http_requests_total", "HTTP requests served", labelnames=("route",)
)
_M_ERRORS = REGISTRY.counter(
    "aiql_http_errors_total", "HTTP error responses", labelnames=("code",)
)
_M_REJECTED = REGISTRY.counter(
    "aiql_http_rejected_total", "Requests shed by admission control (429)"
)
_M_LATENCY = REGISTRY.histogram(
    "aiql_http_request_seconds", "HTTP request service time"
)
_M_WS_ALERTS = REGISTRY.counter(
    "aiql_ws_alerts_sent_total", "Alerts pushed over WebSockets"
)
_M_WS_DROPPED = REGISTRY.counter(
    "aiql_ws_alerts_dropped_total",
    "Alerts dropped on full per-connection queues",
)


class _AlertConnection:
    """Per-WebSocket state: subscriptions + the bounded push queue."""

    def __init__(self, queue_depth: int) -> None:
        self.queue: "asyncio.Queue[Optional[api.Message]]" = asyncio.Queue(
            maxsize=queue_depth
        )
        self.subscriptions: Dict[str, Any] = {}
        self.alerts_sent = 0
        self.alerts_dropped = 0


class AIQLServer:
    """One deployment's network front door.

    Construct via :meth:`repro.AIQLSystem.serve`; drive with
    :meth:`run` (asyncio) or :meth:`start_background` (own thread, for
    tests/benchmarks and in-process embedding).
    """

    def __init__(
        self,
        system: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.system = system
        self.host = host
        self._requested_port = port
        config = system.config
        self.page_rows = config.server_page_rows
        self.max_body_bytes = config.server_max_body_bytes
        self.alert_queue_depth = config.server_alert_queue
        self.admission = AdmissionController(
            max_inflight=config.server_max_inflight,
            max_queued=config.server_queue_depth,
            per_client_queue=config.server_client_queue_depth,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._alert_conns: Set[_AlertConnection] = set()
        self.connections = 0
        self.requests = 0
        # Cumulative across closed connections (per-conn counters die
        # with the socket; the bench asserts on these).
        self.alerts_sent = 0
        self.alerts_dropped = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "AIQLServer":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self

    async def run(self) -> None:
        """Start and serve until cancelled (the CLI entry point)."""
        await self.start()
        await self.serve_forever()

    async def serve_forever(self) -> None:
        """Serve an already-started server until cancelled."""
        if self._server is None:
            raise RuntimeError("server not started")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._alert_conns):
            self._drop_subscriptions(conn)
            conn.queue.put_nowait(None)  # wake the writer task to exit

    def start_background(self) -> "ServerHandle":
        """Run the server on its own thread + loop; returns the handle."""
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            ready.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        thread = threading.Thread(
            target=runner, name="aiql-server", daemon=True
        )
        thread.start()
        ready.wait()
        return ServerHandle(self, loop, thread)

    def stats(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "connections": self.connections,
            "requests": self.requests,
            "admission": self.admission.stats(),
            "alert_connections": len(self._alert_conns),
            "alerts_sent": self.alerts_sent,
            "alerts_dropped": self.alerts_dropped,
            "schema_version": api.SCHEMA_VERSION,
        }

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = split_host_port(writer.get_extra_info("peername"))
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.max_body_bytes, peer
                    )
                except HttpProtocolError as exc:
                    await self._send_error(
                        writer,
                        api.envelope(
                            api.Code.PAYLOAD_TOO_LARGE
                            if exc.status == 413
                            else api.Code.REQUEST_INVALID,
                            str(exc),
                        ),
                        status=exc.status,
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                self.requests += 1
                if websocket.is_upgrade(request):
                    await self._handle_alerts(request, reader, writer)
                    return  # the upgraded connection never returns to HTTP
                keep = await self._dispatch(request, writer)
                if not keep or not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one HTTP request; returns False to drop the connection."""
        started = time.perf_counter()
        route = f"{request.method} {request.path}"
        try:
            if request.path == "/healthz":
                if request.method != "GET":
                    return await self._method_not_allowed(writer, request)
                await self._send_message(writer, api.HealthPayload())
            elif request.path == "/v1/metrics":
                if request.method != "GET":
                    return await self._method_not_allowed(writer, request)
                body = self.system.metrics_text().encode("utf-8")
                await send_response(
                    writer, 200, body, content_type="text/plain; version=0.0.4"
                )
            elif request.path == "/v1/stats":
                if request.method != "GET":
                    return await self._method_not_allowed(writer, request)
                await self._send_message(writer, self._stats_payload())
            elif request.path == "/v1/query":
                if request.method != "POST":
                    return await self._method_not_allowed(writer, request)
                await self._handle_query(request, writer)
            elif request.path == "/v1/explain":
                if request.method != "GET":
                    return await self._method_not_allowed(writer, request)
                await self._handle_explain(request, writer)
            elif request.path == "/v1/alerts":
                await self._send_error(
                    writer,
                    api.envelope(
                        api.Code.REQUEST_INVALID,
                        "/v1/alerts is a WebSocket endpoint: send an "
                        "Upgrade: websocket handshake",
                    ),
                    status=426,
                )
            else:
                await self._send_error(
                    writer,
                    api.envelope(
                        api.Code.NOT_FOUND, f"no route {request.path!r}"
                    ),
                )
            return True
        finally:
            _M_REQUESTS.inc(route=route)
            _M_LATENCY.observe(time.perf_counter() - started)

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, request: HttpRequest
    ) -> bool:
        await self._send_error(
            writer,
            api.envelope(
                api.Code.METHOD_NOT_ALLOWED,
                f"{request.method} not allowed on {request.path}",
            ),
        )
        return True

    # -- query execution -----------------------------------------------------

    async def _handle_query(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        try:
            message = api.from_json(request.body.decode("utf-8"))
            if not isinstance(message, api.QueryRequest):
                raise api.SchemaError(
                    f"expected query_request, got {message.TYPE!r}"
                )
        except (api.SchemaError, UnicodeDecodeError) as exc:
            await self._send_error(writer, api.classify(exc))
            return
        client = message.client_id or request.peer
        try:
            await self.admission.acquire(client)
        except Overloaded as exc:
            _M_REJECTED.inc()
            await self._send_error(writer, api.classify(exc))
            return
        started = time.perf_counter()
        try:
            future = self.system.service.submit(message.text)
            result = await asyncio.wrap_future(future)
        except Exception as exc:
            self.admission.release(time.perf_counter() - started)
            await self._send_error(writer, api.classify(exc))
            return
        elapsed = time.perf_counter() - started
        self.admission.release(elapsed)
        pages = api.pages_from_result(
            result,
            page_rows=message.page_rows or self.page_rows,
            elapsed_ms=elapsed * 1000.0,
        )
        await send_chunked(writer, _ndjson(pages))

    async def _handle_explain(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        text = request.params.get("q", "")
        if not text.strip():
            await self._send_error(
                writer,
                api.envelope(
                    api.Code.REQUEST_INVALID, "/v1/explain needs ?q=<aiql>"
                ),
            )
            return
        analyze = request.params.get("analyze", "1") not in ("0", "false", "")
        try:
            await self.admission.acquire(request.peer)
        except Overloaded as exc:
            _M_REJECTED.inc()
            await self._send_error(writer, api.classify(exc))
            return
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, lambda: self.system.explain(text, analyze=analyze)
            )
        except Exception as exc:
            await self._send_error(writer, api.classify(exc))
            return
        finally:
            self.admission.release(time.perf_counter() - started)
        await self._send_message(writer, api.explain_payload(report))

    # -- standing-query alerts over WebSocket --------------------------------

    async def _handle_alerts(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if request.path != "/v1/alerts":
            await self._send_error(
                writer,
                api.envelope(
                    api.Code.NOT_FOUND,
                    f"no WebSocket route {request.path!r}",
                ),
                keep_alive=False,
            )
            return
        try:
            ws = await websocket.server_handshake(request, reader, writer)
        except HttpProtocolError as exc:
            await self._send_error(
                writer,
                api.envelope(api.Code.REQUEST_INVALID, str(exc)),
                status=exc.status,
                keep_alive=False,
            )
            return
        conn = _AlertConnection(self.alert_queue_depth)
        self._alert_conns.add(conn)
        pusher = asyncio.create_task(self._push_alerts(conn, ws))
        try:
            while True:
                text = await ws.recv_text()
                if text is None:
                    break
                try:
                    await self._handle_ws_message(conn, ws, text)
                except (api.SchemaError, websocket.WebSocketError) as exc:
                    await ws.send_text(api.classify(exc).to_json())
        finally:
            self._alert_conns.discard(conn)
            self._drop_subscriptions(conn)
            conn.queue.put_nowait(None)
            await pusher
            await ws.close()

    async def _handle_ws_message(
        self, conn: _AlertConnection, ws: websocket.WebSocket, text: str
    ) -> None:
        message = api.from_json(text)
        if isinstance(message, api.SubscribeRequest):
            loop = asyncio.get_running_loop()
            name_box: list = []

            def deliver(alert: Any) -> None:
                # Commit-thread side: serialize here, marshal to the loop.
                wire = api.alert_message(
                    alert, subscription=name_box[0] if name_box else ""
                )
                loop.call_soon_threadsafe(self._enqueue_alert, conn, wire)

            try:
                subscription = self.system.subscribe(
                    message.query,
                    callback=deliver,
                    window_s=message.window_s,
                    name=message.name,
                )
            except Exception as exc:
                await ws.send_text(api.classify(exc).to_json())
                return
            name_box.append(subscription.name)
            conn.subscriptions[subscription.name] = subscription
            await ws.send_text(
                api.SubscribeAck(
                    name=subscription.name,
                    patterns=len(subscription.kernels),
                    window_s=subscription.horizon_s,
                ).to_json()
            )
        elif isinstance(message, api.UnsubscribeRequest):
            subscription = conn.subscriptions.pop(message.name, None)
            if subscription is None:
                await ws.send_text(
                    api.envelope(
                        api.Code.SUBSCRIPTION_INVALID,
                        f"no subscription named {message.name!r} on this "
                        "connection",
                    ).to_json()
                )
                return
            self.system.unsubscribe(subscription)
            await ws.send_text(
                api.SubscribeAck(
                    name=message.name, patterns=0, window_s=0.0
                ).to_json()
            )
        else:
            raise api.SchemaError(
                f"unexpected {message.TYPE!r} on the alert socket"
            )

    def _enqueue_alert(self, conn: _AlertConnection, wire: api.Message) -> None:
        try:
            conn.queue.put_nowait(wire)
        except asyncio.QueueFull:
            conn.alerts_dropped += 1
            self.alerts_dropped += 1
            _M_WS_DROPPED.inc()

    async def _push_alerts(
        self, conn: _AlertConnection, ws: websocket.WebSocket
    ) -> None:
        while True:
            wire = await conn.queue.get()
            if wire is None:
                return
            try:
                await ws.send_text(wire.to_json())
            except (websocket.WebSocketError, ConnectionError, RuntimeError):
                return
            conn.alerts_sent += 1
            self.alerts_sent += 1
            _M_WS_ALERTS.inc()

    def _drop_subscriptions(self, conn: _AlertConnection) -> None:
        for subscription in conn.subscriptions.values():
            try:
                self.system.unsubscribe(subscription)
            except Exception:
                pass
        conn.subscriptions.clear()

    # -- helpers -------------------------------------------------------------

    def _stats_payload(self) -> api.StatsPayload:
        stats = dict(api.wire_value(self.system.stats()))
        stats["server"] = api.wire_value(self.stats())
        return api.StatsPayload(
            stats=stats, metrics=api.wire_value(self.system.metrics_snapshot())
        )

    async def _send_message(
        self, writer: asyncio.StreamWriter, message: api.Message
    ) -> None:
        await send_response(
            writer, 200, message.to_json().encode("utf-8")
        )

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        env: "api.ErrorEnvelope",
        status: Optional[int] = None,
        keep_alive: bool = True,
    ) -> None:
        _M_ERRORS.inc(code=env.code)
        headers = {}
        if env.retry_after_s is not None:
            headers["Retry-After"] = f"{max(env.retry_after_s, 0.0):.3f}"
        try:
            await send_response(
                writer,
                status if status is not None else env.http_status,
                env.to_json().encode("utf-8"),
                extra_headers=headers,
                keep_alive=keep_alive,
            )
        except (ConnectionError, RuntimeError):
            pass


def _ndjson(pages: Any) -> AsyncIterator[bytes]:
    async def generate() -> AsyncIterator[bytes]:
        for page in pages:
            yield page.to_json().encode("utf-8") + b"\n"

    return generate()


class ServerHandle:
    """A server running on its own background thread (tests/benches)."""

    def __init__(
        self,
        server: AIQLServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float = 10.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
