"""``repro.server`` — the asyncio HTTP/WebSocket network front door.

* :mod:`repro.server.http` — minimal HTTP/1.1 on asyncio streams
  (keep-alive, chunked NDJSON streaming, request limits);
* :mod:`repro.server.websocket` — RFC 6455 framing for alert push;
* :mod:`repro.server.admission` — bounded in-flight admission control
  with per-client round-robin fairness and ``Retry-After`` estimation;
* :mod:`repro.server.app` — :class:`AIQLServer` wiring the routes to an
  :class:`~repro.core.system.AIQLSystem` (use ``system.serve()``).
"""

from repro.server.admission import AdmissionController, Overloaded
from repro.server.app import AIQLServer, ServerHandle

__all__ = [
    "AIQLServer",
    "AdmissionController",
    "Overloaded",
    "ServerHandle",
]
