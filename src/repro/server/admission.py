"""Admission control for the query endpoint.

The network front door must shed load instead of queueing it without
bound: under overload an open-loop client fleet keeps arriving at its
rate regardless of server latency, so an unbounded queue turns into
unbounded latency.  The controller bounds the work the server accepts:

* at most ``max_inflight`` queries execute concurrently (they run on the
  shared thread-pool executor — more in flight than workers only adds
  queueing inside the pool);
* arrivals beyond that wait in **per-client FIFO queues** dispatched
  **round-robin**, so one chatty client cannot starve the rest —
  fairness is per ``client_id`` (the ``QueryRequest`` field, defaulting
  to the connection's peer address);
* a client may queue at most ``per_client_queue`` waiters and the whole
  server at most ``max_queued``; beyond either the request is rejected
  immediately with :class:`Overloaded`, which the HTTP layer maps to
  ``429`` + ``Retry-After`` (the ``server.overloaded`` taxonomy code).

``retry_after_s`` is estimated from an EWMA of recent service times:
(queued + inflight) x average service seconds / max_inflight — i.e. the
backlog drain time an arriving client would have waited anyway.

Single event loop: all methods run on the loop thread, so there is no
lock; the only cross-thread entry is ``release`` being called from a
done-callback, which the server marshals back onto the loop.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Deque, Dict


class Overloaded(Exception):
    """Admission rejected the request; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Bounded in-flight queries with per-client round-robin fairness."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queued: int = 64,
        per_client_queue: int = 16,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if per_client_queue < 1:
            raise ValueError("per_client_queue must be >= 1")
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self.per_client_queue = per_client_queue
        self.inflight = 0
        self.queued = 0
        # client -> FIFO of waiter futures; OrderedDict preserves the
        # round-robin rotation (move_to_end on every dispatch).
        self._waiters: "OrderedDict[str, Deque[asyncio.Future]]" = OrderedDict()
        self.admitted = 0
        self.rejected = 0
        self.dispatched = 0
        self._avg_service_s = 0.05  # EWMA, seeded pessimistically

    # -- acquire/release -----------------------------------------------------

    async def acquire(self, client: str) -> None:
        """Admit one query for ``client``; raises :class:`Overloaded`."""
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self.admitted += 1
            return
        queue = self._waiters.get(client)
        if self.queued >= self.max_queued or (
            queue is not None and len(queue) >= self.per_client_queue
        ):
            self.rejected += 1
            raise Overloaded(
                f"server at capacity ({self.inflight} in flight, "
                f"{self.queued} queued)",
                retry_after_s=self.retry_after_s(),
            )
        if queue is None:
            queue = self._waiters[client] = deque()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        queue.append(future)
        self.queued += 1
        try:
            await future
        except asyncio.CancelledError:
            # The connection went away while queued: withdraw, or hand
            # the already-granted slot straight back.
            if future in queue:
                queue.remove(future)
                self.queued -= 1
                if not queue:
                    self._waiters.pop(client, None)
            elif future.done() and not future.cancelled():
                # The slot was granted between set_result and our wake-up;
                # hand it straight on.
                self.release(0.0)
            raise
        self.admitted += 1

    def release(self, service_s: float) -> None:
        """Return one slot; wakes the next client in round-robin order."""
        if service_s > 0:
            self._avg_service_s += 0.2 * (service_s - self._avg_service_s)
        while self._waiters:
            client, queue = next(iter(self._waiters.items()))
            # Rotate the client to the back whether or not it still has
            # waiters — that is what makes dispatch round-robin.
            self._waiters.move_to_end(client)
            future = None
            while queue and future is None:
                candidate = queue.popleft()
                self.queued -= 1
                if not candidate.done():
                    future = candidate
            if not queue:
                self._waiters.pop(client, None)
            if future is not None:
                self.dispatched += 1
                future.set_result(None)
                return
        self.inflight -= 1

    def retry_after_s(self) -> float:
        """Backlog drain estimate for a rejected client."""
        backlog = self.queued + self.inflight
        estimate = backlog * self._avg_service_s / self.max_inflight
        return round(max(0.05, min(estimate, 30.0)), 3)

    def stats(self) -> Dict[str, object]:
        return {
            "inflight": self.inflight,
            "queued": self.queued,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "clients_waiting": len(self._waiters),
            "avg_service_ms": round(self._avg_service_s * 1000.0, 3),
            "max_inflight": self.max_inflight,
            "max_queued": self.max_queued,
        }
