"""System events: the ``<subject, operation, object>`` triples (paper Table 2).

An event records one interaction: the *subject* is always a process; the
*object* is a file, a process or a network connection.  Events are
categorized by their object type into file events, process events and
network events — this categorization drives the relationship-sort order of
the query scheduler (Algorithm 1 sorts process/network events ahead of file
events, which are far more numerous in real monitoring data).

Event attributes (Table 2): operation, start/end time, per-agent sequence
number, subject/object ids, failure code, and for data-movement operations
an ``amount`` (bytes) used by anomaly queries such as Query 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet

from repro.model.entities import Entity, EntityType


class Operation(str, Enum):
    """Operation types between subject and object (Table 2)."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"
    START = "start"
    END = "end"
    RENAME = "rename"
    DELETE = "delete"
    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECV = "recv"

    @classmethod
    def parse(cls, text: str) -> "Operation":
        key = text.strip().lower()
        if key in _OPERATION_ALIASES:
            return _OPERATION_ALIASES[key]
        raise ValueError(f"unknown operation: {text!r}")


_OPERATION_ALIASES: Dict[str, Operation] = {op.value: op for op in Operation}
_OPERATION_ALIASES.update(
    {
        "exec": Operation.EXECUTE,
        "fork": Operation.START,
        "spawn": Operation.START,
        "unlink": Operation.DELETE,
        "remove": Operation.DELETE,
        "mv": Operation.RENAME,
        "receive": Operation.RECV,
    }
)

# Operations valid per object entity type; used by semantic validation.
OPERATIONS_BY_OBJECT: Dict[EntityType, FrozenSet[Operation]] = {
    EntityType.FILE: frozenset(
        {
            Operation.READ,
            Operation.WRITE,
            Operation.EXECUTE,
            Operation.RENAME,
            Operation.DELETE,
        }
    ),
    EntityType.PROCESS: frozenset({Operation.START, Operation.END}),
    EntityType.NETWORK: frozenset(
        {
            Operation.READ,
            Operation.WRITE,
            Operation.CONNECT,
            Operation.ACCEPT,
            Operation.SEND,
            Operation.RECV,
        }
    ),
    # Sec. 7 monitoring-scope extension:
    EntityType.REGISTRY: frozenset(
        {Operation.READ, Operation.WRITE, Operation.DELETE}
    ),
    EntityType.PIPE: frozenset({Operation.READ, Operation.WRITE}),
}


class EventType(str, Enum):
    """Event categories by object entity type (paper Sec. 3.1)."""

    FILE = "file"
    PROCESS = "process"
    NETWORK = "network"
    REGISTRY = "registry"
    PIPE = "pipe"


_EVENT_TYPE_BY_OBJECT: Dict[EntityType, EventType] = {
    EntityType.FILE: EventType.FILE,
    EntityType.PROCESS: EventType.PROCESS,
    EntityType.NETWORK: EventType.NETWORK,
    EntityType.REGISTRY: EventType.REGISTRY,
    EntityType.PIPE: EventType.PIPE,
}

# Process and network events carry the most pruning power in Algorithm 1's
# relationship sort; everything else (file-like bulk categories) goes last.
HIGH_PRUNING_EVENT_TYPES = frozenset({EventType.PROCESS, EventType.NETWORK})


def event_type_of(object_type: EntityType) -> EventType:
    return _EVENT_TYPE_BY_OBJECT[object_type]


@dataclass(frozen=True)
class SystemEvent:
    """One recorded system-call-level interaction.

    ``event_id`` is globally unique; ``seq`` increases monotonically per
    agent (Table 2's Event Sequence), which the storage layer relies on for
    temporal ordering within a host.
    """

    event_id: int
    agent_id: int
    seq: int
    start_time: float
    end_time: float
    operation: Operation
    subject_id: int
    object_id: int
    object_type: EntityType
    amount: int = 0
    failure_code: int = 0

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"event {self.event_id}: end_time {self.end_time} precedes "
                f"start_time {self.start_time}"
            )

    @property
    def event_type(self) -> EventType:
        return event_type_of(self.object_type)

    def attribute(self, name: str) -> object:
        """Event attribute lookup used by ``evt`` constraints and returns."""
        key = name.strip().lower()
        if key in _EVENT_ATTRIBUTE_GETTERS:
            return _EVENT_ATTRIBUTE_GETTERS[key](self)
        raise AttributeError(f"event has no attribute {name!r}")


_EVENT_ATTRIBUTE_GETTERS = {
    "id": lambda e: e.event_id,
    "event_id": lambda e: e.event_id,
    "agentid": lambda e: e.agent_id,
    "agent_id": lambda e: e.agent_id,
    "seq": lambda e: e.seq,
    "sequence": lambda e: e.seq,
    "starttime": lambda e: e.start_time,
    "start_time": lambda e: e.start_time,
    "endtime": lambda e: e.end_time,
    "end_time": lambda e: e.end_time,
    "optype": lambda e: e.operation.value,
    "operation": lambda e: e.operation.value,
    "amount": lambda e: e.amount,
    "access": lambda e: e.operation.value,
    "failure_code": lambda e: e.failure_code,
    "failurecode": lambda e: e.failure_code,
    "subject_id": lambda e: e.subject_id,
    "object_id": lambda e: e.object_id,
}

EVENT_ATTRIBUTES = tuple(sorted(_EVENT_ATTRIBUTE_GETTERS))


def event_attribute_getter(name: str):
    """The getter behind :meth:`SystemEvent.attribute`, or ``None``.

    Lets the scan-kernel compiler hoist attribute resolution (alias
    normalization + dispatch) out of the per-event loop: a known name
    binds its getter once, an unknown name compiles to constant-false
    (``attribute`` would raise ``AttributeError`` for every event).
    """
    return _EVENT_ATTRIBUTE_GETTERS.get(name.strip().lower())


def validate_event(event: SystemEvent, subject: Entity, obj: Entity) -> None:
    """Check an event against the data model; raises ``ValueError``.

    Subjects must be processes; the operation must be legal for the object's
    entity type (e.g. only processes can be ``start``-ed).
    """
    if subject.entity_type is not EntityType.PROCESS:
        raise ValueError(
            f"event {event.event_id}: subject must be a process, got "
            f"{subject.entity_type.value}"
        )
    if event.operation not in OPERATIONS_BY_OBJECT[obj.entity_type]:
        raise ValueError(
            f"event {event.event_id}: operation {event.operation.value!r} is "
            f"invalid for object type {obj.entity_type.value!r}"
        )
    if subject.id != event.subject_id or obj.id != event.object_id:
        raise ValueError(f"event {event.event_id}: entity ids do not match")
