"""Time handling for system monitoring data and AIQL queries.

Timestamps are represented as floats: seconds since the Unix epoch (UTC).
AIQL accepts common US time formats and ISO 8601 at several granularities
(paper Sec. 4.1); durations are written as ``<number> <unit>`` where unit is
one of sec/min/hour/day (with common aliases).

The module also implements the ingest-side clock synchronization described in
Sec. 3.2: agents may drift, and the server corrects event timestamps against
its own clock (an NTP-style offset correction).
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Optional

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

_UNIT_SECONDS = {
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
}

# US formats first (the paper's examples use mm/dd/yyyy), then ISO 8601
# at every granularity: date, minutes, seconds, fractional seconds.
_DATETIME_FORMATS = (
    "%m/%d/%Y %H:%M:%S.%f",
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y %H:%M",
    "%m/%d/%Y",
    "%Y-%m-%dT%H:%M:%S.%f",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%dT%H:%M",
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]+)\s*$")

# ISO 8601 timezone designator at the end of a literal: ``Z`` (UTC) or an
# explicit ``+HH:MM`` / ``-HHMM`` offset.  The sign requirement keeps date
# literals like ``2017-01-01`` (whose tail is digits and hyphens preceded
# by a digit) from matching: an offset must follow a time component, and
# only there does a bare ``+``/``-`` appear.
_TZ_SUFFIX_RE = re.compile(r"(?:[Zz]|(?P<sign>[+-])(?P<hh>\d{2}):?(?P<mm>\d{2}))$")


class TimeParseError(ValueError):
    """Raised when a datetime or duration literal cannot be parsed."""


def parse_datetime(text: str) -> float:
    """Parse a datetime literal into an epoch timestamp (UTC).

    Accepts US formats (``01/01/2017``, ``01/01/2017 10:30:00``) and
    ISO 8601 at any granularity (``2017-01-01``, ``2017-01-01T10:30``,
    ``2017-01-01T10:30:00``, ``2017-01-01T10:30:00.500``), with an
    optional timezone designator (``...T10:30:00Z``, ``...+00:00``,
    ``...-08:00``); offset forms are normalized to UTC.
    """
    cleaned = text.strip().strip('"').strip("'")
    offset_seconds = 0.0
    tz = _TZ_SUFFIX_RE.search(cleaned)
    # A designator is only valid after a time component (``2017-01-01Z``
    # is not ISO 8601); the ``:`` test keeps date-only literals intact.
    if tz is not None and ":" not in cleaned[: tz.start()]:
        tz = None
    if tz is not None:
        if tz.group("sign"):
            magnitude = int(tz.group("hh")) * HOUR + int(tz.group("mm")) * MINUTE
            offset_seconds = magnitude if tz.group("sign") == "+" else -magnitude
        cleaned = cleaned[: tz.start()]
    for fmt in _DATETIME_FORMATS:
        try:
            parsed = _dt.datetime.strptime(cleaned, fmt)
        except ValueError:
            continue
        # A wall-clock at +HH:MM is that many seconds *ahead of* UTC.
        return parsed.replace(tzinfo=_dt.timezone.utc).timestamp() - offset_seconds
    raise TimeParseError(f"unrecognized datetime literal: {text!r}")


def parse_duration(amount: float, unit: str) -> float:
    """Convert ``amount`` in ``unit`` (sec/min/hour/day aliases) to seconds."""
    key = unit.strip().lower()
    if key not in _UNIT_SECONDS:
        raise TimeParseError(f"unrecognized time unit: {unit!r}")
    return float(amount) * _UNIT_SECONDS[key]


def parse_duration_text(text: str) -> float:
    """Parse a duration literal such as ``"1 min"`` or ``"10 sec"``."""
    match = _DURATION_RE.match(text)
    if not match:
        raise TimeParseError(f"unrecognized duration literal: {text!r}")
    return parse_duration(float(match.group(1)), match.group(2))


def format_timestamp(ts: float) -> str:
    """Render an epoch timestamp as an ISO 8601 UTC string."""
    return (
        _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)
        .strftime("%Y-%m-%d %H:%M:%S")
    )


def day_of(ts: float) -> int:
    """Return the day ordinal (days since epoch) containing ``ts``.

    Used for the per-day database rollover and the time-window partitioning
    of data queries (paper Secs. 3.2 and 5.2).
    """
    return int(ts // DAY)


def day_start(day: int) -> float:
    """Return the first timestamp of day ordinal ``day``."""
    return day * DAY


@dataclass(frozen=True)
class TimeWindow:
    """A half-open time interval ``[start, end)``.

    ``None`` on either side means unbounded.  This is the runtime form of the
    AIQL ``(at "...")`` / ``from ... to ...`` global and per-pattern time
    windows.
    """

    start: Optional[float] = None
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.start is not None
            and self.end is not None
            and self.end < self.start
        ):
            raise ValueError(
                f"time window end ({self.end}) precedes start ({self.start})"
            )

    @classmethod
    def at_day(cls, text: str) -> "TimeWindow":
        """Window covering the single calendar day named by ``text``."""
        start = parse_datetime(text)
        return cls(start=start, end=start + DAY)

    @classmethod
    def span(cls, start_text: str, end_text: str) -> "TimeWindow":
        return cls(start=parse_datetime(start_text), end=parse_datetime(end_text))

    def contains(self, ts: float) -> bool:
        if self.start is not None and ts < self.start:
            return False
        if self.end is not None and ts >= self.end:
            return False
        return True

    def intersect(self, other: "TimeWindow") -> "TimeWindow":
        """Intersection of two windows (may be empty)."""
        starts = [w for w in (self.start, other.start) if w is not None]
        ends = [w for w in (self.end, other.end) if w is not None]
        start = max(starts) if starts else None
        end = min(ends) if ends else None
        if start is not None and end is not None and end < start:
            end = start  # empty window
        return TimeWindow(start=start, end=end)

    def is_empty(self) -> bool:
        return (
            self.start is not None
            and self.end is not None
            and self.start >= self.end
        )

    def is_bounded(self) -> bool:
        return self.start is not None and self.end is not None

    def days(self) -> Optional[range]:
        """Day ordinals covered by this window, or ``None`` if unbounded."""
        if not self.is_bounded():
            return None
        first = day_of(self.start)
        # End is exclusive: a window ending exactly at midnight does not
        # touch the next day.
        last = day_of(self.end) if self.end % DAY else day_of(self.end) - 1
        return range(first, last + 1)


class ClockSynchronizer:
    """NTP-style clock correction applied at ingest (paper Sec. 3.2).

    Agents report their local clock alongside batches of events; the server
    computes the offset against its own clock and shifts event timestamps so
    that the stored data has a consistent timeline.
    """

    def __init__(self, server_clock: Optional[float] = None) -> None:
        self._server_clock = server_clock
        self._offsets: dict[int, float] = {}

    def observe(self, agent_id: int, agent_clock: float, server_clock: float) -> float:
        """Record a clock sample for ``agent_id`` and return its offset."""
        offset = server_clock - agent_clock
        self._offsets[agent_id] = offset
        return offset

    def offset(self, agent_id: int) -> float:
        return self._offsets.get(agent_id, 0.0)

    def correct(self, agent_id: int, ts: float) -> float:
        """Correct a raw agent timestamp into server time."""
        return ts + self.offset(agent_id)
