"""System entities: files, processes and network connections (paper Table 1).

On most modern operating systems, system resources relevant to attack
investigation are files, processes and network connections.  Entities carry
security-related attributes used in analysis (e.g. file ``name``, process
``exe_name``, connection ``dst_ip``) plus a unique identifier used to
distinguish entities and to join events (``id``).

The AIQL language addresses entities through three type keywords::

    file  f1["/var/www%"]
    proc  p1["%apache%"]
    ip    i1[dstip = "XXX.129"]

Attribute-name aliases used in the paper's queries (``dstip``, ``dstport``,
``srcip``...) are normalized here so the rest of the system deals with one
canonical spelling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, Optional, Tuple


class EntityType(str, Enum):
    """The entity types of the data model.

    Files, processes and network connections are the paper's core model
    (Sec. 3.1); Windows registry entries and Linux pipes are the monitoring
    scope expansion its Sec. 7 lists as future work, implemented here.
    """

    FILE = "file"
    PROCESS = "proc"
    NETWORK = "ip"
    REGISTRY = "reg"
    PIPE = "pipe"

    @classmethod
    def parse(cls, text: str) -> "EntityType":
        key = text.strip().lower()
        if key in _TYPE_ALIASES:
            return _TYPE_ALIASES[key]
        raise ValueError(f"unknown entity type: {text!r}")


_TYPE_ALIASES: Dict[str, EntityType] = {
    "file": EntityType.FILE,
    "f": EntityType.FILE,
    "proc": EntityType.PROCESS,
    "process": EntityType.PROCESS,
    "p": EntityType.PROCESS,
    "ip": EntityType.NETWORK,
    "net": EntityType.NETWORK,
    "conn": EntityType.NETWORK,
    "connection": EntityType.NETWORK,
    "reg": EntityType.REGISTRY,
    "registry": EntityType.REGISTRY,
    "pipe": EntityType.PIPE,
}

# Default attribute used when a query gives only a value (paper Sec. 4.1):
# name for files, exe_name for processes, dst_ip for network connections.
_DEFAULT_ATTRIBUTES: Dict[EntityType, str] = {
    EntityType.FILE: "name",
    EntityType.PROCESS: "exe_name",
    EntityType.NETWORK: "dst_ip",
    EntityType.REGISTRY: "key",
    EntityType.PIPE: "name",
}

# Canonical attribute sets per entity type (Table 1), with aliases.
# ``agent_id`` (the host id) is addressable on every entity so queries can
# constrain single patterns spatially, e.g. ``proc p1[..., agentid = 2]``.
FILE_ATTRIBUTES = ("id", "agent_id", "name", "owner", "group", "vol_id", "data_id")
PROCESS_ATTRIBUTES = ("id", "agent_id", "pid", "exe_name", "user", "cmd", "signature")
NETWORK_ATTRIBUTES = (
    "id",
    "agent_id",
    "src_ip",
    "src_port",
    "dst_ip",
    "dst_port",
    "protocol",
)
REGISTRY_ATTRIBUTES = ("id", "agent_id", "key", "value_name")
PIPE_ATTRIBUTES = ("id", "agent_id", "name", "mode")

_ATTRIBUTE_ALIASES: Dict[str, str] = {
    "agentid": "agent_id",
    "srcip": "src_ip",
    "dstip": "dst_ip",
    "srcport": "src_port",
    "dstport": "dst_port",
    "exename": "exe_name",
    "name": "name",
    "volid": "vol_id",
    "dataid": "data_id",
    "sip": "src_ip",
    "dip": "dst_ip",
    "sport": "src_port",
    "dport": "dst_port",
}

ATTRIBUTES_BY_TYPE: Dict[EntityType, Tuple[str, ...]] = {
    EntityType.FILE: FILE_ATTRIBUTES,
    EntityType.PROCESS: PROCESS_ATTRIBUTES,
    EntityType.NETWORK: NETWORK_ATTRIBUTES,
    EntityType.REGISTRY: REGISTRY_ATTRIBUTES,
    EntityType.PIPE: PIPE_ATTRIBUTES,
}


def default_attribute(entity_type: EntityType) -> str:
    """The attribute inferred when only a value is given (Sec. 4.1)."""
    return _DEFAULT_ATTRIBUTES[entity_type]


def normalize_attribute(entity_type: Optional[EntityType], name: str) -> str:
    """Normalize an attribute spelling to its canonical form.

    Unknown names are passed through lowercased; the semantic analyzer
    validates them against the entity type where one is known.
    """
    key = name.strip().lower()
    return _ATTRIBUTE_ALIASES.get(key, key)


def is_valid_attribute(entity_type: EntityType, name: str) -> bool:
    return normalize_attribute(entity_type, name) in ATTRIBUTES_BY_TYPE[entity_type]


@dataclass(frozen=True)
class Entity:
    """Base class for system entities.

    ``id`` is globally unique across entity types (assigned by
    :class:`EntityRegistry`); ``agent_id`` identifies the host on which the
    entity was observed.
    """

    id: int
    agent_id: int

    @property
    def entity_type(self) -> EntityType:
        raise NotImplementedError

    def attribute(self, name: str) -> object:
        """Look up an attribute by (canonical or aliased) name."""
        canonical = normalize_attribute(self.entity_type, name)
        if canonical not in ATTRIBUTES_BY_TYPE[self.entity_type]:
            raise AttributeError(
                f"{self.entity_type.value} entity has no attribute {name!r}"
            )
        return getattr(self, canonical)


@dataclass(frozen=True)
class FileEntity(Entity):
    """A file, identified by name/volume/data id (Table 1)."""

    name: str = ""
    owner: str = "root"
    group: str = "root"
    vol_id: int = 0
    data_id: int = 0

    @property
    def entity_type(self) -> EntityType:
        return EntityType.FILE


@dataclass(frozen=True)
class ProcessEntity(Entity):
    """A process instance (one pid lifetime), Table 1."""

    pid: int = 0
    exe_name: str = ""
    user: str = "root"
    cmd: str = ""
    signature: str = ""

    @property
    def entity_type(self) -> EntityType:
        return EntityType.PROCESS


@dataclass(frozen=True)
class NetworkEntity(Entity):
    """A network connection 5-tuple (Table 1)."""

    src_ip: str = ""
    src_port: int = 0
    dst_ip: str = ""
    dst_port: int = 0
    protocol: str = "tcp"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.NETWORK


@dataclass(frozen=True)
class RegistryEntity(Entity):
    """A Windows registry value (Sec. 7 monitoring-scope extension)."""

    key: str = ""
    value_name: str = ""

    @property
    def entity_type(self) -> EntityType:
        return EntityType.REGISTRY


@dataclass(frozen=True)
class PipeEntity(Entity):
    """A Linux named pipe (Sec. 7 monitoring-scope extension)."""

    name: str = ""
    mode: str = "fifo"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.PIPE


@dataclass
class EntityRegistry:
    """Allocates entity ids and deduplicates identical entities.

    Agents report entities repeatedly (e.g. the same file touched by many
    events); ingestion must map them onto a single entity id so that
    attribute relationships such as ``p1 = p3`` (meaning ``p1.id = p3.id``)
    behave correctly.  Deduplication keys follow the unique identifiers of
    Table 1: (agent, vol, data id, name) for files, (agent, pid, exe, start
    generation) for processes, the 5-tuple for connections.
    """

    _next_id: Iterator[int] = field(default_factory=lambda: itertools.count(1))
    _by_key: Dict[tuple, Entity] = field(default_factory=dict)
    _by_id: Dict[int, Entity] = field(default_factory=dict)

    def _intern(self, key: tuple, build) -> Entity:
        entity = self._by_key.get(key)
        if entity is None:
            entity = build(next(self._next_id))
            self._by_key[key] = entity
            self._by_id[entity.id] = entity
        return entity

    def file(
        self,
        agent_id: int,
        name: str,
        owner: str = "root",
        group: str = "root",
        vol_id: int = 0,
        data_id: int = 0,
    ) -> FileEntity:
        key = ("file", agent_id, name, vol_id, data_id)
        return self._intern(
            key,
            lambda eid: FileEntity(
                id=eid,
                agent_id=agent_id,
                name=name,
                owner=owner,
                group=group,
                vol_id=vol_id,
                data_id=data_id,
            ),
        )

    def process(
        self,
        agent_id: int,
        pid: int,
        exe_name: str,
        user: str = "root",
        cmd: str = "",
        signature: str = "",
        generation: int = 0,
    ) -> ProcessEntity:
        key = ("proc", agent_id, pid, exe_name, generation)
        return self._intern(
            key,
            lambda eid: ProcessEntity(
                id=eid,
                agent_id=agent_id,
                pid=pid,
                exe_name=exe_name,
                user=user,
                cmd=cmd or exe_name,
                signature=signature,
            ),
        )

    def connection(
        self,
        agent_id: int,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        protocol: str = "tcp",
    ) -> NetworkEntity:
        key = ("ip", agent_id, src_ip, src_port, dst_ip, dst_port, protocol)
        return self._intern(
            key,
            lambda eid: NetworkEntity(
                id=eid,
                agent_id=agent_id,
                src_ip=src_ip,
                src_port=src_port,
                dst_ip=dst_ip,
                dst_port=dst_port,
                protocol=protocol,
            ),
        )

    def registry_value(
        self, agent_id: int, key: str, value_name: str = ""
    ) -> RegistryEntity:
        dedup_key = ("reg", agent_id, key, value_name)
        return self._intern(
            dedup_key,
            lambda eid: RegistryEntity(
                id=eid, agent_id=agent_id, key=key, value_name=value_name
            ),
        )

    def pipe(self, agent_id: int, name: str, mode: str = "fifo") -> PipeEntity:
        dedup_key = ("pipe", agent_id, name)
        return self._intern(
            dedup_key,
            lambda eid: PipeEntity(
                id=eid, agent_id=agent_id, name=name, mode=mode
            ),
        )

    def get(self, entity_id: int) -> Entity:
        return self._by_id[entity_id]

    def maybe_get(self, entity_id: int) -> Optional[Entity]:
        return self._by_id.get(entity_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._by_id.values())
