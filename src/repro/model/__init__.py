"""Domain data model for system monitoring data (paper Sec. 3.1).

System monitoring observes system calls at the kernel level and records the
interactions among system resources as *system events*.  Each event is a
triple ``<subject, operation, object>`` occurring on a particular host
(*agent*) at a particular time, exhibiting strong spatial and temporal
properties that the storage layer and the query engine exploit.

The model follows Tables 1 and 2 of the paper:

* entities — files, processes and network connections with security-related
  attributes (:mod:`repro.model.entities`);
* events — typed operations between a subject entity and an object entity,
  carrying agent id, start/end time and a per-agent sequence number
  (:mod:`repro.model.events`);
* time — parsing of the time formats AIQL accepts and ingest-side clock
  synchronization (:mod:`repro.model.time`).
"""

from repro.model.entities import (
    Entity,
    EntityRegistry,
    EntityType,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
    default_attribute,
)
from repro.model.events import (
    EventType,
    Operation,
    SystemEvent,
    event_type_of,
)
from repro.model.time import (
    MINUTE,
    HOUR,
    DAY,
    TimeWindow,
    day_of,
    format_timestamp,
    parse_datetime,
    parse_duration,
)

__all__ = [
    "Entity",
    "EntityRegistry",
    "EntityType",
    "FileEntity",
    "NetworkEntity",
    "ProcessEntity",
    "default_attribute",
    "EventType",
    "Operation",
    "SystemEvent",
    "event_type_of",
    "MINUTE",
    "HOUR",
    "DAY",
    "TimeWindow",
    "day_of",
    "format_timestamp",
    "parse_datetime",
    "parse_duration",
]
