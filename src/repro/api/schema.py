"""The versioned public wire schema (the ISSUE-10 api_redesign core).

One serializable contract shared by the asyncio network service
(:mod:`repro.server`), the CLI's ``--json`` outputs and in-process
callers: every message that crosses a process boundary is one of the
frozen dataclasses below, tagged with its ``type`` and the schema
version ``v``.  The codecs are bidirectional and lossless —
``from_json(to_json(x)) == x`` holds for every message (property-tested
in ``tests/properties/test_api_props.py``) — so clients written against
``repro.api`` parse server responses, CLI output and example scripts
with the same code.

Versioning policy: ``SCHEMA_VERSION`` bumps only on incompatible shape
changes; additive optional fields keep the version.  Decoders accept any
payload whose ``v`` is at most the current version (missing optional
fields take their defaults) and reject newer ones, so old clients fail
loudly against a newer server instead of mis-parsing it.

Values inside messages are restricted to the JSON scalar set (``None``,
``bool``, ``int``, ``float``, ``str``) plus lists/tuples and
string-keyed dicts of the same — :func:`wire_value` coerces anything
else to ``str`` at construction time, never at decode time, so a
round-tripped message compares equal to the one that was sent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, Type

SCHEMA_VERSION = 1
API_PREFIX = "/v1"

_SCALARS = (bool, int, float, str)


def wire_value(value: Any) -> Any:
    """Coerce ``value`` onto the JSON-stable wire domain.

    Scalars pass through; tuples/lists normalize to tuples of wire
    values (decode re-tuples, so equality survives the JSON list trip);
    string-keyed dicts recurse; everything else becomes ``str(value)``.
    """
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(wire_value(v) for v in value)
    if isinstance(value, dict):
        return {str(k): wire_value(v) for k, v in value.items()}
    return str(value)


def _jsonable(value: Any) -> Any:
    """The dump-side twin of :func:`wire_value`: tuples become lists."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


class SchemaError(ValueError):
    """A payload that does not decode under this schema version."""


_MESSAGE_TYPES: Dict[str, Type["Message"]] = {}


@dataclass(frozen=True)
class Message:
    """Base of every wire message; subclasses set ``TYPE``."""

    TYPE = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.TYPE:
            _MESSAGE_TYPES[cls.TYPE] = cls

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"v": SCHEMA_VERSION, "type": self.TYPE}
        for spec in fields(self):
            payload[spec.name] = _jsonable(getattr(self, spec.name))
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_payload(), indent=indent)

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        """Hook: re-shape one field on decode (lists back to tuples)."""
        return wire_value(value)


def from_payload(payload: Dict[str, Any]) -> Message:
    """Decode one wire payload into its message dataclass."""
    if not isinstance(payload, dict):
        raise SchemaError(f"wire payload must be an object, got {type(payload).__name__}")
    version = payload.get("v")
    if not isinstance(version, int) or version < 1:
        raise SchemaError("wire payload carries no schema version 'v'")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"payload schema v{version} is newer than this client "
            f"(v{SCHEMA_VERSION}); upgrade to decode it"
        )
    type_tag = payload.get("type")
    cls = _MESSAGE_TYPES.get(type_tag)
    if cls is None:
        raise SchemaError(f"unknown wire message type {type_tag!r}")
    known = {spec.name for spec in fields(cls)}
    kwargs = {
        name: cls._decode_field(name, value)
        for name, value in payload.items()
        if name in known
    }
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required fields
        raise SchemaError(f"malformed {type_tag!r} payload: {exc}") from None


def from_json(text: str) -> Message:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"wire payload is not JSON: {exc}") from None
    return from_payload(payload)


def to_json(message: Message, indent: Optional[int] = None) -> str:
    return message.to_json(indent=indent)


# -- request/response messages ----------------------------------------------


@dataclass(frozen=True)
class QueryRequest(Message):
    """``POST /v1/query`` body: one AIQL query submission.

    ``client_id`` keys the server's per-client admission fairness
    (defaults to the connection's peer address); ``page_rows`` overrides
    the server's result page size for this query.
    """

    TYPE = "query_request"

    text: str = ""
    client_id: Optional[str] = None
    page_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.text, str) or not self.text.strip():
            raise SchemaError("query_request.text must be a non-empty string")
        if self.page_rows is not None and (
            not isinstance(self.page_rows, int) or self.page_rows < 1
        ):
            raise SchemaError("query_request.page_rows must be >= 1 (or null)")


@dataclass(frozen=True)
class QueryPage(Message):
    """One page of a query result stream.

    A response is one or more pages (NDJSON over HTTP); ``last`` marks
    the final page, which also carries ``meta`` — ``elapsed_ms`` and,
    for degraded sharded reads, the ``completeness`` annotation from
    ``ResultSet.meta['completeness']``.
    """

    TYPE = "query_page"

    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Any, ...], ...] = ()
    page: int = 0
    total_rows: int = 0
    last: bool = True
    meta: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        if name == "meta":
            return wire_value(value) if value else {}
        return super()._decode_field(name, value)


@dataclass(frozen=True)
class ExplainReportPayload(Message):
    """The EXPLAIN / EXPLAIN ANALYZE report on the wire.

    The one schema behind ``GET /v1/explain``, ``repro explain --json``
    and :meth:`repro.obs.explain.ExplainReport.to_json`.
    """

    TYPE = "explain_report"

    query: str = ""
    kind: str = ""
    plan: Tuple[str, ...] = ()
    rows: Optional[int] = None
    scheduler: Optional[Dict[str, Any]] = None
    completeness: Optional[Dict[str, Any]] = None
    trace: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class SubscribeRequest(Message):
    """WebSocket client -> server: register a standing query."""

    TYPE = "subscribe"

    query: str = ""
    name: Optional[str] = None
    window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, str) or not self.query.strip():
            raise SchemaError("subscribe.query must be a non-empty string")


@dataclass(frozen=True)
class SubscribeAck(Message):
    """Server -> client: the standing query is registered."""

    TYPE = "subscribe_ack"

    name: str = ""
    patterns: int = 0
    window_s: float = 0.0


@dataclass(frozen=True)
class UnsubscribeRequest(Message):
    """WebSocket client -> server: drop a standing query by name."""

    TYPE = "unsubscribe"

    name: str = ""


@dataclass(frozen=True)
class AlertMessage(Message):
    """One standing-query alert pushed over the WebSocket.

    ``key`` is the matched tuple's event ids in pattern order;
    ``events`` are compact event summaries (id, agent, op, entity ids,
    times); ``latency_ms`` is the commit-entry -> emission latency the
    continuous engine measured (alert-path freshness, not network time).
    """

    TYPE = "alert"

    subscription: str = ""
    query: str = ""
    key: Tuple[int, ...] = ()
    time: float = 0.0
    latency_ms: Optional[float] = None
    events: Tuple[Dict[str, Any], ...] = ()


@dataclass(frozen=True)
class ErrorEnvelope(Message):
    """Every error the public surface reports, in one shape.

    ``code`` is a stable dotted identifier from the taxonomy in
    :mod:`repro.api.errors`; ``http_status`` is the status the network
    service pairs it with; ``retryable`` tells clients whether backing
    off and re-submitting can succeed (overload, shard recovery), and
    ``retry_after_s`` suggests how long to wait when the server knows.
    """

    TYPE = "error"

    code: str = "server.internal"
    message: str = ""
    http_status: int = 500
    retryable: bool = False
    retry_after_s: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        if name == "detail":
            return wire_value(value) if value else {}
        return super()._decode_field(name, value)


@dataclass(frozen=True)
class StatsPayload(Message):
    """``GET /v1/stats``: deployment stats + the metrics snapshot."""

    TYPE = "stats"

    stats: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class HealthPayload(Message):
    """``GET /healthz``: liveness plus the schema version served."""

    TYPE = "health"

    status: str = "ok"
    api: str = API_PREFIX


# -- constructors from engine objects ---------------------------------------


def pages_from_result(
    result: Any,
    page_rows: int,
    elapsed_ms: Optional[float] = None,
) -> Tuple[QueryPage, ...]:
    """Slice a :class:`~repro.engine.result.ResultSet` into wire pages.

    Every page repeats the column header (pages are self-describing);
    the final page carries ``meta`` — ``elapsed_ms`` plus whatever the
    engine attached to ``result.meta`` (e.g. the degraded-read
    ``completeness`` annotation).  An empty result is one empty page.
    """
    if page_rows < 1:
        raise ValueError("page_rows must be >= 1")
    columns = tuple(result.columns)
    rows = [tuple(wire_value(v) for v in row) for row in result.rows]
    total = len(rows)
    meta: Dict[str, Any] = {str(k): wire_value(v) for k, v in result.meta.items()}
    if elapsed_ms is not None:
        meta["elapsed_ms"] = round(elapsed_ms, 3)
    pages = []
    bounds = range(0, max(total, 1), page_rows)
    for index, lo in enumerate(bounds):
        last = lo + page_rows >= total
        pages.append(
            QueryPage(
                columns=columns,
                rows=tuple(rows[lo : lo + page_rows]),
                page=index,
                total_rows=total,
                last=last,
                meta=meta if last else {},
            )
        )
    return tuple(pages)


def result_from_pages(pages: Any) -> Tuple[Tuple[str, ...], list, Dict[str, Any]]:
    """Reassemble ``(columns, rows, meta)`` from a page stream."""
    columns: Tuple[str, ...] = ()
    rows: list = []
    meta: Dict[str, Any] = {}
    for page in pages:
        if not isinstance(page, QueryPage):
            raise SchemaError(
                f"expected query_page, got {getattr(page, 'TYPE', type(page).__name__)!r}"
            )
        columns = page.columns
        rows.extend(page.rows)
        if page.last:
            meta = dict(page.meta)
    return columns, rows, meta


def alert_message(alert: Any, subscription: Optional[str] = None) -> AlertMessage:
    """Wire form of a :class:`repro.service.continuous.Alert`."""
    return AlertMessage(
        subscription=subscription if subscription is not None else alert.query,
        query=alert.query,
        key=tuple(int(k) for k in alert.key),
        time=float(alert.time),
        latency_ms=(
            round(alert.latency_s * 1000.0, 3)
            if alert.latency_s is not None
            else None
        ),
        events=tuple(event_summary(event) for event in alert.events),
    )


def event_summary(event: Any) -> Dict[str, Any]:
    """Compact, wire-safe summary of one :class:`SystemEvent`."""
    return {
        "id": event.event_id,
        "agent": event.agent_id,
        "op": str(getattr(event.operation, "value", event.operation)),
        "subject": event.subject_id,
        "object": event.object_id,
        "otype": str(getattr(event.object_type, "value", event.object_type)),
        "start": event.start_time,
        "end": event.end_time,
    }


def explain_payload(report: Any) -> ExplainReportPayload:
    """Wire form of an :class:`repro.obs.explain.ExplainReport`."""
    return ExplainReportPayload(
        query=report.query,
        kind=report.kind,
        plan=tuple(report.plan),
        rows=report.rows,
        scheduler=wire_value(report.scheduler),
        completeness=wire_value(report.completeness),
        trace=(
            wire_value(report.root.to_dict()) if report.root is not None else None
        ),
    )
