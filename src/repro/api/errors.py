"""The public error taxonomy: every failure gets a stable dotted code.

:func:`classify` maps any exception the query/subscription/ingest
surface can raise onto an :class:`~repro.api.schema.ErrorEnvelope` with
a documented code, the HTTP status the network service pairs with it,
and a retryability flag.  The codes are part of the versioned wire
contract — tests pin each mapping, and clients may switch on them.

==========================  ======  =========  =================================
code                        status  retryable  raised by
==========================  ======  =========  =================================
``aiql.syntax``             400     no         :class:`AIQLSyntaxError`
``aiql.semantic``           400     no         :class:`AIQLSemanticError`
``aiql.invalid``            400     no         any other :class:`AIQLError`
``aiql.subscription``       400     no         :class:`ContinuousError`
``request.invalid``         400     no         malformed wire payloads
``request.not_found``       404     no         unknown route
``request.method``          405     no         wrong HTTP method on a route
``request.too_large``       413     no         body over the server limit
``server.overloaded``       429     yes        admission control shedding load
``shard.timeout``           503     yes        :class:`ShardTimeout`
``shard.commit_failed``     503     yes        :class:`ShardCommitError`
``shard.unavailable``       503     yes        any other :class:`ShardError`
``server.internal``         500     no         anything unclassified
==========================  ======  =========  =================================

Degraded sharded reads are *not* errors: they answer 200 with the
``completeness`` annotation on the final :class:`QueryPage`'s meta.

Imports of the exception types are lazy so this module stays cycle-free
(``repro.api`` is imported by the observability layer, which everything
else imports).
"""

from __future__ import annotations

from typing import Optional

from repro.api.schema import ErrorEnvelope, SchemaError, wire_value


class Code:
    """Stable error-code constants (see the module table)."""

    SYNTAX = "aiql.syntax"
    SEMANTIC = "aiql.semantic"
    QUERY_INVALID = "aiql.invalid"
    SUBSCRIPTION_INVALID = "aiql.subscription"
    REQUEST_INVALID = "request.invalid"
    NOT_FOUND = "request.not_found"
    METHOD_NOT_ALLOWED = "request.method"
    PAYLOAD_TOO_LARGE = "request.too_large"
    OVERLOADED = "server.overloaded"
    SHARD_TIMEOUT = "shard.timeout"
    SHARD_COMMIT_FAILED = "shard.commit_failed"
    SHARD_UNAVAILABLE = "shard.unavailable"
    INTERNAL = "server.internal"


_STATUS = {
    Code.SYNTAX: 400,
    Code.SEMANTIC: 400,
    Code.QUERY_INVALID: 400,
    Code.SUBSCRIPTION_INVALID: 400,
    Code.REQUEST_INVALID: 400,
    Code.NOT_FOUND: 404,
    Code.METHOD_NOT_ALLOWED: 405,
    Code.PAYLOAD_TOO_LARGE: 413,
    Code.OVERLOADED: 429,
    Code.SHARD_TIMEOUT: 503,
    Code.SHARD_COMMIT_FAILED: 503,
    Code.SHARD_UNAVAILABLE: 503,
    Code.INTERNAL: 500,
}

_RETRYABLE = frozenset(
    (Code.OVERLOADED, Code.SHARD_TIMEOUT, Code.SHARD_COMMIT_FAILED,
     Code.SHARD_UNAVAILABLE)
)


def envelope(
    code: str,
    message: str,
    retry_after_s: Optional[float] = None,
    **detail: object,
) -> ErrorEnvelope:
    """Build an envelope for ``code`` with the taxonomy's status/retry."""
    return ErrorEnvelope(
        code=code,
        message=message,
        http_status=_STATUS.get(code, 500),
        retryable=code in _RETRYABLE,
        retry_after_s=retry_after_s,
        detail={k: wire_value(v) for k, v in detail.items() if v is not None},
    )


def classify(exc: BaseException) -> ErrorEnvelope:
    """Map an exception from the public surface onto its envelope."""
    from repro.lang.errors import AIQLError, AIQLSemanticError, AIQLSyntaxError

    if isinstance(exc, AIQLSyntaxError):
        return envelope(
            Code.SYNTAX, str(exc), line=exc.line or None, column=exc.column or None
        )
    if isinstance(exc, AIQLSemanticError):
        return envelope(Code.SEMANTIC, str(exc), hint=exc.hint)
    if isinstance(exc, AIQLError):
        return envelope(Code.QUERY_INVALID, str(exc))
    if isinstance(exc, SchemaError):
        return envelope(Code.REQUEST_INVALID, str(exc))

    # Server-local types (the admission controller's shed signal).
    overloaded = getattr(exc, "retry_after_s", None)
    if type(exc).__name__ == "Overloaded":
        return envelope(Code.OVERLOADED, str(exc), retry_after_s=overloaded)

    try:  # subscription surface (pulls in the engine stack — lazy)
        from repro.service.continuous import ContinuousError
    except ImportError:  # pragma: no cover - continuous always importable
        ContinuousError = ()  # type: ignore[assignment]
    if isinstance(exc, ContinuousError):
        return envelope(Code.SUBSCRIPTION_INVALID, str(exc))

    try:  # sharded deployments only
        from repro.shard.coordinator import (
            ShardCommitError,
            ShardError,
            ShardTimeout,
        )
    except ImportError:  # pragma: no cover - shard always importable
        ShardError = ShardTimeout = ShardCommitError = ()  # type: ignore
    if isinstance(exc, ShardTimeout):
        return envelope(Code.SHARD_TIMEOUT, str(exc))
    if isinstance(exc, ShardCommitError):
        return envelope(
            Code.SHARD_COMMIT_FAILED,
            str(exc),
            acked_shards=list(exc.acked_shards),
            failed_shards=list(exc.failed_shards),
        )
    if isinstance(exc, ShardError):
        return envelope(Code.SHARD_UNAVAILABLE, str(exc))

    return envelope(Code.INTERNAL, str(exc) or type(exc).__name__,
                    type=type(exc).__name__)


def render(env: ErrorEnvelope) -> str:
    """One-line human rendering used by the CLI's error paths."""
    text = f"error[{env.code}]: {env.message}"
    if env.retry_after_s is not None:
        text += f" (retry after {env.retry_after_s:.1f}s)"
    return text


def exit_code(env: ErrorEnvelope) -> int:
    """CLI exit code for an envelope: 2 for bad requests/usage, 1 else."""
    return 2 if env.code.startswith("request.") else 1
