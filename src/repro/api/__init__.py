"""``repro.api`` — the versioned public wire schema (ISSUE 10).

One serializable request/response/error contract shared by the asyncio
network service (:mod:`repro.server`), the CLI's ``--json`` outputs,
``examples/client.py`` and in-process callers:

* :mod:`repro.api.schema` — the message dataclasses
  (:class:`QueryRequest`, :class:`QueryPage`, :class:`AlertMessage`,
  :class:`ErrorEnvelope`, :class:`ExplainReportPayload`,
  :class:`StatsPayload`, subscribe/ack messages) with lossless
  ``to_json``/``from_json`` codecs and ``SCHEMA_VERSION`` gating;
* :mod:`repro.api.errors` — the stable error taxonomy: dotted codes,
  HTTP statuses, retryability, :func:`classify` from exceptions.
"""

from repro.api.errors import Code, classify, envelope, exit_code, render
from repro.api.schema import (
    API_PREFIX,
    AlertMessage,
    ErrorEnvelope,
    ExplainReportPayload,
    HealthPayload,
    Message,
    QueryPage,
    QueryRequest,
    SCHEMA_VERSION,
    SchemaError,
    StatsPayload,
    SubscribeAck,
    SubscribeRequest,
    UnsubscribeRequest,
    alert_message,
    event_summary,
    explain_payload,
    from_json,
    from_payload,
    pages_from_result,
    result_from_pages,
    to_json,
    wire_value,
)

__all__ = [
    "API_PREFIX",
    "AlertMessage",
    "Code",
    "ErrorEnvelope",
    "ExplainReportPayload",
    "HealthPayload",
    "Message",
    "QueryPage",
    "QueryRequest",
    "SCHEMA_VERSION",
    "SchemaError",
    "StatsPayload",
    "SubscribeAck",
    "SubscribeRequest",
    "UnsubscribeRequest",
    "alert_message",
    "classify",
    "envelope",
    "event_summary",
    "exit_code",
    "explain_payload",
    "from_json",
    "from_payload",
    "pages_from_result",
    "render",
    "result_from_pages",
    "to_json",
    "wire_value",
]
