"""The AIQL system facade (paper Fig. 2).

:class:`AIQLSystem` wires the three components together: optimized data
storage (Sec. 3), the language parser (Sec. 4) and the query execution
engine (Sec. 5).  Typical use::

    from repro import AIQLSystem

    system = AIQLSystem()
    ingestor = system.ingestor
    # ... feed events (e.g. via repro.workload generators) ...
    result = system.query('''
        agentid = 1
        (at "01/01/2017")
        proc p2 start proc p1 as evt1
        proc p3 read file[".viminfo" || ".bash_history"] as evt2
        with p1 = p3, evt1 before evt2
        return p2, p1
    ''')
    print(result.to_text())
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import List, Optional

from repro.core.config import SystemConfig
from repro.engine import compile_query
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.engine.result import ResultSet
from repro.lang.context import QueryContext
from repro.model.entities import EntityRegistry
from repro.obs import trace as obs_trace
from repro.obs.explain import ExplainReport, plan_lines
from repro.obs.metrics import REGISTRY, flatten_gauges, set_metrics_enabled
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import Trace, trace_span
from repro.service import (
    QueryService,
    ScanCache,
    StreamSession,
    get_shared_executor,
    shutdown_shared_executor,
)
from repro.service.continuous import ContinuousQueryEngine, Subscription
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.kernels import set_columnar
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore

# Same metric names the query service registers — the registry dedups by
# name, so facade queries and service queries accumulate into one series.
_M_QUERIES = REGISTRY.counter("aiql_queries_total", "Queries executed")
_M_QUERY_SECONDS = REGISTRY.histogram(
    "aiql_query_seconds", "End-to-end query latency"
)


def _build_store(config: SystemConfig, registry: EntityRegistry):
    # Process-wide, like the shared executor: the last-constructed system
    # decides whether compiled kernels run block-at-a-time.
    set_columnar(config.columnar)
    executor = get_shared_executor(config.max_workers)
    if config.backend == "partitioned":
        return EventStore(
            registry=registry,
            scheme=PartitionScheme(agents_per_group=config.agents_per_group),
            executor=executor,
            scan_cache=ScanCache(config.scan_cache_entries)
            if config.scan_cache
            else None,
        )
    if config.backend == "flat":
        return FlatStore(registry=registry)
    return SegmentedStore(
        registry=registry,
        segments=config.segments,
        policy=config.distribution,
        executor=executor,
    )


class AIQLSystem:
    """End-to-end AIQL deployment: ingestion, storage, parsing, execution."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        ingestor: Optional[Ingestor] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.ingestor = ingestor or Ingestor()
        self._wal = None
        self.compactor = None
        self.recovery = None
        # Process-wide, like set_columnar below: the last-constructed
        # system decides whether the metrics registry records.
        set_metrics_enabled(self.config.metrics)
        self.slow_log = (
            SlowQueryLog(
                self.config.slow_query_ms, self.config.slow_query_log_entries
            )
            if self.config.slow_query_ms is not None
            else None
        )
        if self.config.shards:
            # Sharded deployment (repro.shard): worker processes own the
            # hot tiers and — when data_dir is set — their own WALs, cold
            # segments and compactors, so none of the in-process tier
            # wiring below applies; construction merges per-shard
            # recovery into the ingestor's counters and registry.
            from repro.shard import ShardedStore

            set_columnar(self.config.columnar)
            self.store = ShardedStore(self.ingestor, self.config)
            self.recovery = self.store.recovery
        else:
            self.store = _build_store(self.config, self.ingestor.registry)
            if self.config.data_dir is not None:
                # Durable tiered deployment: opening the data dir *is*
                # crash recovery (an empty directory recovers to an empty
                # system).  The hot backend built above becomes the hot
                # tier; every commit hits the WAL before it publishes.
                from repro.tier import Compactor, open_data_dir

                self.store, self._wal, self.recovery = open_data_dir(
                    self.config.data_dir,
                    self.store,
                    self.ingestor,
                    retention_days=self.config.retention_days,
                    wal_sync=self.config.wal_sync,
                    cold_cache_segments=self.config.cold_cache_segments,
                    cold_scan_cache_entries=self.config.cold_scan_cache_entries,
                )
                if self.config.retention_days is not None:
                    self.compactor = Compactor(
                        self.store,
                        retention_days=self.config.retention_days,
                        interval_s=self.config.compact_interval_s,
                    ).start()
        self.ingestor.attach(self.store)
        self._multievent = MultieventExecutor(
            self.store,
            scheduling=self.config.scheduling,
            parallel=self.config.parallel,
        )
        self._anomaly = AnomalyExecutor(
            self.store,
            scheduling=self.config.scheduling,
            parallel=self.config.parallel,
        )
        self._service: Optional[QueryService] = None
        self._continuous: Optional[ContinuousQueryEngine] = None

    @classmethod
    def over(
        cls,
        store,
        ingestor: Optional[Ingestor] = None,
        config: Optional[SystemConfig] = None,
    ) -> "AIQLSystem":
        """Wrap an already-populated store (e.g. one built by
        :func:`repro.workload.loader.build_enterprise`)."""
        self = cls.__new__(cls)
        self.config = config or SystemConfig()
        self._wal = None
        self.compactor = None
        self.recovery = None
        set_metrics_enabled(self.config.metrics)
        self.slow_log = (
            SlowQueryLog(
                self.config.slow_query_ms, self.config.slow_query_log_entries
            )
            if self.config.slow_query_ms is not None
            else None
        )
        if ingestor is None:
            ingestor = Ingestor(registry=store.registry)
            ingestor.attach(store)
        self.ingestor = ingestor
        self.store = store
        if (
            self.config.scan_cache
            and isinstance(store, EventStore)
            and store.scan_cache is None
        ):
            store.scan_cache = ScanCache(self.config.scan_cache_entries)
        self._service = None
        self._continuous = None
        self._multievent = MultieventExecutor(
            store,
            scheduling=self.config.scheduling,
            parallel=self.config.parallel,
        )
        self._anomaly = AnomalyExecutor(
            store,
            scheduling=self.config.scheduling,
            parallel=self.config.parallel,
        )
        return self

    @classmethod
    def recover(
        cls,
        data_dir: str,
        config: Optional[SystemConfig] = None,
    ) -> "AIQLSystem":
        """Recover a durable deployment from its data directory.

        Replays ``snapshot + WAL`` into a fresh hot backend, attaches the
        cold tier and continues the event stream where the last durable
        commit left it.  Equivalent to constructing a system whose config
        points at ``data_dir``; the explicit name exists for the recovery
        path to be discoverable (and for the CLI's ``repro recover``).
        """
        from dataclasses import replace

        config = replace(config or SystemConfig(), data_dir=str(data_dir))
        return cls(config)

    # -- durability ------------------------------------------------------------

    @property
    def durable(self) -> bool:
        # In-process deployments hold the WAL here; sharded ones delegate
        # (each worker owns its shard's WAL).
        return self._wal is not None or bool(
            getattr(self.store, "durable", False)
        )

    def checkpoint(self) -> int:
        """Snapshot registry + hot tier, truncate the WAL; returns events
        written.  Requires a durable (``data_dir``) deployment.  Sharded
        deployments checkpoint every shard (each snapshots its own hot
        slice and truncates its own WAL)."""
        self._require_durable()
        if self._wal is None:
            return self.store.checkpoint()
        from repro.tier import checkpoint

        return checkpoint(self.config.data_dir, self.store, self._wal)

    def compact(self, retention_days: Optional[int] = None):
        """Run one hot-to-cold migration pass; returns the report."""
        self._require_durable()
        return self.store.compact(
            retention_days
            if retention_days is not None
            else self.config.retention_days
        )

    def close(self) -> None:
        """Release everything this deployment holds (idempotent).

        Stops the background compactor, closes the WAL, shuts down shard
        worker processes (sharded deployments), and shuts the process-wide
        shared executor's threads down — leaked pool threads otherwise
        survive into forked children, where a lock held by a thread that
        no longer exists deadlocks.  The shared executor lazily rebuilds
        its pool if anything in the process uses it again, so closing one
        system never breaks another.
        """
        if self.compactor is not None:
            self.compactor.stop()
        if self._wal is not None:
            self._wal.close()
        store_close = getattr(self.store, "close", None)
        if store_close is not None:
            store_close()
        shutdown_shared_executor()

    def __enter__(self) -> "AIQLSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_durable(self) -> None:
        if not self.durable:
            raise RuntimeError(
                "not a durable deployment: construct the system with "
                "SystemConfig(data_dir=...) to enable tiered storage"
            )

    # -- query pipeline ------------------------------------------------------

    def compile(self, text: str) -> QueryContext:
        """Parse + semantic analysis, without executing."""
        return compile_query(text)

    def query(self, text: str) -> ResultSet:
        """Parse, compile, optimize and execute one AIQL query."""
        started = time.perf_counter()
        ctx = self.compile(text)
        result = self.execute(ctx)
        elapsed = time.perf_counter() - started
        _M_QUERIES.inc()
        _M_QUERY_SECONDS.observe(elapsed)
        if self.slow_log is not None:
            self.slow_log.observe(
                QueryService.canonical_text(text),
                elapsed,
                rows=len(result),
                detail={"kind": ctx.kind},
            )
        return result

    def execute(self, ctx: QueryContext) -> ResultSet:
        mark = self._completeness_mark()
        if ctx.kind == "anomaly":
            result = self._anomaly.run(ctx)
        else:
            result = self._multievent.run(ctx)
        self._attach_completeness(result, mark)
        return result

    def _completeness_mark(self) -> Optional[int]:
        """Degraded-read bookkeeping mark (sharded stores only)."""
        marker = getattr(self.store, "completeness_mark", None)
        return marker() if marker is not None else None

    def _attach_completeness(self, result: ResultSet, mark) -> None:
        """Annotate ``result.meta`` when any scan it ran was partial.

        A sharded store under the ``degraded`` read policy records a
        completeness entry for every scatter scan that answered without
        all shards; the merge of the entries recorded during this
        execution (missing shards, estimated missed rows) lands in
        ``result.meta['completeness']`` so callers — and the query
        service's responses — can tell a complete answer from a
        best-effort one.
        """
        if mark is None:
            return
        summary = self.store.completeness_since(mark)
        if summary is not None:
            result.meta["completeness"] = summary

    def explain(self, text: str, *, analyze: bool = True) -> ExplainReport:
        """Execution plan for ``text``; with ``analyze`` (EXPLAIN ANALYZE)
        the query also *runs* under a trace, so the report carries a span
        tree (parse → schedule → per-pattern scans → narrowing re-queries
        → joins → project) with timings, cardinalities and cache/prune
        annotations.  ``analyze=False`` — or ``SystemConfig(tracing=False)``
        — returns the static plan only (pattern scores, rel order).

        The report stringifies to its text rendering, so existing callers
        that printed ``explain()`` keep working unchanged.
        """
        if not (analyze and self.config.tracing):
            ctx = self.compile(text)
            return ExplainReport(query=text, kind=ctx.kind, plan=plan_lines(ctx))
        started = time.perf_counter()
        mark = self._completeness_mark()
        trace = Trace("query")
        with obs_trace.activate(trace):
            with trace_span("parse"):
                ctx = self.compile(text)
            if ctx.kind == "anomaly":
                result, stats = self._anomaly.run_with_stats(ctx)
            else:
                result, stats = self._multievent.run_with_stats(ctx)
        self._attach_completeness(result, mark)
        # EXPLAIN ANALYZE executes the query, so it counts as one (same
        # convention as PostgreSQL's statistics views).
        elapsed = time.perf_counter() - started
        _M_QUERIES.inc()
        _M_QUERY_SECONDS.observe(elapsed)
        if self.slow_log is not None:
            self.slow_log.observe(
                QueryService.canonical_text(text),
                elapsed,
                rows=len(result),
                detail={"kind": ctx.kind, "explain": True},
            )
        return ExplainReport(
            query=text,
            kind=ctx.kind,
            plan=plan_lines(ctx),
            root=trace.root,
            rows=len(result),
            scheduler=asdict(stats),
            completeness=result.meta.get("completeness"),
        )

    # -- observability ---------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the engine metrics plus
        point-in-time gauges sampled from this deployment's ``stats()``."""
        return REGISTRY.render(
            extra_gauges=flatten_gauges("aiql_system", self.stats())
        )

    def metrics_snapshot(self) -> dict:
        """The metrics registry as plain dicts (counters, histogram p50/p99)."""
        return REGISTRY.snapshot()

    def slow_queries(self) -> List[SlowQuery]:
        """Recorded slow queries, oldest first (empty when the log is off).

        Covers :meth:`query` and everything submitted through the query
        service; enable with ``SystemConfig(slow_query_ms=...)``.
        """
        return self.slow_log.entries() if self.slow_log is not None else []

    # -- concurrent service ----------------------------------------------------

    @property
    def service(self) -> QueryService:
        """The concurrent query front-end over this system's store.

        Created lazily; all submissions share the process-wide executor
        and the store's partition-scan cache.
        """
        if self._service is None:
            self._service = QueryService(
                self.store,
                scheduling=self.config.scheduling,
                parallel=self.config.parallel,
                slow_log=self.slow_log,
            )
        return self._service

    def query_many(self, texts) -> list:
        """Execute a batch of queries concurrently (order-preserving)."""
        return self.service.run_many(texts)

    # -- live ingestion --------------------------------------------------------

    def stream(self, *, batch_size: Optional[int] = None) -> StreamSession:
        """Open a live-ingestion session over this system's ingestor.

        Events appended to the session become visible to queries at each
        batch commit (atomic per partition, monotone watermark); only the
        scan-cache entries of partitions a batch touches are invalidated,
        so concurrent queries over other partitions stay cache-warm.  Every
        committed batch is also pushed through the continuous query engine,
        so standing queries registered via :meth:`subscribe` alert from
        this session's commits (even when registered later).
        """
        session = StreamSession(
            self.ingestor,
            batch_size=batch_size or self.config.stream_batch_size,
        )
        session.on_commit(self._push_continuous)
        return session

    # -- continuous standing queries -------------------------------------------

    @property
    def continuous(self) -> ContinuousQueryEngine:
        """The standing-query engine over this system's live stream.

        Created lazily on first access/subscription; fed by the commit
        hooks of every :meth:`stream` session.
        """
        if self._continuous is None:
            self._continuous = ContinuousQueryEngine(
                self.ingestor.registry,
                default_window_s=self.config.continuous_window_s,
                max_window_s=self.config.continuous_max_window_s,
                max_subscriptions=self.config.continuous_max_subscriptions,
                alert_queue=self.config.continuous_alert_queue,
            )
        return self._continuous

    def subscribe(
        self,
        text: str,
        *,
        callback=None,
        window_s: Optional[float] = None,
        name: Optional[str] = None,
    ) -> Subscription:
        """Register ``text`` as a standing query over the live stream.

        Each stream-batch commit is evaluated incrementally (compiled
        kernels + delta joins over sliding windows) and every newly
        matched tuple emits an :class:`~repro.service.continuous.Alert`
        to ``callback`` and the engine's alert queue.
        """
        return self.continuous.subscribe(
            text, callback=callback, window_s=window_s, name=name
        )

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a standing query registered via :meth:`subscribe`."""
        self.continuous.unsubscribe(sub)

    def alerts(self) -> list:
        """Drain and return the queued alerts (oldest first)."""
        if self._continuous is None:
            return []
        return self._continuous.drain()

    def _push_continuous(self, batch, started: float) -> None:
        if self._continuous is not None:
            self._continuous.push(batch, started)

    # -- network service -------------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """The network front door over this deployment (:mod:`repro.server`).

        Returns an unstarted :class:`~repro.server.AIQLServer` exposing the
        versioned :mod:`repro.api` surface — ``POST /v1/query`` (streamed
        :class:`~repro.api.QueryPage` NDJSON), ``GET /v1/explain``,
        ``/v1/metrics``, ``/v1/stats``, ``/healthz`` and the ``/v1/alerts``
        WebSocket pushing standing-query alerts.  Drive it with
        ``await server.run()`` inside an event loop, or
        ``server.start_background()`` for a daemon-thread deployment
        (tests, benchmarks, embedding)::

            handle = system.serve(port=8080).start_background()
            ...
            handle.stop()

        ``port=0`` binds an ephemeral port (read it off ``server.port``
        once started).  Query execution, admission control and alert fan-
        out all run over this system's existing query service, shared
        executor and continuous engine.
        """
        from repro.server import AIQLServer

        return AIQLServer(self, host=host, port=port)

    # -- introspection ---------------------------------------------------------

    @property
    def last_scheduler_stats(self):
        return self._multievent.last_stats or self._anomaly.last_stats

    def stats(self) -> dict:
        stats = dict(self.store.stats())
        cache = getattr(self.store, "scan_cache", None)
        if cache is not None:
            stats["scan_cache"] = cache.stats()
        if self._wal is not None:
            stats["wal"] = self._wal.stats()
        if self.compactor is not None:
            stats["compactor"] = self.compactor.stats()
        if self.recovery is not None:
            stats["recovery"] = self.recovery.to_dict()
        if self._continuous is not None:
            stats["continuous"] = self._continuous.stats()
        if self.slow_log is not None:
            stats["slow_queries"] = self.slow_log.stats()
        return stats
