"""Interactive investigation sessions (the paper's Sec. 6.2.1 workflow).

Attack investigation is iterative: start from a detector alert, run an
anomaly query, pull the suspicious entities out of the result, refine into
multievent queries, repeat — "4-5 iterations are needed before finding a
complete query with 5-7 event patterns".  :class:`InvestigationSession`
captures that loop: it keeps the query history, per-query timing, and the
entity values discovered so far, so an analyst (or the example scripts) can
replay a full investigation and render a report at the end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.system import AIQLSystem
from repro.engine.result import ResultSet


@dataclass
class InvestigationStep:
    """One executed query inside a session."""

    label: str
    query: str
    result: ResultSet
    seconds: float
    note: str = ""

    @property
    def rows(self) -> int:
        return len(self.result)


@dataclass
class InvestigationSession:
    """Iterative query-refine loop over one AIQL system."""

    system: AIQLSystem
    name: str = "investigation"
    steps: List[InvestigationStep] = field(default_factory=list)
    findings: Dict[str, Set[object]] = field(default_factory=dict)

    def run(self, label: str, query: str, note: str = "") -> ResultSet:
        """Execute a query, record timing, and harvest findings."""
        started = time.perf_counter()
        result = self.system.query(query)
        elapsed = time.perf_counter() - started
        self.steps.append(
            InvestigationStep(
                label=label,
                query=query.strip(),
                result=result,
                seconds=elapsed,
                note=note,
            )
        )
        for column in result.columns:
            values = self.findings.setdefault(column, set())
            for value in result.column(column):
                if value is not None:
                    values.add(value)
        return result

    # -- reporting -----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(step.seconds for step in self.steps)

    def finding(self, column: str) -> Set[object]:
        return self.findings.get(column, set())

    def report(self) -> str:
        """Text report of the whole investigation."""
        lines = [f"=== {self.name} ===", ""]
        for i, step in enumerate(self.steps, 1):
            lines.append(
                f"[{i}] {step.label} — {step.rows} row(s) in "
                f"{step.seconds * 1000:.1f} ms"
            )
            if step.note:
                lines.append(f"    {step.note}")
        lines.append("")
        lines.append(
            f"total: {len(self.steps)} queries, "
            f"{self.total_seconds * 1000:.1f} ms"
        )
        return "\n".join(lines)
