"""Bounded retry with exponential backoff and jitter (ISSUE 9).

One policy object shared by everything that retries — the shard
coordinator's idempotent command retries, supervised worker respawns,
and any future network front door.  The policy is *deterministic given a
seeded RNG*: tests (and the chaos harness) can replay the exact delay
sequence a production run would have used, which is what makes
fault-injection runs reproducible end to end.

Two entry points:

* :meth:`RetryPolicy.delays` — the pure delay schedule (``attempts - 1``
  values), for callers that drive their own loop (the coordinator
  interleaves recovery work between attempts);
* :func:`retry_call` — the classic wrapper for self-contained callables.

Backoff shape: attempt ``k`` (0-based) waits ``base * multiplier**k``
capped at ``max_delay_s``, then multiplied by a jitter factor drawn
uniformly from ``[1 - jitter, 1 + jitter]``.  Every delay is therefore
bounded by ``max_delay_s * (1 + jitter)`` and never negative — the
property suite pins both bounds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with symmetric jitter."""

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be >= 0")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The delay before each retry (``attempts - 1`` values).

        With a seeded ``rng`` the sequence is fully deterministic; with
        ``None`` a process-global source is used (production default).
        """
        draw = (rng or random).uniform
        delay = self.base_delay_s
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay_s) * draw(
                1.0 - self.jitter, 1.0 + self.jitter
            )
            delay = min(delay * self.multiplier, self.max_delay_s)

    @property
    def max_total_delay_s(self) -> float:
        """Upper bound on the summed backoff across all retries."""
        total, delay = 0.0, self.base_delay_s
        for _ in range(self.attempts - 1):
            total += min(delay, self.max_delay_s) * (1.0 + self.jitter)
            delay = min(delay * self.multiplier, self.max_delay_s)
        return total


def retry_call(
    fn: Callable,
    policy: RetryPolicy = RetryPolicy(),
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn`` with bounded retries; re-raises the last failure.

    Only exceptions in ``retry_on`` are retried — anything else (a
    deterministic error that retrying cannot fix) propagates on the
    first occurrence, which is the fail-fast half of the shard
    coordinator's idempotent/non-idempotent split.  ``on_retry(attempt,
    exc)`` fires before each backoff sleep, so callers can count retries
    or interleave recovery work.
    """
    delays = list(policy.delays(rng))
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == policy.attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if delays[attempt] > 0:
                sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
