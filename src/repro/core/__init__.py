"""Public facade for the AIQL reproduction."""

from repro.core.config import BACKENDS, SCHEDULINGS, SystemConfig
from repro.core.investigate import InvestigationSession, InvestigationStep
from repro.core.system import AIQLSystem

__all__ = [
    "AIQLSystem",
    "BACKENDS",
    "InvestigationSession",
    "InvestigationStep",
    "SCHEDULINGS",
    "SystemConfig",
]
