"""Configuration knobs for an AIQL system instance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

BACKENDS = ("partitioned", "flat", "segmented")
SCHEDULINGS = ("relationship", "relationship_cardinality", "fetch_filter")
SHARD_READ_POLICIES = ("fail_fast", "degraded")


@dataclass(frozen=True)
class SystemConfig:
    """Storage + engine configuration.

    backend
        ``partitioned`` — the AIQL-optimized store (default);
        ``flat`` — single heap (the stock-PostgreSQL data layout);
        ``segmented`` — MPP segments (the Greenplum substrate).
    scheduling
        ``relationship`` (Algorithm 1, constraint-count scores),
        ``relationship_cardinality`` (the Sec. 7 statistical scoring
        extension) or ``fetch_filter`` (the FF baseline).
    parallel
        parallelize scans over partitions/segments (temporal & spatial
        parallelization, paper Sec. 5.2).
    agents_per_group
        spatial partition width of the partitioned store.
    segments / distribution
        segment count and distribution policy of the segmented store
        (``domain`` = AIQL's semantics-aware placement, ``arrival`` =
        ingest-order placement).
    columnar
        evaluate compiled scan kernels in *columnar* (block-at-a-time)
        mode: one batch-kernel call selects the survivors of a whole
        typed column block instead of testing one materialized event per
        call (default on).  The toggle is process-wide (it flips the
        compiled-kernel dispatch in :mod:`repro.storage.kernels`, like
        ``max_workers`` it affects every system in the process); disable
        to fall back to the per-event compiled-closure path, e.g. when
        diffing the two executions.
    scan_cache
        enable the partition-scan cache on the partitioned store
        (default on).  Scan results are memoized per
        ``(partition, canonical filter)`` and invalidated automatically
        when ingest appends to a partition; disable for memory-constrained
        deployments or write-dominated workloads.
    scan_cache_entries
        LRU bound of the scan cache: the maximum number of cached
        per-partition scan results (default 512).
    stream_batch_size
        auto-commit threshold of :meth:`AIQLSystem.stream` sessions: a
        live-ingestion batch is committed (published atomically, touched
        partitions invalidated) once this many events are staged.  Smaller
        batches shrink ingest-to-visibility latency; larger batches
        amortize commit overhead and cache invalidations.
    max_workers
        size of the process-wide shared executor that serves both
        concurrent queries and partition/sub-window scan fan-out.
        ``None`` uses the stdlib heuristic (cpu count + 4, capped at 32).
        Only effective for the config that first touches the shared pool;
        later systems in the same process reuse it.
    shards
        ``0`` (default) keeps the store in-process.  ``N >= 1`` deploys
        it sharded across N ``spawn``-started worker processes
        (:mod:`repro.shard`), partitioned by (day, agent-group): each
        worker owns its own hot backend (of ``backend``), scan cache and
        — when ``data_dir`` is set — its own WAL, snapshot and cold
        segments under ``<data_dir>/shard-<i>``.  Scans scatter/gather
        serialized column-block slices; CPU-bound scans scale past the
        GIL with the shard count.  ``backend``, ``scan_cache``,
        ``columnar``, ``retention_days`` etc. configure each worker.
    shard_command_timeout_s
        deadline (seconds) for every coordinator↔worker command other
        than scatter scans: ingest acks, heartbeats, stats/metrics
        pulls, maintenance and the startup hello.  A worker that does
        not answer within it counts as wedged — the supervisor
        quarantines it, SIGKILLs the process and respawns it (durable
        shards replay their WAL).  ``None`` disables the deadline
        (pre-ISSUE-9 blocking behaviour).
    shard_scan_timeout_s
        deadline for one scatter-scan round (scans decompress cold
        segments and run compiled kernels, so they get their own, larger
        budget).  Same recovery semantics as the command timeout.
    shard_retry_attempts
        bounded retry budget for *idempotent* shard commands (scans,
        estimates, stats, metrics, heartbeats, maintenance): each
        attempt recovers the failed worker and re-issues the command,
        with exponential backoff + jitter between attempts
        (:mod:`repro.core.retry`).  Non-idempotent ingest commits never
        retry — they fail fast reporting exactly which shards acked.
    shard_read_policy
        what a scatter scan does when a shard stays unavailable after
        retries: ``fail_fast`` (default) raises
        :class:`~repro.shard.ShardError`; ``degraded`` returns the
        surviving shards' watermark-capped rows plus a completeness
        annotation (missing shard ids, estimated missed rows) threaded
        into ``ResultSet.meta['completeness']`` and EXPLAIN reports.
    shard_heartbeat_interval_s
        period of the supervisor's liveness sweep (process sentinel
        check + heartbeat ping per shard); a dead or wedged worker is
        recovered before the next query trips over it.  ``0`` disables
        the background sweep (failures are then detected at the next
        command).
    shard_max_restarts
        supervised restarts allowed per shard; beyond it the shard is
        marked failed and left quarantined (degraded reads annotate it,
        fail-fast reads raise).  Bounds crash loops.
    shard_chaos
        fault-injection plan for the deployment's workers
        (:mod:`repro.shard.chaos`): an integer seed for a generated
        plan, or an explicit spec like ``"kill@1:scan#0"``.  ``None``
        (default) injects nothing; the ``AIQL_SHARD_CHAOS`` environment
        variable applies when this is unset.  Test/bench harness — not
        for production deployments.
    data_dir
        root of the durable tiered-storage state (``repro.tier``):
        snapshot, write-ahead log and cold segment files.  ``None`` (the
        default) keeps the deployment RAM-only with no durability; a path
        makes every committed batch durable before it publishes and opens
        the directory through recovery (an existing directory restores
        its state, so constructing a system over a crashed data dir *is*
        crash recovery).
    retention_days
        hot-tier retention horizon in data-time days: compaction migrates
        committed events on older days out of RAM into compressed cold
        segments (queries still answer over them through zone-map-pruned
        cold scans).  ``None`` disables compaction; requires ``data_dir``.
    compact_interval_s
        wake-up period of the background compactor thread (only started
        when both ``data_dir`` and ``retention_days`` are set).
    wal_sync
        fsync the write-ahead log on every batch commit (default on).
        Disabling trades crash durability of the tail batch for ingest
        throughput (the OS still sees every write in order).
    cold_cache_segments
        LRU bound of decompressed cold segments kept hot in memory for
        repeated cold-window scans.
    cold_scan_cache_entries
        LRU bound of the cold tier's per-segment scan-result cache
        (keyed by segment file + canonical filter; segments are immutable
        so entries never need invalidation).  ``0`` disables it.
    continuous_window_s
        default sliding-window horizon (seconds of data time) of standing
        queries registered through :meth:`AIQLSystem.subscribe`: matched
        events older than the stream high-water mark minus this horizon
        are evicted from the query's windows and stop pairing into alerts.
    continuous_max_window_s
        upper bound on per-subscription horizons (``None`` = unbounded;
        subscriptions may then keep every match with
        ``window_s=float("inf")``).  Bounding it caps the standing-query
        memory of a deployment regardless of what clients ask for.
    continuous_max_subscriptions
        maximum number of concurrently-registered standing queries.
    continuous_alert_queue
        depth of the engine-level alert queue; when full, the oldest
        undrained alert is dropped (and counted) — callbacks still fire
        for every alert.
    metrics
        enable the engine metrics registry (:mod:`repro.obs.metrics`):
        counters/gauges/histograms across ingest, scans, joins, WAL,
        compaction, continuous queries and shard scatter/gather, exposed
        via :meth:`AIQLSystem.metrics_text` in Prometheus text format.
        Process-wide toggle (like ``columnar``); instrumentation sites
        increment per scan/commit, never per row, so the enabled cost is
        negligible and the disabled cost is one flag check.
    tracing
        allow query tracing: :meth:`AIQLSystem.explain` with
        ``analyze=True`` executes the query under a span tree (parse →
        schedule → per-pattern scans → narrowing re-queries → joins)
        with timings, cardinalities and cache/prune annotations.  When
        off, ``explain`` always returns the static plan only.  Queries
        outside ``explain`` never pay tracing costs either way.
    slow_query_ms
        latency threshold of the slow-query log: queries through
        :meth:`AIQLSystem.query` / the query service slower than this
        (milliseconds) are recorded with their text, latency and row
        count (:meth:`AIQLSystem.slow_queries`).  ``None`` (default)
        disables the log.
    slow_query_log_entries
        ring-buffer size of the slow-query log (oldest entries evicted).
    server_max_inflight
        network front door (:meth:`AIQLSystem.serve`): maximum queries
        executing concurrently on the shared executor.  Arrivals beyond
        it queue per client and are dispatched round-robin.
    server_queue_depth
        total queued requests the server holds before shedding load with
        ``429 server.overloaded`` + ``Retry-After``.
    server_client_queue_depth
        per-client queue bound — one chatty client saturating its own
        queue is rejected without starving the rest.
    server_page_rows
        rows per streamed :class:`~repro.api.QueryPage` when the request
        does not pick its own ``page_rows``.
    server_alert_queue
        per-WebSocket bound on undelivered alerts; beyond it the newest
        alert is dropped (and counted) rather than blocking the stream
        commit thread.
    server_max_body_bytes
        largest accepted HTTP request body (``413 request.too_large``
        beyond it).
    """

    backend: str = "partitioned"
    scheduling: str = "relationship"
    parallel: bool = False
    columnar: bool = True
    agents_per_group: int = 10
    segments: int = 5
    distribution: str = "domain"
    scan_cache: bool = True
    scan_cache_entries: int = 512
    stream_batch_size: int = 256
    max_workers: Optional[int] = None
    shards: int = 0
    shard_command_timeout_s: Optional[float] = 30.0
    shard_scan_timeout_s: Optional[float] = 120.0
    shard_retry_attempts: int = 3
    shard_read_policy: str = "fail_fast"
    shard_heartbeat_interval_s: float = 5.0
    shard_max_restarts: int = 3
    shard_chaos: Optional[str] = None
    data_dir: Optional[str] = None
    retention_days: Optional[int] = None
    compact_interval_s: float = 30.0
    wal_sync: bool = True
    cold_cache_segments: int = 4
    cold_scan_cache_entries: int = 128
    continuous_window_s: float = 3600.0
    continuous_max_window_s: Optional[float] = None
    continuous_max_subscriptions: int = 64
    continuous_alert_queue: int = 1024
    metrics: bool = True
    tracing: bool = True
    slow_query_ms: Optional[float] = None
    slow_query_log_entries: int = 128
    server_max_inflight: int = 8
    server_queue_depth: int = 64
    server_client_queue_depth: int = 16
    server_page_rows: int = 1024
    server_alert_queue: int = 4096
    server_max_body_bytes: int = 1024 * 1024

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.scheduling not in SCHEDULINGS:
            raise ValueError(
                f"unknown scheduling {self.scheduling!r}; "
                f"expected one of {SCHEDULINGS}"
            )
        if self.scan_cache_entries < 1:
            raise ValueError("scan_cache_entries must be >= 1")
        if self.stream_batch_size < 1:
            raise ValueError("stream_batch_size must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if self.shards < 0:
            raise ValueError("shards must be >= 0 (0 = in-process store)")
        if (
            self.shard_command_timeout_s is not None
            and self.shard_command_timeout_s <= 0
        ):
            raise ValueError("shard_command_timeout_s must be > 0 (or None)")
        if (
            self.shard_scan_timeout_s is not None
            and self.shard_scan_timeout_s <= 0
        ):
            raise ValueError("shard_scan_timeout_s must be > 0 (or None)")
        if self.shard_retry_attempts < 1:
            raise ValueError("shard_retry_attempts must be >= 1")
        if self.shard_read_policy not in SHARD_READ_POLICIES:
            raise ValueError(
                f"unknown shard_read_policy {self.shard_read_policy!r}; "
                f"expected one of {SHARD_READ_POLICIES}"
            )
        if self.shard_heartbeat_interval_s < 0:
            raise ValueError(
                "shard_heartbeat_interval_s must be >= 0 (0 disables)"
            )
        if self.shard_max_restarts < 0:
            raise ValueError("shard_max_restarts must be >= 0")
        if self.retention_days is not None:
            if self.retention_days < 1:
                raise ValueError("retention_days must be >= 1 (or None)")
            if self.data_dir is None:
                raise ValueError(
                    "retention_days requires data_dir: cold segments need "
                    "somewhere durable to live"
                )
        if self.compact_interval_s <= 0:
            raise ValueError("compact_interval_s must be > 0")
        if self.cold_cache_segments < 1:
            raise ValueError("cold_cache_segments must be >= 1")
        if self.cold_scan_cache_entries < 0:
            raise ValueError("cold_scan_cache_entries must be >= 0")
        if self.continuous_window_s <= 0:
            raise ValueError("continuous_window_s must be > 0")
        if (
            self.continuous_max_window_s is not None
            and self.continuous_max_window_s <= 0
        ):
            raise ValueError("continuous_max_window_s must be > 0 (or None)")
        if self.continuous_max_subscriptions < 1:
            raise ValueError("continuous_max_subscriptions must be >= 1")
        if self.continuous_alert_queue < 1:
            raise ValueError("continuous_alert_queue must be >= 1")
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise ValueError("slow_query_ms must be >= 0 (or None)")
        if self.slow_query_log_entries < 1:
            raise ValueError("slow_query_log_entries must be >= 1")
        if self.server_max_inflight < 1:
            raise ValueError("server_max_inflight must be >= 1")
        if self.server_queue_depth < 0:
            raise ValueError("server_queue_depth must be >= 0")
        if self.server_client_queue_depth < 1:
            raise ValueError("server_client_queue_depth must be >= 1")
        if self.server_page_rows < 1:
            raise ValueError("server_page_rows must be >= 1")
        if self.server_alert_queue < 1:
            raise ValueError("server_alert_queue must be >= 1")
        if self.server_max_body_bytes < 1024:
            raise ValueError("server_max_body_bytes must be >= 1024")
