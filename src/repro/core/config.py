"""Configuration knobs for an AIQL system instance."""

from __future__ import annotations

from dataclasses import dataclass

BACKENDS = ("partitioned", "flat", "segmented")
SCHEDULINGS = ("relationship", "relationship_cardinality", "fetch_filter")


@dataclass(frozen=True)
class SystemConfig:
    """Storage + engine configuration.

    backend
        ``partitioned`` — the AIQL-optimized store (default);
        ``flat`` — single heap (the stock-PostgreSQL data layout);
        ``segmented`` — MPP segments (the Greenplum substrate).
    scheduling
        ``relationship`` (Algorithm 1, constraint-count scores),
        ``relationship_cardinality`` (the Sec. 7 statistical scoring
        extension) or ``fetch_filter`` (the FF baseline).
    parallel
        parallelize scans over partitions/segments (temporal & spatial
        parallelization, paper Sec. 5.2).
    agents_per_group
        spatial partition width of the partitioned store.
    segments / distribution
        segment count and distribution policy of the segmented store
        (``domain`` = AIQL's semantics-aware placement, ``arrival`` =
        ingest-order placement).
    """

    backend: str = "partitioned"
    scheduling: str = "relationship"
    parallel: bool = False
    agents_per_group: int = 10
    segments: int = 5
    distribution: str = "domain"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.scheduling not in SCHEDULINGS:
            raise ValueError(
                f"unknown scheduling {self.scheduling!r}; "
                f"expected one of {SCHEDULINGS}"
            )
