"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo``    — deploy the simulated enterprise and open a query loop (or
  run ``--query``/``--file`` non-interactively);
* ``explain`` — show the execution plan for a query without running it;
* ``corpus``  — list the paper's query corpus (``--run`` executes it,
  ``--jobs N`` concurrently, ``--live RATE`` with streaming ingest,
  ``--watch QUERY`` with a standing query alerting on the live stream,
  ``--data-dir DIR`` durably through the tiered storage subsystem,
  ``--shards N`` sharded across worker processes);
* ``archive`` — compact a durable data dir to its retention horizon and
  checkpoint it (snapshot + WAL truncate);
* ``recover`` — crash-recover a durable data dir and report what it held;
* ``translate`` — print the SQL/Cypher/SPL equivalents of an AIQL query;
* ``serve``   — deploy the enterprise and expose it over the network
  front door (:mod:`repro.server`): the versioned ``/v1`` HTTP query API
  plus the ``/v1/alerts`` WebSocket.

Every error path prints the structured :class:`repro.api.ErrorEnvelope`
rendering (``error[<code>]: <message>``), so scripts can match on the
same stable codes the network service returns; usage errors exit 2,
query/runtime errors exit 1.

The CLI exists for exploration; programmatic use goes through
:class:`repro.AIQLSystem`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import api
from repro.core.system import AIQLSystem
from repro.lang.errors import AIQLError
from repro.service.continuous import ContinuousError


def _fail(exc: BaseException, prefix: str = "") -> int:
    """Print an exception's error envelope to stderr; returns the exit code."""
    env = api.classify(exc)
    print(f"{prefix}{api.render(env)}", file=sys.stderr)
    return api.exit_code(env)


def _build_system(
    rate: int,
    cache: bool = True,
    data_dir: Optional[str] = None,
    retention: Optional[int] = None,
    shards: int = 0,
    chaos: Optional[str] = None,
) -> AIQLSystem:
    from repro.core.config import SystemConfig
    from repro.workload.loader import build_enterprise

    if data_dir is None and not shards:
        print(f"deploying the simulated enterprise (rate={rate})...",
              file=sys.stderr)
        enterprise = build_enterprise(events_per_host_day=rate)
        system = AIQLSystem.over(
            enterprise.store("partitioned"),
            ingestor=enterprise.ingestor,
            config=SystemConfig(scan_cache=cache),
        )
        print(f"{enterprise.total_events} events ready", file=sys.stderr)
        return system

    # Durable and/or sharded deployment: construct the system first (for
    # a data dir, opening it *is* recovery; shard workers each replay
    # their own slice), then stream the workload through the system's own
    # commit path only when it came up empty — re-running over a
    # populated dir reuses the recovered state.
    system = AIQLSystem(
        SystemConfig(
            scan_cache=cache,
            data_dir=data_dir,
            retention_days=retention,
            shards=shards,
            shard_chaos=chaos,
        )
    )
    if shards:
        print(f"sharded across {shards} worker process(es)", file=sys.stderr)
        if system.store.fault_plan:
            print(f"chaos plan: {system.store.fault_plan.to_spec()}",
                  file=sys.stderr)
    recovered = system.recovery.total_events if system.recovery else 0
    if recovered:
        print(f"recovered {recovered} events from {data_dir} "
              f"({system.recovery.to_dict()})", file=sys.stderr)
    else:
        where = data_dir if data_dir is not None else f"{shards} shard(s)"
        print(f"deploying into {where} (rate={rate})...", file=sys.stderr)
        build_enterprise(
            stores=(),
            ingestor=system.ingestor,
            events_per_host_day=rate,
            stream_batch_size=system.config.stream_batch_size,
        )
        print(f"{system.ingestor.events_ingested} events committed",
              file=sys.stderr)
    return system


def _run_one(system: AIQLSystem, text: str) -> int:
    try:
        started = time.perf_counter()
        result = system.query(text)
        elapsed = (time.perf_counter() - started) * 1000
    except AIQLError as exc:
        return _fail(exc)
    print(result.to_text())
    print(f"({len(result)} row(s) in {elapsed:.1f} ms)")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    system = _build_system(args.rate)
    if args.query:
        return _run_one(system, args.query)
    if args.file:
        with open(args.file) as handle:
            return _run_one(system, handle.read())
    print("AIQL demo shell — end a query with an empty line; 'quit' exits.")
    buffer: List[str] = []
    while True:
        try:
            prompt = "aiql> " if not buffer else "  ... "
            line = input(prompt)
        except EOFError:
            return 0
        if line.strip().lower() in ("quit", "exit") and not buffer:
            return 0
        if line.strip():
            buffer.append(line)
            continue
        if buffer:
            _run_one(system, "\n".join(buffer))
            buffer = []


def cmd_explain(args: argparse.Namespace) -> int:
    # Static plans need no data; --analyze deploys the enterprise and
    # actually runs the query so the span tree carries real cardinalities.
    system = _build_system(args.rate) if args.analyze else AIQLSystem()
    text = args.query or open(args.file).read()
    try:
        report = system.explain(text, analyze=args.analyze)
    except AIQLError as exc:
        return _fail(exc)
    print(report.to_json(indent=2) if args.json else report.to_text())
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from repro.workload.corpus import ALL_QUERIES, by_id

    if args.show:
        query = by_id(args.show)
        print(f"-- {query.qid} ({query.kind})")
        print(query.text.strip())
        return 0
    if args.live < 0:
        print("--live RATE must be >= 0", file=sys.stderr)
        return 2
    if args.watch and not (args.run and args.live):
        print("--watch requires --run --live RATE: standing queries alert "
              "from live stream commits", file=sys.stderr)
        return 2
    if args.shards < 0:
        print("--shards N must be >= 0", file=sys.stderr)
        return 2
    if args.chaos and not args.shards:
        print("--chaos requires --shards N: faults target shard workers",
              file=sys.stderr)
        return 2
    if args.run:
        system = _build_system(
            args.rate,
            cache=not args.no_cache,
            data_dir=args.data_dir,
            retention=args.retention,
            shards=args.shards,
            chaos=args.chaos,
        )
        replay_handle = None
        session = None
        watch = None
        if args.watch:
            try:
                watch_text = by_id(args.watch).text
                watch_name = args.watch
            except KeyError:
                watch_text, watch_name = args.watch, "watch"

            def _print_alert(alert) -> None:
                latency = (
                    f" (+{alert.latency_s * 1000:.1f} ms)"
                    if alert.latency_s is not None
                    else ""
                )
                print(f"ALERT {alert.query}: events {list(alert.key)}"
                      f"{latency}")

            try:
                watch = system.subscribe(
                    watch_text, callback=_print_alert, name=watch_name
                )
            except (AIQLError, ContinuousError) as exc:
                _fail(exc, prefix="--watch: ")
                return 2
            print(f"standing query {watch.name!r} registered "
                  f"({len(watch.kernels)} pattern(s), "
                  f"window {watch.horizon_s:.0f}s)", file=sys.stderr)
        if args.live:
            from repro.workload.live import LiveReplay

            session = system.stream()
            replay_handle = LiveReplay(session, rate=args.live).start()
            print(f"live ingest started at {args.live} events/s",
                  file=sys.stderr)
        try:
            if args.jobs > 1:
                rc = _run_corpus_concurrent(system, ALL_QUERIES, args.jobs)
            else:
                failures = 0
                for query in ALL_QUERIES:
                    try:
                        if args.trace:
                            report = system.explain(query.text)
                            rows = report.rows or 0
                            elapsed = (
                                report.root.duration_s * 1000
                                if report.root is not None
                                else 0.0
                            )
                        else:
                            started = time.perf_counter()
                            result = system.query(query.text)
                            elapsed = (time.perf_counter() - started) * 1000
                            rows = len(result)
                        status = "ok" if rows >= query.min_rows else "EMPTY"
                        failures += status != "ok"
                        print(f"{query.qid:12s} {status:5s} {rows:5d} "
                              f"row(s) {elapsed:8.1f} ms")
                        if args.trace and report.root is not None:
                            for line in report.root.to_text().splitlines():
                                print(f"    {line}")
                    except AIQLError as exc:
                        failures += 1
                        print(f"{query.qid:12s} ERROR "
                              f"{api.render(api.classify(exc))}")
                rc = 1 if failures else 0
        finally:
            if replay_handle is not None:
                stats = replay_handle.stop()
                print(f"live ingest: {stats.events} events in "
                      f"{stats.batches} batch(es) over {stats.wall_s:.2f} s "
                      f"({stats.achieved_rate:.0f} ev/s, target "
                      f"{stats.target_rate:.0f}); watermark "
                      f"{session.watermark}")
                cache = getattr(system.store, "scan_cache", None)
                if cache is not None:
                    print(f"scan cache under live ingest: {cache.stats()}")
            if watch is not None:
                print(f"standing query {watch.name!r}: "
                      f"{watch.alerts_emitted} alert(s), "
                      f"{watch.events_matched} window event(s) matched",
                      file=sys.stderr)
            stats = system.stats()
            if "shard_events" in stats:
                print(f"shard stats: {stats['shard_events']} event(s) "
                      f"across {stats['shards']} shard(s); "
                      f"scatter/gather: {stats.get('scatter_gather')}",
                      file=sys.stderr)
                health = stats.get("shard_health") or {}
                if health.get("restarts") or health.get("timeouts"):
                    print(f"shard health: {health['restarts']} restart(s), "
                          f"{health['timeouts']} timeout(s), "
                          f"{health['retries']} retried command(s), "
                          f"{health['lost_events']} event(s) lost, "
                          f"failed shards {health['failed_shards']}",
                          file=sys.stderr)
            elif system.durable:
                print(f"tier stats: {stats.get('cold')}; "
                      f"wal: {stats.get('wal')}", file=sys.stderr)
            if args.metrics_out:
                with open(args.metrics_out, "w") as handle:
                    handle.write(system.metrics_text())
                print(f"metrics written to {args.metrics_out}",
                      file=sys.stderr)
            system.close()
        return rc
    for query in ALL_QUERIES:
        print(f"{query.qid:12s} {query.group:3s} {query.kind}")
    return 0


def _run_corpus_concurrent(system: AIQLSystem, queries, jobs: int) -> int:
    """Run the corpus through the concurrent query service."""
    from repro.service import QueryService, SharedExecutor

    service = QueryService(
        system.store,
        scheduling=system.config.scheduling,
        parallel=system.config.parallel,
        executor=SharedExecutor(max_workers=jobs),
    )
    started = time.perf_counter()
    futures = service.submit_many([q.text for q in queries])
    failures = 0
    for query, future in zip(queries, futures):
        try:
            result = future.result()
            status = "ok" if len(result) >= query.min_rows else "EMPTY"
            failures += status != "ok"
            print(f"{query.qid:12s} {status:5s} {len(result):5d} row(s)")
        except AIQLError as exc:
            failures += 1
            print(f"{query.qid:12s} ERROR {api.render(api.classify(exc))}")
    elapsed = time.perf_counter() - started
    print(f"({len(queries)} queries, {jobs} workers: {elapsed:.2f} s, "
          f"{len(queries) / elapsed:.1f} q/s)")
    print(f"service stats: {service.stats_snapshot()}")
    return 1 if failures else 0


def cmd_archive(args: argparse.Namespace) -> int:
    """Compact a durable data dir to its retention horizon + checkpoint."""
    with AIQLSystem.recover(args.data_dir) as system:
        retention = args.retention or system.config.retention_days
        if retention is None:
            print("archive needs a retention horizon: pass --retention N",
                  file=sys.stderr)
            return 2
        report = system.compact(retention)
        written = system.checkpoint()
        cold = system.stats()["cold"]
        print(f"compacted {report.events_migrated} event(s) into "
              f"{report.segments_written} cold segment(s) "
              f"({report.cold_bytes} bytes; horizon {retention} day(s))")
        print(f"checkpoint: {written} hot event(s) snapshotted, WAL reset")
        print(f"cold tier: {cold['segments']} segment(s), "
              f"{cold['events']} event(s), {cold['bytes']} bytes")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Crash-recover a durable data dir and report what it held."""
    with AIQLSystem.recover(args.data_dir) as system:
        report = system.recovery
        print(f"recovered {report.total_events} event(s) from {args.data_dir}")
        print(f"  snapshot: {report.snapshot_events} event(s)")
        print(f"  wal replay: {report.wal_events_replayed} event(s)")
        print(f"  cold tier: {report.cold_events} event(s)")
        if report.duplicates_reconciled:
            print(f"  reconciled {report.duplicates_reconciled} "
                  f"half-migrated duplicate(s)")
        print(f"  next event id: {report.next_event_id}")
        if args.query:
            return _run_one(system, args.query)
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    from repro.baselines.conciseness import translate_all

    text = args.query or open(args.file).read()
    try:
        translated = translate_all(text)
    except AIQLError as exc:
        return _fail(exc)
    wanted = args.language.split(",") if args.language else list(translated)
    for language in wanted:
        query = translated[language.strip().lower()]
        print(f"=== {query.language.upper()} ({query.constraints} constraints) ===")
        print(query.text.strip())
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Deploy the enterprise and serve it over the network front door."""
    import asyncio

    if args.live < 0:
        env = api.envelope(api.Code.REQUEST_INVALID, "--live RATE must be >= 0")
        print(api.render(env), file=sys.stderr)
        return api.exit_code(env)
    system = _build_system(
        args.rate,
        data_dir=args.data_dir,
        shards=args.shards,
    )
    server = system.serve(host=args.host, port=args.port)
    replay_handle = None
    if args.live:
        from repro.workload.live import LiveReplay

        replay_handle = LiveReplay(system.stream(), rate=args.live).start()
        print(f"live ingest started at {args.live} events/s", file=sys.stderr)

    async def _serve() -> None:
        await server.start()
        print(f"serving the v1 API on http://{server.host}:{server.port} "
              f"(schema v{api.SCHEMA_VERSION}); Ctrl-C stops",
              file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if replay_handle is not None:
            replay_handle.stop()
        system.close()
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIQL (USENIX ATC'18) reproduction — attack "
        "investigation queries over system monitoring data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="deploy the enterprise and run queries")
    demo.add_argument("--rate", type=int, default=200,
                      help="background events per host-day (default 200)")
    demo.add_argument("--query", "-q", help="run one query and exit")
    demo.add_argument("--file", "-f", help="run the query in FILE and exit")
    demo.set_defaults(func=cmd_demo)

    explain = sub.add_parser("explain", help="show a query's execution plan")
    group = explain.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", "-q")
    group.add_argument("--file", "-f")
    explain.add_argument("--analyze", action="store_true",
                         help="deploy the enterprise and execute the query, "
                              "reporting the traced span tree (EXPLAIN "
                              "ANALYZE)")
    explain.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    explain.add_argument("--rate", type=int, default=120,
                         help="with --analyze: background events per "
                              "host-day (default 120)")
    explain.set_defaults(func=cmd_explain)

    corpus = sub.add_parser("corpus", help="list/run the paper's query corpus")
    corpus.add_argument("--run", action="store_true",
                        help="execute the whole corpus against a deployment")
    corpus.add_argument("--show", metavar="QID", help="print one query's text")
    corpus.add_argument("--rate", type=int, default=120)
    corpus.add_argument("--jobs", "-j", type=int, default=1,
                        help="run the corpus through the concurrent query "
                             "service with this many workers")
    corpus.add_argument("--no-cache", action="store_true",
                        help="disable the partition-scan cache")
    corpus.add_argument("--live", type=float, default=0, metavar="RATE",
                        help="with --run: stream live background events at "
                             "RATE events/sec while the corpus executes")
    corpus.add_argument("--watch", metavar="QUERY",
                        help="with --run --live: register QUERY (a corpus "
                             "qid or raw AIQL text) as a standing query and "
                             "print an alert for every tuple matched as "
                             "batches commit")
    corpus.add_argument("--data-dir", metavar="DIR",
                        help="with --run: deploy durably (WAL + tiered "
                             "storage) into DIR, recovering it if populated")
    corpus.add_argument("--retention", type=int, metavar="DAYS",
                        help="with --data-dir: hot-tier retention horizon "
                             "(background compactor migrates older days to "
                             "compressed cold segments)")
    corpus.add_argument("--trace", action="store_true",
                        help="with --run: execute each query under the "
                             "tracer and print its span tree (per-pattern "
                             "cardinalities, prune/cache annotations)")
    corpus.add_argument("--metrics-out", metavar="FILE",
                        help="with --run: write the Prometheus-style "
                             "metrics exposition to FILE after the run")
    corpus.add_argument("--shards", type=int, default=0, metavar="N",
                        help="with --run: shard the store across N worker "
                             "processes (scatter/gather scans; combine "
                             "with --data-dir for per-shard WALs and cold "
                             "tiers)")
    corpus.add_argument("--chaos", metavar="SPEC",
                        help="with --shards: deterministic fault injection "
                             "— an integer seed, or explicit faults like "
                             "'kill@1:scan#0,delay@2:scan#1x0.05' "
                             "(supervised recovery keeps the run serving)")
    corpus.set_defaults(func=cmd_corpus)

    archive = sub.add_parser(
        "archive",
        help="compact a durable data dir to its retention horizon and "
             "checkpoint it",
    )
    archive.add_argument("--data-dir", required=True, metavar="DIR")
    archive.add_argument("--retention", type=int, metavar="DAYS",
                         help="hot-tier retention horizon in days")
    archive.set_defaults(func=cmd_archive)

    recover = sub.add_parser(
        "recover", help="crash-recover a durable data dir and report it"
    )
    recover.add_argument("--data-dir", required=True, metavar="DIR")
    recover.add_argument("--query", "-q",
                         help="run one query against the recovered store")
    recover.set_defaults(func=cmd_recover)

    translate = sub.add_parser(
        "translate", help="derive SQL/Cypher/SPL equivalents"
    )
    group = translate.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", "-q")
    group.add_argument("--file", "-f")
    translate.add_argument(
        "--language", "-l", help="comma list: aiql,sql,cypher,spl"
    )
    translate.set_defaults(func=cmd_translate)

    serve = sub.add_parser(
        "serve",
        help="deploy the enterprise and serve the v1 HTTP/WebSocket API",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 binds an ephemeral one)")
    serve.add_argument("--rate", type=int, default=120,
                       help="background events per host-day (default 120)")
    serve.add_argument("--live", type=float, default=0, metavar="RATE",
                       help="stream live background events at RATE events/sec "
                            "while serving (feeds /v1/alerts subscriptions)")
    serve.add_argument("--data-dir", metavar="DIR",
                       help="serve a durable deployment rooted at DIR")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="shard the store across N worker processes")
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
