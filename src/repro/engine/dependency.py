"""Dependency query rewriting (paper Secs. 4.2, 5.1).

"For an input dependency query, the engine compiles it to an equivalent
multievent query for execution."  The path syntax

    forward: proc p1[...] ->[write] file f1[...] <-[read] proc p2[...]

becomes one event pattern per edge; shared path nodes reuse entity ids so
the standard entity-ID-reuse machinery joins adjacent patterns, and the
``forward``/``backward`` keyword adds the corresponding ``before``/``after``
temporal chain.

Cross-host tracking (Query 3's ``->[connect]`` between two processes) is
expanded into two patterns — sender-side and receiver-side network events —
joined on the connection's full flow tuple (src_ip, src_port, dst_ip,
dst_port), since the two hosts record the same flow independently.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lang import ast
from repro.lang.context import QueryContext, compile_multievent
from repro.lang.errors import AIQLSemanticError
from repro.model.entities import EntityType
from repro.model.events import Operation

_NETWORK_OPS = frozenset(
    {Operation.CONNECT, Operation.ACCEPT, Operation.SEND, Operation.RECV}
)

_SEND_SIDE_OPS = ast.OpOr(
    ast.OpLeaf("connect"), ast.OpOr(ast.OpLeaf("write"), ast.OpLeaf("send"))
)
_RECV_SIDE_OPS = ast.OpOr(
    ast.OpLeaf("accept"), ast.OpOr(ast.OpLeaf("read"), ast.OpLeaf("recv"))
)


def _ops_in(node: ast.OpNode) -> frozenset:
    """Operations an op-expression can match (ignoring object legality)."""

    def matches(op: Operation, n: ast.OpNode) -> bool:
        if isinstance(n, ast.OpLeaf):
            return Operation.parse(n.name) is op
        if isinstance(n, ast.OpNot):
            return not matches(op, n.child)
        if isinstance(n, ast.OpAnd):
            return matches(op, n.left) and matches(op, n.right)
        if isinstance(n, ast.OpOr):
            return matches(op, n.left) or matches(op, n.right)
        raise AssertionError(n)

    return frozenset(op for op in Operation if matches(op, node))


def rewrite_dependency(query: ast.DependencyQuery) -> ast.MultieventQuery:
    """Compile a dependency query into its equivalent multievent query."""
    # Name every node so adjacent patterns share entities by ID reuse.
    taken = {n.entity_id for n in query.nodes if n.entity_id}
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        while True:
            counter += 1
            name = f"_{prefix}{counter}"
            if name not in taken:
                taken.add(name)
                return name

    nodes = [
        node if node.entity_id else ast.EntityPattern(
            type_name=node.type_name,
            entity_id=fresh("n"),
            constraints=node.constraints,
        )
        for node in query.nodes
    ]

    patterns: List[ast.EventPattern] = []
    chain_events: List[str] = []
    cross_host_rels: List[Tuple[str, str]] = []

    for i, edge in enumerate(query.edges):
        left, right = nodes[i], nodes[i + 1]
        if edge.direction == "->":
            subject, obj = left, right
        else:
            subject, obj = right, left

        subject_type = EntityType.parse(subject.type_name)
        object_type = EntityType.parse(obj.type_name)

        if (
            subject_type is EntityType.PROCESS
            and object_type is EntityType.PROCESS
            and _ops_in(edge.operation) & _NETWORK_OPS
        ):
            # Cross-host hop: split into sender-side and receiver-side
            # network events correlated on the flow's (dst_ip, dst_port).
            conn_a = fresh("conn")
            conn_b = fresh("conn")
            evt_a = fresh("evt")
            evt_b = fresh("evt")
            patterns.append(
                ast.EventPattern(
                    subject=subject,
                    operation=_SEND_SIDE_OPS,
                    object=ast.EntityPattern(type_name="ip", entity_id=conn_a),
                    event_id=evt_a,
                )
            )
            patterns.append(
                ast.EventPattern(
                    subject=obj,
                    operation=_RECV_SIDE_OPS,
                    object=ast.EntityPattern(type_name="ip", entity_id=conn_b),
                    event_id=evt_b,
                )
            )
            chain_events.extend([evt_a, evt_b])
            cross_host_rels.append((conn_a, conn_b))
            continue

        if subject_type is not EntityType.PROCESS:
            raise AIQLSemanticError(
                f"dependency edge {i + 1}: the acting side must be a process "
                f"(got {subject_type.value})",
                hint="flip the arrow direction or the node order",
            )
        event_id = fresh("evt")
        patterns.append(
            ast.EventPattern(
                subject=subject,
                operation=edge.operation,
                object=obj,
                event_id=event_id,
            )
        )
        chain_events.append(event_id)

    relationships: List[ast.Relationship] = []
    for conn_a, conn_b in cross_host_rels:
        for attr in ("src_ip", "src_port", "dst_ip", "dst_port"):
            relationships.append(
                ast.AttrRel(
                    left_id=conn_a,
                    left_attr=attr,
                    op="=",
                    right_id=conn_b,
                    right_attr=attr,
                )
            )

    if query.direction in ("forward", "backward"):
        kind = "before" if query.direction == "forward" else "after"
        for a, b in zip(chain_events, chain_events[1:]):
            relationships.append(
                ast.TempRel(left_event=a, kind=kind, right_event=b)
            )

    return ast.MultieventQuery(
        globals=query.globals,
        patterns=tuple(patterns),
        relationships=tuple(relationships),
        returns=query.returns,
        filters=query.filters,
    )


def compile_dependency(query: ast.DependencyQuery) -> QueryContext:
    """Rewrite + semantic compilation in one step."""
    return compile_multievent(rewrite_dependency(query))
