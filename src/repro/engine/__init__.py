"""The AIQL query execution engine (paper Sec. 5, Fig. 3).

Execution pipeline for a multievent query: the semantic compiler hands a
:class:`~repro.lang.context.QueryContext` to a scheduler
(:mod:`repro.engine.scheduler`), which synthesizes one data query per event
pattern (:mod:`repro.engine.data_query`), executes them — relationship-based
or fetch-and-filter — into tuple sets (:mod:`repro.engine.tuples`), and the
executor (:mod:`repro.engine.executor`) projects the final tuple set through
the return clause.  Dependency queries are rewritten to multievent queries
(:mod:`repro.engine.dependency`); anomaly queries run the sliding-window
machinery (:mod:`repro.engine.anomaly`).
"""

from repro.engine.anomaly import AnomalyExecutor
from repro.engine.data_query import DataQuery
from repro.engine.dependency import compile_dependency, rewrite_dependency
from repro.engine.executor import MultieventExecutor, evaluate_returns
from repro.engine.parallel import scan_split, split_window
from repro.engine.result import ResultSet
from repro.engine.scheduler import (
    SCHEDULERS,
    FetchFilterScheduler,
    RelationshipScheduler,
    SchedulerStats,
    make_scheduler,
)
from repro.engine.tuples import TupleSet
from repro.lang import ast as _ast
from repro.lang.context import QueryContext, compile_multievent
from repro.lang.parser import parse as _parse


def compile_query(text: str) -> QueryContext:
    """Parse + semantic analysis for any AIQL query kind (no execution).

    The one compile entry point shared by :class:`repro.AIQLSystem` and
    the query service, so kind dispatch cannot diverge between them.
    """
    tree = _parse(text)
    if isinstance(tree, _ast.DependencyQuery):
        return compile_dependency(tree)
    return compile_multievent(tree)


__all__ = [
    "AnomalyExecutor",
    "DataQuery",
    "FetchFilterScheduler",
    "MultieventExecutor",
    "RelationshipScheduler",
    "ResultSet",
    "SCHEDULERS",
    "SchedulerStats",
    "TupleSet",
    "compile_dependency",
    "compile_query",
    "evaluate_returns",
    "make_scheduler",
    "rewrite_dependency",
    "scan_split",
    "split_window",
]
