"""Data query schedulers (paper Sec. 5.2, Algorithm 1).

Two strategies are provided:

* :class:`RelationshipScheduler` — the paper's relationship-based
  scheduling.  Event patterns get a *pruning score* (their number of
  constraints); relationships are sorted so that process/network event
  patterns are handled before file event patterns and higher-scoring pairs
  first; and each data query executed against a relationship is
  *constrained* by the results already in hand.
* :class:`FetchFilterScheduler` — the strawman the paper calls
  *fetch-and-filter* (the ``AIQL FF`` baseline of Fig. 6): execute every
  data query independently, then join and filter.

All strategies produce the same final tuple set (a correctness invariant
the test suite checks); they differ only in how much irrelevant data they
touch.

Scoring models.  The paper estimates pruning power by *constraint count*
and concedes (Sec. 7) that this "may not accurately represent the size of
the results"; it proposes "constructing a statistical model of constraint
pruning power" as future work.  :class:`RelationshipScheduler` implements
both: ``score_model="constraints"`` (the published heuristic, default) and
``score_model="cardinality"`` (the Sec. 7 proposal — estimate each
pattern's result size from index statistics and prioritize the smallest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.data_query import (
    DataQuery,
    attr_rel_narrowing,
    temp_rel_narrowing,
)
from repro.engine.tuples import TupleSet
from repro.lang.context import (
    QueryContext,
    ResolvedAttrRel,
    ResolvedTempRel,
)
from repro.model.events import HIGH_PRUNING_EVENT_TYPES
from repro.obs.metrics import REGISTRY
from repro.obs.trace import trace_span

# Engine-level metrics: per data query / join, never per row.
_M_DATA_QUERIES = REGISTRY.counter(
    "aiql_data_queries_total", "Per-pattern data queries executed"
)
_M_CONSTRAINED = REGISTRY.counter(
    "aiql_constrained_executions_total",
    "Data queries narrowed by already-joined results (Algorithm 1)",
)
_M_JOINS = REGISTRY.counter("aiql_joins_total", "Tuple-set joins performed")
_M_JOIN_ROWS = REGISTRY.counter(
    "aiql_join_rows_total", "Rows produced by tuple-set joins"
)


@dataclass
class SchedulerStats:
    """Observability: how much each strategy fetched and joined."""

    data_queries_executed: int = 0
    constrained_executions: int = 0
    events_fetched: int = 0
    rows_joined: int = 0
    order: List[int] = field(default_factory=list)


_Relationship = Tuple[str, object]  # ('attr', ResolvedAttrRel) | ('temp', ...)


def _involved(rel: _Relationship) -> Tuple[int, int]:
    kind, payload = rel
    if kind == "attr":
        return payload.left.pattern, payload.right.pattern  # type: ignore[union-attr]
    return payload.left, payload.right  # type: ignore[union-attr]


class _SchedulerBase:
    def __init__(self, store, parallel: bool = False) -> None:
        self.store = store
        self.parallel = parallel
        self.stats = SchedulerStats()

    def _entity_of(self, entity_id: int):
        return self.store.registry.get(entity_id)

    def _execute(
        self,
        query: DataQuery,
        constrained: bool = False,
        narrowings: Optional[Dict[str, object]] = None,
    ):
        """Run ``query``, returning a scan result (columnar when the store
        supports it) — rows are materialized only where a join needs them.

        Under an active trace this opens one ``scan`` span per pattern
        execution; the storage layer folds its prune/cache annotations
        into it, and ``rows`` records the pattern's true cardinality
        (identical to this call's ``events_fetched`` contribution).
        """
        attrs: Dict[str, object] = {"pattern": query.index}
        if constrained:
            attrs["constrained"] = True
        if narrowings:
            attrs.update(narrowings)
        with trace_span("scan", **attrs) as span:
            scan = query.execute_scan(self.store, parallel=self.parallel)
            self.stats.data_queries_executed += 1
            if constrained:
                self.stats.constrained_executions += 1
            self.stats.events_fetched += len(scan)
            self.stats.order.append(query.index)
            if span is not None:
                span.annotate(rows=len(scan))
        _M_DATA_QUERIES.inc()
        if constrained:
            _M_CONSTRAINED.inc()
        return scan

    def _join(self, left: TupleSet, right: TupleSet, attr_rels, temp_rels) -> TupleSet:
        """Join two tuple sets under a ``join`` span, with row accounting."""
        with trace_span("join") as span:
            joined = left.join(right, attr_rels, temp_rels, self._entity_of)
            self.stats.rows_joined += len(joined)
            if span is not None:
                span.annotate(
                    patterns=sorted(joined.patterns),
                    rows_left=len(left),
                    rows_right=len(right),
                    rows_out=len(joined),
                )
        _M_JOINS.inc()
        _M_JOIN_ROWS.inc(len(joined))
        return joined

    def _filter(self, ts: TupleSet, attr_rels, temp_rels) -> TupleSet:
        """Relationship re-check on one tuple set, under a ``filter`` span."""
        with trace_span("filter") as span:
            filtered = ts.filter(attr_rels, temp_rels, self._entity_of)
            if span is not None:
                span.annotate(
                    patterns=sorted(ts.patterns),
                    rows_in=len(ts),
                    rows_out=len(filtered),
                )
        return filtered

    def _relationships(self, ctx: QueryContext) -> List[_Relationship]:
        rels: List[_Relationship] = [("attr", r) for r in ctx.attr_relationships]
        rels.extend(("temp", r) for r in ctx.temp_relationships)
        return rels

    @staticmethod
    def _rels_between(
        ctx: QueryContext, bound: Set[int]
    ) -> Tuple[List[ResolvedAttrRel], List[ResolvedTempRel]]:
        attr = [
            r
            for r in ctx.attr_relationships
            if r.left.pattern in bound and r.right.pattern in bound
        ]
        temp = [
            r
            for r in ctx.temp_relationships
            if r.left in bound and r.right in bound
        ]
        return attr, temp


SCORE_MODELS = ("constraints", "cardinality")


class RelationshipScheduler(_SchedulerBase):
    """Algorithm 1: relationship-based scheduling."""

    def __init__(
        self,
        store,
        parallel: bool = False,
        score_model: str = "constraints",
    ) -> None:
        super().__init__(store, parallel=parallel)
        if score_model not in SCORE_MODELS:
            raise ValueError(
                f"unknown score model {score_model!r}; "
                f"expected one of {SCORE_MODELS}"
            )
        self.score_model = score_model

    def _pattern_scores(self, ctx: QueryContext) -> Dict[int, float]:
        if self.score_model == "constraints":
            return {p.index: float(p.score) for p in ctx.patterns}
        return {
            p.index: -float(self._estimated_rows(p)) for p in ctx.patterns
        }

    def _estimated_rows(self, pattern) -> int:
        """Result-size estimate from index statistics (Sec. 7 proposal).

        The candidate entity-id sets the attribute indexes would serve
        bound the number of matching events.  Stores exposing
        ``estimated_events`` (partition pruning on the hot tier, zone-map
        pruning over cold segments — see :mod:`repro.tier`) refine the
        no-index fallback: a spatially/temporally constrained pattern is
        estimated at the events its surviving partitions and unpruned
        cold segments could hold, not the full store size.
        """
        entity_index = getattr(self.store, "entity_index", None)
        estimator = getattr(self.store, "estimated_events", None)

        def store_bound(flt) -> int:
            if estimator is not None:
                return estimator(flt)
            return len(self.store)

        if entity_index is None:
            return store_bound(pattern.filter)
        from repro.storage.database import narrow_with_index

        flt = narrow_with_index(pattern.filter, entity_index)
        bounds = []
        if flt.subject_ids is not None:
            bounds.append(len(flt.subject_ids))
        if flt.object_ids is not None:
            bounds.append(len(flt.object_ids))
        return min(bounds) if bounds else store_bound(flt)

    def run(self, ctx: QueryContext) -> TupleSet:
        queries = {p.index: DataQuery.for_pattern(p) for p in ctx.patterns}
        scores = self._pattern_scores(ctx)

        # Step 2: sort relationships.  Under the published heuristic:
        # process/network patterns ahead of file patterns, then by the sum
        # of the involved pruning scores.  Under the cardinality model the
        # estimated sizes subsume the type ordering.
        def rel_key(rel: _Relationship) -> tuple:
            i, j = _involved(rel)
            if self.score_model == "cardinality":
                return (0, -(scores[i] + scores[j]))
            file_patterns = sum(
                1
                for idx in (i, j)
                if ctx.patterns[idx].event_type not in HIGH_PRUNING_EVENT_TYPES
            )
            return (file_patterns, -(scores[i] + scores[j]))

        rels_sorted = sorted(self._relationships(ctx), key=rel_key)

        executed: Set[int] = set()
        events: Dict[int, object] = {}  # pattern -> scan result
        tuple_of: Dict[int, TupleSet] = {}  # the map M

        def replace_vals(old: TupleSet, new: TupleSet) -> None:
            for key, value in list(tuple_of.items()):
                if value is old:
                    tuple_of[key] = new

        # Step 3: main loop over sorted relationships.  All relationships
        # between the same pattern pair are processed together so joins can
        # use composite keys (and the pair is constrained/filtered once).
        processed: Set[int] = set()
        for kind, rel in rels_sorted:
            if id(rel) in processed:
                continue
            i, j = _involved((kind, rel))
            if i == j:
                continue
            attr_rels = [
                r
                for r in ctx.attr_relationships
                if {r.left.pattern, r.right.pattern} == {i, j}
            ]
            temp_rels = [
                r for r in ctx.temp_relationships if {r.left, r.right} == {i, j}
            ]
            for r in attr_rels:
                processed.add(id(r))
            for r in temp_rels:
                processed.add(id(r))

            if i not in executed and j not in executed:
                first, second = (i, j) if scores[i] >= scores[j] else (j, i)
                first_events = self._execute(queries[first])
                events[first] = first_events
                executed.add(first)
                second_events = self._constrained_execute(
                    ctx, queries[second], first, first_events
                )
                events[second] = second_events
                executed.add(second)
                joined = self._join(
                    TupleSet.from_scan(first, first_events),
                    TupleSet.from_scan(second, second_events),
                    attr_rels,
                    temp_rels,
                )
                tuple_of[i] = joined
                tuple_of[j] = joined
            elif (i in executed) != (j in executed):
                done, pending = (i, j) if i in executed else (j, i)
                done_set = tuple_of.get(done)
                done_events = (
                    done_set.events_of(done) if done_set is not None else events[done]
                )
                pending_events = self._constrained_execute(
                    ctx, queries[pending], done, done_events
                )
                events[pending] = pending_events
                executed.add(pending)
                base = (
                    done_set
                    if done_set is not None
                    else TupleSet.from_scan(done, events[done])
                )
                joined = self._join(
                    base,
                    TupleSet.from_scan(pending, pending_events),
                    attr_rels,
                    temp_rels,
                )
                replace_vals(base, joined)
                tuple_of[pending] = joined
                tuple_of[done] = joined
            else:
                set_i, set_j = tuple_of[i], tuple_of[j]
                if set_i is set_j:
                    filtered = self._filter(set_i, attr_rels, temp_rels)
                    replace_vals(set_i, filtered)
                else:
                    joined = self._join(set_i, set_j, attr_rels, temp_rels)
                    replace_vals(set_i, joined)
                    replace_vals(set_j, joined)

        # Step 4: leftover patterns without any processed relationship.
        for pattern in ctx.patterns:
            if pattern.index not in executed:
                fetched = self._execute(queries[pattern.index])
                events[pattern.index] = fetched
                executed.add(pattern.index)
                tuple_of[pattern.index] = TupleSet.from_scan(
                    pattern.index, fetched
                )

        # Step 5: merge remaining distinct tuple sets (cartesian).
        distinct: List[TupleSet] = []
        for value in tuple_of.values():
            if all(value is not seen for seen in distinct):
                distinct.append(value)
        merged = distinct[0]
        for other in distinct[1:]:
            merged = merged.cross(other)
        # Re-check every relationship on the final set: relationships whose
        # endpoints joined through different intermediate sets may not have
        # been applied to the merged rows yet.
        attr_rels, temp_rels = self._rels_between(
            ctx, set(merged.patterns)
        )
        return self._filter(merged, attr_rels, temp_rels)

    def _constrained_execute(
        self,
        ctx: QueryContext,
        query: DataQuery,
        executed_index: int,
        executed_events,
    ):
        """Narrow ``query`` using every relationship it shares with the
        executed pattern, then run it.  ``executed_events`` may be a scan
        result or a plain event list (both feed the narrowing helpers)."""
        narrowed = query
        narrowings: Dict[str, object] = {"narrowed_by": executed_index}
        for rel in ctx.attr_relationships:
            if {rel.left.pattern, rel.right.pattern} == {
                executed_index,
                query.index,
            }:
                narrowing = attr_rel_narrowing(
                    rel, executed_index, executed_events, self._entity_of
                )
                if narrowing is not None:
                    ref, values = narrowing
                    # Giant IN lists cost more than they prune (classic
                    # optimizer guard); id sets stay — postings lists serve
                    # them directly.
                    if ref.attr != "id" and len(values) > 256:
                        continue
                    narrowed = narrowed.narrowed_by_values(ref, values)
                    narrowings[f"narrow_{ref.role}.{ref.attr}"] = len(values)
        for rel in ctx.temp_relationships:
            if {rel.left, rel.right} == {executed_index, query.index}:
                window = temp_rel_narrowing(rel, executed_index, executed_events)
                if window is not None:
                    narrowed = narrowed.narrowed_by_window(window)
                    narrowings["narrow_window"] = (
                        f"[{window.start:.0f},{window.end:.0f})"
                        if window.start is not None and window.end is not None
                        else f"[{window.start},{window.end})"
                    )
        return self._execute(narrowed, constrained=True, narrowings=narrowings)


class FetchFilterScheduler(_SchedulerBase):
    """Fetch-and-filter: fetch everything, then join and filter."""

    def run(self, ctx: QueryContext) -> TupleSet:
        sets: Dict[int, TupleSet] = {}
        for pattern in ctx.patterns:
            fetched = self._execute(DataQuery.for_pattern(pattern))
            sets[pattern.index] = TupleSet.from_scan(pattern.index, fetched)

        merged: Optional[TupleSet] = None
        remaining = dict(sets)
        # Join connected components first (cheaper than pure cross products),
        # but with no constrained execution and no pruning-score ordering.
        rels = self._relationships(ctx)
        current_sets: List[TupleSet] = list(remaining.values())

        def find_set(pattern: int) -> TupleSet:
            for ts in current_sets:
                if pattern in ts.patterns:
                    return ts
            raise KeyError(pattern)

        for kind, rel in rels:
            i, j = _involved((kind, rel))
            if i == j:
                continue
            set_i = find_set(i)
            set_j = find_set(j)
            attr_rels = [rel] if kind == "attr" else []
            temp_rels = [rel] if kind == "temp" else []
            if set_i is set_j:
                filtered = self._filter(set_i, attr_rels, temp_rels)
                current_sets = [
                    filtered if ts is set_i else ts for ts in current_sets
                ]
            else:
                joined = self._join(set_i, set_j, attr_rels, temp_rels)
                current_sets = [
                    ts for ts in current_sets if ts is not set_i and ts is not set_j
                ]
                current_sets.append(joined)

        merged = current_sets[0]
        for other in current_sets[1:]:
            merged = merged.cross(other)
        attr_rels, temp_rels = self._rels_between(ctx, set(merged.patterns))
        return self._filter(merged, attr_rels, temp_rels)


SCHEDULERS = {
    "relationship": lambda store, parallel: RelationshipScheduler(
        store, parallel=parallel
    ),
    "relationship_cardinality": lambda store, parallel: RelationshipScheduler(
        store, parallel=parallel, score_model="cardinality"
    ),
    "fetch_filter": lambda store, parallel: FetchFilterScheduler(
        store, parallel=parallel
    ),
}


def make_scheduler(name: str, store, parallel: bool = False) -> _SchedulerBase:
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None
    return factory(store, parallel)
