"""Result sets returned by query execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


def _sort_key(value: object) -> tuple:
    """Type-tagged sort key so heterogeneous columns sort deterministically."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value).lower())


@dataclass
class ResultSet:
    """Named columns + rows, with the manipulation the return clause needs."""

    columns: Tuple[str, ...]
    rows: List[Tuple[object, ...]]
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> List[object]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def distinct(self) -> "ResultSet":
        seen = set()
        rows: List[Tuple[object, ...]] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return ResultSet(columns=self.columns, rows=rows, meta=dict(self.meta))

    def sorted_by(self, names: Sequence[str], descending: bool = False) -> "ResultSet":
        indices = []
        for name in names:
            try:
                indices.append(self.columns.index(name))
            except ValueError:
                raise KeyError(f"no column named {name!r}") from None
        rows = sorted(
            self.rows,
            key=lambda row: tuple(_sort_key(row[i]) for i in indices),
            reverse=descending,
        )
        return ResultSet(columns=self.columns, rows=rows, meta=dict(self.meta))

    def head(self, n: int) -> "ResultSet":
        return ResultSet(columns=self.columns, rows=self.rows[:n], meta=dict(self.meta))

    def to_text(self, max_rows: int = 50) -> str:
        """Render as an aligned text table (for examples and the CLI)."""
        header = list(self.columns)
        body = [
            ["" if v is None else str(v) for v in row]
            for row in self.rows[:max_rows]
        ]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
