"""Event ID tuple sets (the ``M`` map values of Algorithm 1).

A :class:`TupleSet` holds partial join results: one column per event
pattern already bound, one row per combination of events that satisfies
every relationship applied so far.  The scheduler creates, joins, filters
and merges tuple sets as it processes relationships.

Joins prefer hash joins on equality attribute relationships and fall back
to filtered nested loops for inequality/temporal-only combinations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang.context import FieldRef, ResolvedAttrRel, ResolvedTempRel
from repro.model.events import SystemEvent
from repro.storage.filters import AttrPredicate

EntityLookup = Callable[[int], object]


def _norm(value: object) -> object:
    return value.lower() if isinstance(value, str) else value


@dataclass
class TupleSet:
    """Rows of events aligned to ``patterns`` (sorted pattern indices)."""

    patterns: Tuple[int, ...]
    rows: List[Tuple[SystemEvent, ...]]

    @classmethod
    def from_events(cls, pattern: int, events: Sequence[SystemEvent]) -> "TupleSet":
        return cls(patterns=(pattern,), rows=[(e,) for e in events])

    def __len__(self) -> int:
        return len(self.rows)

    def column_of(self, pattern: int) -> int:
        try:
            return self.patterns.index(pattern)
        except ValueError:
            raise KeyError(f"pattern {pattern} not in tuple set") from None

    def events_of(self, pattern: int) -> List[SystemEvent]:
        """Distinct events bound to ``pattern`` across all rows."""
        col = self.column_of(pattern)
        seen: Dict[int, SystemEvent] = {}
        for row in self.rows:
            event = row[col]
            seen.setdefault(event.event_id, event)
        return list(seen.values())

    # -- relationship evaluation -------------------------------------------

    def _field(self, ref: FieldRef, row: Tuple[SystemEvent, ...], entity_of) -> object:
        return ref.extract(row[self.column_of(ref.pattern)], entity_of)

    def _check_attr_rel(
        self, rel: ResolvedAttrRel, row: Tuple[SystemEvent, ...], entity_of
    ) -> bool:
        left = self._field(rel.left, row, entity_of)
        right = self._field(rel.right, row, entity_of)
        if rel.op == "=":  # hot path: equality joins
            return _norm(left) == _norm(right)
        if rel.op == "!=":
            return _norm(left) != _norm(right)
        return AttrPredicate(attr=rel.left.attr, op=rel.op, value=right).matches(left)

    def _check_temp_rel(
        self, rel: ResolvedTempRel, row: Tuple[SystemEvent, ...]
    ) -> bool:
        left = row[self.column_of(rel.left)]
        right = row[self.column_of(rel.right)]
        return rel.check(left, right)

    def filter(
        self,
        attr_rels: Sequence[ResolvedAttrRel],
        temp_rels: Sequence[ResolvedTempRel],
        entity_of: EntityLookup,
    ) -> "TupleSet":
        """Keep rows satisfying all given relationships (both sides bound)."""
        rows = [
            row
            for row in self.rows
            if all(self._check_attr_rel(r, row, entity_of) for r in attr_rels)
            and all(self._check_temp_rel(r, row) for r in temp_rels)
        ]
        return TupleSet(patterns=self.patterns, rows=rows)

    # -- joins ---------------------------------------------------------------

    def join(
        self,
        other: "TupleSet",
        attr_rels: Sequence[ResolvedAttrRel],
        temp_rels: Sequence[ResolvedTempRel],
        entity_of: EntityLookup,
    ) -> "TupleSet":
        """Join two disjoint tuple sets, filtering by the relationships.

        Uses the first equality attribute relationship spanning the two sets
        as a hash-join key; remaining relationships are checked per joined
        row.
        """
        if set(self.patterns) & set(other.patterns):
            raise ValueError("join requires disjoint tuple sets")
        combined_patterns = tuple(sorted(self.patterns + other.patterns))

        # Use a composite hash key over every equality relationship that
        # spans the two sets: joining on (dst_ip, dst_port) at once avoids
        # the intermediate blowup of joining on dst_ip and filtering later.
        hash_rels: List[ResolvedAttrRel] = [
            rel
            for rel in attr_rels
            if rel.is_equality and self._spans(rel, other)
        ]

        joined_rows: List[Tuple[SystemEvent, ...]] = []

        def combine(
            left_row: Tuple[SystemEvent, ...], right_row: Tuple[SystemEvent, ...]
        ) -> Tuple[SystemEvent, ...]:
            mapping: Dict[int, SystemEvent] = dict(zip(self.patterns, left_row))
            mapping.update(zip(other.patterns, right_row))
            return tuple(mapping[p] for p in combined_patterns)

        if hash_rels:
            key_refs = []
            for rel in hash_rels:
                left_ref, right_ref = rel.left, rel.right
                if left_ref.pattern not in self.patterns:
                    left_ref, right_ref = right_ref, left_ref
                key_refs.append((left_ref, right_ref))
            buckets: Dict[object, List[Tuple[SystemEvent, ...]]] = defaultdict(list)
            for row in other.rows:
                key = tuple(
                    _norm(other._field(ref, row, entity_of))
                    for _lref, ref in key_refs
                )
                buckets[key].append(row)
            for row in self.rows:
                key = tuple(
                    _norm(self._field(ref, row, entity_of))
                    for ref, _rref in key_refs
                )
                for match in buckets.get(key, ()):
                    joined_rows.append(combine(row, match))
        else:
            for left_row in self.rows:
                for right_row in other.rows:
                    joined_rows.append(combine(left_row, right_row))

        result = TupleSet(patterns=combined_patterns, rows=joined_rows)
        residual_attr = [r for r in attr_rels if r not in hash_rels]
        return result.filter(residual_attr, temp_rels, entity_of)

    def _spans(self, rel: ResolvedAttrRel, other: "TupleSet") -> bool:
        a, b = rel.left.pattern, rel.right.pattern
        return (a in self.patterns and b in other.patterns) or (
            b in self.patterns and a in other.patterns
        )

    def cross(self, other: "TupleSet") -> "TupleSet":
        """Unfiltered cartesian product (Algorithm 1 step 5 merges)."""
        return self.join(other, (), (), lambda _id: None)
