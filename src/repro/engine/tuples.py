"""Event ID tuple sets (the ``M`` map values of Algorithm 1).

A :class:`TupleSet` holds partial join results: one column per event
pattern already bound, one row per combination of events that satisfies
every relationship applied so far.  The scheduler creates, joins, filters
and merges tuple sets as it processes relationships.

Joins prefer hash joins on equality attribute relationships and fall back
to filtered nested loops for inequality/temporal-only combinations.

Per-row work is kept loop-invariant: relationship checks compile once per
``filter``/``join`` call into closures with the column indices and field
extractors pre-resolved (no ``tuple.index`` per row), and joined rows are
assembled through a precomputed output-column permutation instead of
rebuilding a pattern->event dict per output row.

Columnar inputs (ISSUE 6): a tuple set freshly fetched from a store can be
built over a block scan result (:meth:`TupleSet.from_scan`) instead of an
event list.  Its rows stay unmaterialized until something actually needs
row objects, and a hash join whose build side is scan-backed extracts the
join keys straight from the columns — only build rows that match a probe
key are ever materialized.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang.context import FieldRef, ResolvedAttrRel, ResolvedTempRel
from repro.model.events import SystemEvent
from repro.storage.filters import AttrPredicate

EntityLookup = Callable[[int], object]

Row = Tuple[SystemEvent, ...]
RowCheck = Callable[[Row], bool]


def _norm(value: object) -> object:
    return value.lower() if isinstance(value, str) else value


class TupleSet:
    """Rows of events aligned to ``patterns`` (sorted pattern indices)."""

    __slots__ = ("patterns", "_rows", "_scan", "_column")

    def __init__(self, patterns: Tuple[int, ...], rows: Sequence[Row]) -> None:
        self.patterns = patterns
        self._rows: Optional[List[Row]] = (
            rows if isinstance(rows, list) else list(rows)
        )
        self._scan = None
        # Column positions resolved once per tuple set; every per-row
        # accessor below reads this instead of tuple.index per row.
        self._column: Dict[int, int] = {
            p: i for i, p in enumerate(self.patterns)
        }

    @classmethod
    def from_events(cls, pattern: int, events: Sequence[SystemEvent]) -> "TupleSet":
        return cls(patterns=(pattern,), rows=[(e,) for e in events])

    @classmethod
    def from_scan(cls, pattern: int, scan) -> "TupleSet":
        """A single-pattern tuple set over a scan result, rows still columnar.

        ``scan`` is anything with ``events()``/``__len__`` (a
        :class:`~repro.storage.blocks.BlockScanResult` or the materialized
        adapter); rows are built only when something needs row objects, and
        scan-backed hash-join build sides never build non-matching rows.
        """
        ts = cls.__new__(cls)
        ts.patterns = (pattern,)
        ts._rows = None
        ts._scan = scan
        ts._column = {pattern: 0}
        return ts

    @property
    def rows(self) -> List[Row]:
        rows = self._rows
        if rows is None:
            rows = self._rows = [(e,) for e in self._scan.events()]
        return rows

    def __len__(self) -> int:
        if self._rows is None:
            return len(self._scan)
        return len(self._rows)

    def column_of(self, pattern: int) -> int:
        try:
            return self._column[pattern]
        except KeyError:
            raise KeyError(f"pattern {pattern} not in tuple set") from None

    def events_of(self, pattern: int) -> List[SystemEvent]:
        """Distinct events bound to ``pattern`` across all rows."""
        col = self.column_of(pattern)
        seen: Dict[int, SystemEvent] = {}
        for row in self.rows:
            event = row[col]
            seen.setdefault(event.event_id, event)
        return list(seen.values())

    # -- relationship compilation ------------------------------------------

    def _field_getter(
        self, ref: FieldRef, entity_of: EntityLookup
    ) -> Callable[[Row], object]:
        """Per-row extractor for ``ref`` with the column resolved once."""
        col = self.column_of(ref.pattern)
        attr = ref.attr
        if ref.role == "event":
            return lambda row: row[col].attribute(attr)
        if ref.role == "subject":
            return lambda row: getattr(entity_of(row[col].subject_id), attr)
        return lambda row: getattr(entity_of(row[col].object_id), attr)

    def _compile_attr_rel(
        self, rel: ResolvedAttrRel, entity_of: EntityLookup
    ) -> RowCheck:
        left = self._field_getter(rel.left, entity_of)
        right = self._field_getter(rel.right, entity_of)
        if rel.op == "=":  # hot path: equality joins
            return lambda row: _norm(left(row)) == _norm(right(row))
        if rel.op == "!=":
            return lambda row: _norm(left(row)) != _norm(right(row))
        attr = rel.left.attr
        op = rel.op

        def check(row: Row) -> bool:
            return AttrPredicate(attr=attr, op=op, value=right(row)).matches(
                left(row)
            )

        return check

    def _compile_temp_rel(self, rel: ResolvedTempRel) -> RowCheck:
        left_col = self.column_of(rel.left)
        right_col = self.column_of(rel.right)
        check = rel.check
        return lambda row: check(row[left_col], row[right_col])

    def filter(
        self,
        attr_rels: Sequence[ResolvedAttrRel],
        temp_rels: Sequence[ResolvedTempRel],
        entity_of: EntityLookup,
    ) -> "TupleSet":
        """Keep rows satisfying all given relationships (both sides bound)."""
        if not self.rows or (not attr_rels and not temp_rels):
            return TupleSet(patterns=self.patterns, rows=list(self.rows))
        checks: List[RowCheck] = [
            self._compile_attr_rel(rel, entity_of) for rel in attr_rels
        ]
        checks.extend(self._compile_temp_rel(rel) for rel in temp_rels)
        if len(checks) == 1:
            check = checks[0]
            rows = [row for row in self.rows if check(row)]
        else:
            rows = [
                row for row in self.rows if all(c(row) for c in checks)
            ]
        return TupleSet(patterns=self.patterns, rows=rows)

    # -- joins ---------------------------------------------------------------

    def join(
        self,
        other: "TupleSet",
        attr_rels: Sequence[ResolvedAttrRel],
        temp_rels: Sequence[ResolvedTempRel],
        entity_of: EntityLookup,
    ) -> "TupleSet":
        """Join two disjoint tuple sets, filtering by the relationships.

        Uses the first equality attribute relationship spanning the two sets
        as a hash-join key; remaining relationships are checked per joined
        row.
        """
        if set(self.patterns) & set(other.patterns):
            raise ValueError("join requires disjoint tuple sets")
        combined_patterns = tuple(sorted(self.patterns + other.patterns))

        # Output column permutation, computed once: each output position
        # pulls from (side, source column) instead of rebuilding a
        # pattern->event dict per joined row.
        permutation = tuple(
            (0, self._column[p]) if p in self._column else (1, other._column[p])
            for p in combined_patterns
        )

        def combine(left_row: Row, right_row: Row) -> Row:
            sides = (left_row, right_row)
            return tuple(sides[side][col] for side, col in permutation)

        # Use a composite hash key over every equality relationship that
        # spans the two sets: joining on (dst_ip, dst_port) at once avoids
        # the intermediate blowup of joining on dst_ip and filtering later.
        hash_rels: List[ResolvedAttrRel] = [
            rel
            for rel in attr_rels
            if rel.is_equality and self._spans(rel, other)
        ]

        joined_rows: List[Row] = []

        if hash_rels:
            left_getters = []
            right_refs = []
            for rel in hash_rels:
                left_ref, right_ref = rel.left, rel.right
                if left_ref.pattern not in self.patterns:
                    left_ref, right_ref = right_ref, left_ref
                left_getters.append(self._field_getter(left_ref, entity_of))
                right_refs.append(right_ref)
            handle_getters = (
                [
                    other._scan.field_getter(ref, entity_of)
                    for ref in right_refs
                ]
                if other._rows is None
                and hasattr(other._scan, "field_getter")
                else []
            )
            if handle_getters and all(g is not None for g in handle_getters):
                # Columnar build side: keys come straight off the block
                # columns (entity attributes memoized per distinct id), and
                # only build rows a probe key actually hits are ever
                # materialized into SystemEvent objects.
                handle_buckets: Dict[object, list] = defaultdict(list)
                for handle in other._scan.handles():
                    key = tuple(_norm(g(handle)) for g in handle_getters)
                    handle_buckets[key].append(handle)
                event_of = other._scan.event_of
                for row in self.rows:
                    key = tuple(_norm(get(row)) for get in left_getters)
                    for handle in handle_buckets.get(key, ()):
                        joined_rows.append(combine(row, (event_of(handle),)))
            else:
                right_getters = [
                    other._field_getter(ref, entity_of) for ref in right_refs
                ]
                buckets: Dict[object, List[Row]] = defaultdict(list)
                for other_row in other.rows:
                    key = tuple(_norm(get(other_row)) for get in right_getters)
                    buckets[key].append(other_row)
                for row in self.rows:
                    key = tuple(_norm(get(row)) for get in left_getters)
                    for match in buckets.get(key, ()):
                        joined_rows.append(combine(row, match))
        else:
            for left_row in self.rows:
                for right_row in other.rows:
                    joined_rows.append(combine(left_row, right_row))

        result = TupleSet(patterns=combined_patterns, rows=joined_rows)
        residual_attr = [r for r in attr_rels if r not in hash_rels]
        return result.filter(residual_attr, temp_rels, entity_of)

    def _spans(self, rel: ResolvedAttrRel, other: "TupleSet") -> bool:
        a, b = rel.left.pattern, rel.right.pattern
        return (a in self.patterns and b in other.patterns) or (
            b in self.patterns and a in other.patterns
        )

    def cross(self, other: "TupleSet") -> "TupleSet":
        """Unfiltered cartesian product (Algorithm 1 step 5 merges)."""
        return self.join(other, (), (), lambda _id: None)
