"""Temporal & spatial parallelization of data queries (paper Sec. 5.2).

"The engine partitions the time window of a data query into sub-queries
with smaller time windows, and executes them in parallel.  Currently, our
system splits the time window into days for a query over a multi-day time
window."

:func:`split_window` produces the per-day sub-windows; :func:`scan_split`
executes the sub-queries on a thread pool against any store and merges the
sorted results.  (The partitioned :class:`~repro.storage.database.EventStore`
additionally parallelizes across its own partitions; this module is the
query-level mechanism that works with *any* storage backend.)
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.model.events import SystemEvent
from repro.model.time import DAY, TimeWindow
from repro.service.pool import SharedExecutor, get_shared_executor
from repro.storage.filters import EventFilter


def split_window(window: TimeWindow, granularity: float = DAY) -> List[TimeWindow]:
    """Split a bounded window into aligned sub-windows of ``granularity``.

    Unbounded windows cannot be split and are returned whole.
    """
    if not window.is_bounded():
        return [window]
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    start, end = window.start, window.end
    assert start is not None and end is not None
    pieces: List[TimeWindow] = []
    # Align boundaries to multiples of the granularity (days by default),
    # matching the per-day database layout.
    first_boundary = (int(start // granularity) + 1) * granularity
    cursor = start
    boundary = first_boundary
    while boundary < end:
        pieces.append(TimeWindow(start=cursor, end=boundary))
        cursor = boundary
        boundary += granularity
    pieces.append(TimeWindow(start=cursor, end=end))
    return pieces


def scan_split(
    store,
    flt: EventFilter,
    granularity: float = DAY,
    executor: Optional[SharedExecutor] = None,
) -> List[SystemEvent]:
    """Execute one data query as parallel per-day sub-queries.

    Sub-queries run on the process-wide shared executor (or the one passed
    in); no thread pool is ever constructed per call.
    """
    pieces = split_window(flt.window, granularity)
    if len(pieces) <= 1:
        return store.scan(flt)
    sub_filters = [replace(flt, window=piece) for piece in pieces]
    pool = executor if executor is not None else get_shared_executor()
    chunks = pool.map_all(store.scan, sub_filters)
    merged: List[SystemEvent] = []
    for chunk in chunks:
        merged.extend(chunk)
    merged.sort(key=lambda e: (e.start_time, e.event_id))
    return merged
