"""Multievent query executor (paper Sec. 5.1, Fig. 3).

Drives one multievent query end to end: scheduler -> final tuple set ->
return-clause evaluation (projection, aggregation, grouping, having,
distinct/count, sort, top) -> :class:`~repro.engine.result.ResultSet`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.engine.result import ResultSet, _sort_key
from repro.engine.scheduler import make_scheduler
from repro.engine.tuples import TupleSet
from repro.lang.context import QueryContext, ResolvedReturnItem
from repro.lang.errors import AIQLSemanticError
from repro.lang.expr import MappingEnv, evaluate_bool
from repro.obs.trace import trace_span


class MultieventExecutor:
    """Executes compiled multievent query contexts against a store."""

    def __init__(
        self,
        store,
        scheduling: str = "relationship",
        parallel: bool = False,
    ) -> None:
        self.store = store
        self.scheduling = scheduling
        self.parallel = parallel
        self.last_stats = None

    def run(self, ctx: QueryContext) -> ResultSet:
        result, stats = self.run_with_stats(ctx)
        self.last_stats = stats
        return result

    def run_with_stats(self, ctx: QueryContext):
        """Execute ``ctx``; returns ``(result, scheduler_stats)``.

        Unlike :meth:`run` this touches no executor state, so one
        executor instance can serve many threads (the query service calls
        it from the shared pool).
        """
        if ctx.kind != "multievent":
            raise AIQLSemanticError(
                "MultieventExecutor cannot run anomaly queries",
                hint="use repro.engine.anomaly.AnomalyExecutor",
            )
        scheduler = make_scheduler(self.scheduling, self.store, self.parallel)
        with trace_span("schedule", scheduling=self.scheduling) as span:
            tuples = scheduler.run(ctx)
            if span is not None:
                span.annotate(tuples=len(tuples))
        with trace_span("project") as span:
            result = evaluate_returns(ctx, tuples, self.store.registry.get)
            if span is not None:
                span.annotate(rows=len(result))
        return result, scheduler.stats


def evaluate_returns(
    ctx: QueryContext, tuples: TupleSet, entity_of
) -> ResultSet:
    """Project a final tuple set through the query's return clause."""
    col = {p: i for i, p in enumerate(tuples.patterns)}
    has_aggregates = any(item.is_aggregate for item in ctx.return_items)
    if has_aggregates or ctx.group_by:
        result = _aggregate(ctx, tuples, entity_of, col)
    else:
        rows = [
            tuple(
                item.ref.extract(row[col[item.ref.pattern]], entity_of)
                for item in ctx.return_items
            )
            for row in tuples.rows
        ]
        result = ResultSet(columns=ctx.labels, rows=rows)
        if ctx.having is not None:
            result = _apply_plain_having(ctx, result)

    if ctx.return_distinct:
        result = result.distinct()
    if ctx.return_count:
        result = ResultSet(columns=("count",), rows=[(len(result),)])
    if ctx.sort is not None:
        result = result.sorted_by(ctx.sort.attrs, descending=ctx.sort.descending)
    if ctx.top is not None:
        result = result.head(ctx.top)
    return result


def _aggregate(
    ctx: QueryContext, tuples: TupleSet, entity_of, col: Dict[int, int]
) -> ResultSet:
    """Group-by + aggregate evaluation.

    Non-aggregate return items act as implicit group keys when no explicit
    ``group by`` is present (matching the paper's Query 5 usage where
    ``return p, avg(evt.amount)`` groups by ``p``).
    """
    group_items = list(ctx.group_by)
    if not group_items:
        group_items = [i for i in ctx.return_items if not i.is_aggregate]

    def key_of(row: tuple) -> tuple:
        return tuple(
            item.ref.extract(row[col[item.ref.pattern]], entity_of)
            for item in group_items
        )

    groups: Dict[tuple, List[tuple]] = {}
    for row in tuples.rows:
        groups.setdefault(key_of(row), []).append(row)

    rows: List[tuple] = []
    for key, members in groups.items():
        key_lookup = {
            item.ref: value for item, value in zip(group_items, key)
        }
        out: List[object] = []
        values_by_label: Dict[str, float] = {}
        for item in ctx.return_items:
            if item.is_aggregate:
                value = _compute_aggregate(item, members, entity_of, col)
            else:
                if item.ref in key_lookup:
                    value = key_lookup[item.ref]
                else:
                    value = item.ref.extract(
                        members[0][col[item.ref.pattern]], entity_of
                    )
            out.append(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values_by_label[item.label] = float(value)
        if ctx.having is not None:
            env = MappingEnv({k: [v] for k, v in values_by_label.items()})
            try:
                if not evaluate_bool(ctx.having, env):
                    continue
            except AIQLSemanticError:
                # names referencing non-numeric results: treat as no match
                continue
        rows.append(tuple(out))

    rows.sort(key=lambda r: tuple(_sort_key(v) for v in r))
    return ResultSet(columns=ctx.labels, rows=rows)


def _compute_aggregate(
    item: ResolvedReturnItem,
    members: Sequence[tuple],
    entity_of,
    col: Dict[int, int],
) -> object:
    values = [
        item.ref.extract(row[col[item.ref.pattern]], entity_of)
        for row in members
    ]
    if item.distinct:
        seen = set()
        deduped = []
        for v in values:
            key = v.lower() if isinstance(v, str) else v
            if key not in seen:
                seen.add(key)
                deduped.append(v)
        values = deduped
    func = item.func
    if func == "count":
        return len(values)
    numeric = [float(v) for v in values]  # type: ignore[arg-type]
    if not numeric:
        return 0.0
    if func == "sum":
        return sum(numeric)
    if func == "avg":
        return sum(numeric) / len(numeric)
    if func == "min":
        return min(numeric)
    if func == "max":
        return max(numeric)
    raise AIQLSemanticError(f"unknown aggregate function {func!r}")


def _apply_plain_having(ctx: QueryContext, result: ResultSet) -> ResultSet:
    """Having over non-aggregated rows (each row is its own env)."""
    rows = []
    for row in result.rows:
        env_data = {
            label: [float(v)]
            for label, v in zip(result.columns, row)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        env = MappingEnv(env_data)
        try:
            if evaluate_bool(ctx.having, env):
                rows.append(row)
        except AIQLSemanticError:
            continue
    return ResultSet(columns=result.columns, rows=rows, meta=dict(result.meta))
