"""Data query synthesis and constrained execution (paper Secs. 5.1-5.2).

For every event pattern the engine synthesizes one *data query* that
searches the store for matching events.  The scheduler may execute a data
query *constrained by* the results of an already-executed pattern
(Algorithm 1's ``S_j <-execute-(S_i) q_j``): equality attribute
relationships narrow the entity id sets or inject IN-predicates, and
temporal relationships narrow the pattern's time window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.lang.context import (
    FieldRef,
    PatternContext,
    ResolvedAttrRel,
    ResolvedTempRel,
)
from repro.model.events import SystemEvent
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateLeaf,
    conjoin,
)


@dataclass
class DataQuery:
    """One executable pattern search against a store."""

    pattern: PatternContext
    filter: EventFilter

    @classmethod
    def for_pattern(cls, pattern: PatternContext) -> "DataQuery":
        return cls(pattern=pattern, filter=pattern.filter)

    @property
    def index(self) -> int:
        return self.pattern.index

    def execute(
        self,
        store,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return store.scan(
            self.filter, parallel=parallel, use_entity_index=use_entity_index
        )

    # -- narrowing ----------------------------------------------------------

    def narrowed_by_values(
        self, ref: FieldRef, values: Iterable[object]
    ) -> "DataQuery":
        """Constrain this query so ``ref`` (a field of *this* pattern) takes
        one of ``values``.

        ``id`` fields become subject/object id-set narrowings, which the
        table can serve straight from its postings lists; other attributes
        become IN-predicates on the corresponding predicate tree.
        """
        assert ref.pattern == self.index
        values = tuple(values)
        if not values:
            return replace(self, filter=self.filter.narrowed(subject_ids=frozenset()))
        if ref.attr == "id" and ref.role in ("subject", "object"):
            ids = frozenset(int(v) for v in values)  # type: ignore[arg-type]
            if ref.role == "subject":
                return replace(self, filter=self.filter.narrowed(subject_ids=ids))
            return replace(self, filter=self.filter.narrowed(object_ids=ids))
        leaf = PredicateLeaf(AttrPredicate(attr=ref.attr, op="in", value=values))
        flt = self.filter
        if ref.role == "subject":
            flt = replace(flt, subject_pred=conjoin([flt.subject_pred, leaf]))
        elif ref.role == "object":
            flt = replace(flt, object_pred=conjoin([flt.object_pred, leaf]))
        else:
            flt = replace(flt, event_pred=conjoin([flt.event_pred, leaf]))
        return replace(self, filter=flt)

    def narrowed_by_window(self, window: TimeWindow) -> "DataQuery":
        return replace(self, filter=self.filter.narrowed(window=window))


def values_of(
    ref: FieldRef, events: Sequence[SystemEvent], entity_of
) -> FrozenSet[object]:
    """Distinct values of ``ref`` across ``events`` (events of ref's pattern)."""
    out: Set[object] = set()
    for event in events:
        value = ref.extract(event, entity_of)
        out.add(value.lower() if isinstance(value, str) else value)
    return frozenset(out)


def attr_rel_narrowing(
    rel: ResolvedAttrRel,
    executed_index: int,
    executed_events: Sequence[SystemEvent],
    entity_of,
) -> Optional[tuple]:
    """Narrowing implied by an equality relationship with an executed side.

    Returns ``(pending_ref, values)`` to apply to the pending pattern's data
    query, or ``None`` when the relationship cannot narrow (non-equality).
    """
    if not rel.is_equality:
        return None
    if rel.left.pattern == executed_index:
        executed_ref, pending_ref = rel.left, rel.right
    elif rel.right.pattern == executed_index:
        executed_ref, pending_ref = rel.right, rel.left
    else:
        return None
    values = values_of(executed_ref, executed_events, entity_of)
    return pending_ref, values


def temp_rel_narrowing(
    rel: ResolvedTempRel,
    executed_index: int,
    executed_events: Sequence[SystemEvent],
) -> Optional[TimeWindow]:
    """Time-window narrowing for the pending side of a temporal relationship.

    If the executed events span ``[tmin, tmax]`` and ``executed before
    pending``, any matching pending event starts after ``tmin`` (and within
    ``tmax + high`` when a bound is given).  Soundness: the window must
    admit every pending event that could pair with *some* executed event.
    """
    if not executed_events:
        return TimeWindow(start=0.0, end=0.0)  # empty — no pairs possible
    tmin = min(e.start_time for e in executed_events)
    tmax = max(e.start_time for e in executed_events)
    if rel.left == executed_index:
        pending_is_right = True
    elif rel.right == executed_index:
        pending_is_right = False
    else:
        return None

    # Normalize to: does the pending event come after (True) or before
    # (False) the executed one, or either side (None, for 'within')?
    if rel.kind == "before":
        pending_after = pending_is_right
    elif rel.kind == "after":
        pending_after = not pending_is_right
    else:  # within
        pending_after = None

    # Window ends are exclusive; bump inclusive upper bounds by epsilon so
    # boundary events are admitted (the final join re-checks exactly).
    eps = 1e-6
    low = rel.low or 0.0
    if pending_after is True:
        start = tmin + low
        end = tmax + rel.high + eps if rel.high is not None else None
        return TimeWindow(start=start, end=end)
    if pending_after is False:
        end = (tmax - low + eps) if low else tmax
        start = tmin - rel.high if rel.high is not None else None
        return TimeWindow(start=start, end=end)
    # within: bounded both sides only if high given
    if rel.high is not None:
        return TimeWindow(start=tmin - rel.high, end=tmax + rel.high + eps)
    return None
