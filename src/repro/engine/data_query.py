"""Data query synthesis and constrained execution (paper Secs. 5.1-5.2).

For every event pattern the engine synthesizes one *data query* that
searches the store for matching events.  The scheduler may execute a data
query *constrained by* the results of an already-executed pattern
(Algorithm 1's ``S_j <-execute-(S_i) q_j``): equality attribute
relationships narrow the entity id sets or inject IN-predicates, and
temporal relationships narrow the pattern's time window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.lang.context import (
    FieldRef,
    PatternContext,
    ResolvedAttrRel,
    ResolvedTempRel,
)
from repro.model.events import SystemEvent
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateLeaf,
    conjoin,
)


@dataclass
class DataQuery:
    """One executable pattern search against a store."""

    pattern: PatternContext
    filter: EventFilter

    @classmethod
    def for_pattern(cls, pattern: PatternContext) -> "DataQuery":
        return cls(pattern=pattern, filter=pattern.filter)

    @property
    def index(self) -> int:
        return self.pattern.index

    def execute(
        self,
        store,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return store.scan(
            self.filter, parallel=parallel, use_entity_index=use_entity_index
        )

    def execute_scan(
        self,
        store,
        parallel: bool = False,
        use_entity_index: bool = True,
    ):
        """Like :meth:`execute`, but keep the result columnar when possible.

        Stores exposing ``scan_columns`` return a
        :class:`~repro.storage.blocks.BlockScanResult` (survivor positions
        over typed column blocks, no rows built); anything else falls back
        to :meth:`execute` wrapped in a :class:`MaterializedScanResult`, so
        schedulers see one surface either way.
        """
        scan_columns = getattr(store, "scan_columns", None)
        if scan_columns is not None:
            return scan_columns(
                self.filter,
                parallel=parallel,
                use_entity_index=use_entity_index,
            )
        return MaterializedScanResult(
            self.execute(store, parallel=parallel, use_entity_index=use_entity_index)
        )

    # -- narrowing ----------------------------------------------------------

    def narrowed_by_values(
        self, ref: FieldRef, values: Iterable[object]
    ) -> "DataQuery":
        """Constrain this query so ``ref`` (a field of *this* pattern) takes
        one of ``values``.

        ``id`` fields become subject/object id-set narrowings, which the
        table can serve straight from its postings lists; other attributes
        become IN-predicates on the corresponding predicate tree.
        """
        assert ref.pattern == self.index
        values = tuple(values)
        if not values:
            return replace(self, filter=self.filter.narrowed(subject_ids=frozenset()))
        if ref.attr == "id" and ref.role in ("subject", "object"):
            ids = frozenset(int(v) for v in values)  # type: ignore[arg-type]
            if ref.role == "subject":
                return replace(self, filter=self.filter.narrowed(subject_ids=ids))
            return replace(self, filter=self.filter.narrowed(object_ids=ids))
        leaf = PredicateLeaf(AttrPredicate(attr=ref.attr, op="in", value=values))
        flt = self.filter
        if ref.role == "subject":
            flt = replace(flt, subject_pred=conjoin([flt.subject_pred, leaf]))
        elif ref.role == "object":
            flt = replace(flt, object_pred=conjoin([flt.object_pred, leaf]))
        else:
            flt = replace(flt, event_pred=conjoin([flt.event_pred, leaf]))
        return replace(self, filter=flt)

    def narrowed_by_window(self, window: TimeWindow) -> "DataQuery":
        return replace(self, filter=self.filter.narrowed(window=window))


class MaterializedScanResult:
    """Adapter giving a plain event list the scan-result surface.

    The columnar scheduler path consumes ``events()``, ``ref_values`` and
    ``time_bounds``; stores (or helpers) that only produce event lists wrap
    them here so one code path serves both representations.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Sequence[SystemEvent]) -> None:
        self._events = list(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self) -> List[SystemEvent]:
        return self._events

    def ref_values(self, ref: FieldRef, entity_of) -> FrozenSet[object]:
        return values_of(ref, self._events, entity_of)

    def time_bounds(self) -> Optional[tuple]:
        if not self._events:
            return None
        times = [e.start_time for e in self._events]
        return (min(times), max(times))


def values_of(
    ref: FieldRef, events: Sequence[SystemEvent], entity_of
) -> FrozenSet[object]:
    """Distinct values of ``ref`` across ``events`` (events of ref's pattern)."""
    out: Set[object] = set()
    for event in events:
        value = ref.extract(event, entity_of)
        out.add(value.lower() if isinstance(value, str) else value)
    return frozenset(out)


def _ref_values(source, ref: FieldRef, entity_of) -> FrozenSet[object]:
    """Distinct ``ref`` values from a scan result or plain event list.

    Scan results answer from their columns (``ref_values``); lists fall
    back to per-event extraction.  Both normalize strings the same way.
    """
    ref_values = getattr(source, "ref_values", None)
    if ref_values is not None:
        return ref_values(ref, entity_of)
    return values_of(ref, source, entity_of)


def _time_span(source) -> Optional[tuple]:
    """(min, max) start time from a scan result or plain event list."""
    time_bounds = getattr(source, "time_bounds", None)
    if time_bounds is not None:
        return time_bounds()
    if not source:
        return None
    times = [e.start_time for e in source]
    return (min(times), max(times))


def attr_rel_narrowing(
    rel: ResolvedAttrRel,
    executed_index: int,
    executed_events,
    entity_of,
) -> Optional[tuple]:
    """Narrowing implied by an equality relationship with an executed side.

    Returns ``(pending_ref, values)`` to apply to the pending pattern's data
    query, or ``None`` when the relationship cannot narrow (non-equality).
    ``executed_events`` may be a scan result (values read from columns) or
    a plain event list.
    """
    if not rel.is_equality:
        return None
    if rel.left.pattern == executed_index:
        executed_ref, pending_ref = rel.left, rel.right
    elif rel.right.pattern == executed_index:
        executed_ref, pending_ref = rel.right, rel.left
    else:
        return None
    values = _ref_values(executed_events, executed_ref, entity_of)
    return pending_ref, values


def temp_rel_narrowing(
    rel: ResolvedTempRel,
    executed_index: int,
    executed_events,
) -> Optional[TimeWindow]:
    """Time-window narrowing for the pending side of a temporal relationship.

    If the executed events span ``[tmin, tmax]`` and ``executed before
    pending``, any matching pending event starts after ``tmin`` (and within
    ``tmax + high`` when a bound is given).  Soundness: the window must
    admit every pending event that could pair with *some* executed event.
    ``executed_events`` may be a scan result or a plain event list.
    """
    span = _time_span(executed_events)
    if span is None:
        return TimeWindow(start=0.0, end=0.0)  # empty — no pairs possible
    tmin, tmax = span
    if rel.left == executed_index:
        pending_is_right = True
    elif rel.right == executed_index:
        pending_is_right = False
    else:
        return None

    # Normalize to: does the pending event come after (True) or before
    # (False) the executed one, or either side (None, for 'within')?
    if rel.kind == "before":
        pending_after = pending_is_right
    elif rel.kind == "after":
        pending_after = not pending_is_right
    else:  # within
        pending_after = None

    # Window ends are exclusive; bump inclusive upper bounds by epsilon so
    # boundary events are admitted (the final join re-checks exactly).
    eps = 1e-6
    low = rel.low or 0.0
    if pending_after is True:
        start = tmin + low
        end = tmax + rel.high + eps if rel.high is not None else None
        return TimeWindow(start=start, end=end)
    if pending_after is False:
        end = (tmax - low + eps) if low else tmax
        start = tmin - rel.high if rel.high is not None else None
        return TimeWindow(start=start, end=end)
    # within: bounded both sides only if high given
    if rel.high is not None:
        return TimeWindow(start=tmin - rel.high, end=tmax + rel.high + eps)
    return None
