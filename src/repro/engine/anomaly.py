"""Anomaly query execution (paper Sec. 4.3, Queries 4-5).

An anomaly query is a multievent query with a global sliding window
(``window = 1 min, step = 10 sec``).  Execution:

1. resolve the matched tuples once over the whole global time window (the
   engine "maintains the aggregate results as historical states");
2. slide the window across the global range; each position aggregates the
   tuples whose anchor event (the first pattern) starts inside it;
3. per group (the ``group by`` keys), keep the aggregate series aligned
   across window positions — a group absent from a window contributes 0 —
   giving the history states ``freq[1]``, ``freq[2]``... and the moving
   average inputs;
4. evaluate the ``having`` expression at each position, skipping positions
   earlier than the deepest history index referenced (there is no history
   to compare against yet);
5. emit one row per (window, group) that fires, with a trailing
   ``window_start`` column.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.result import ResultSet
from repro.engine.scheduler import make_scheduler
from repro.engine.tuples import TupleSet
from repro.lang.context import QueryContext
from repro.lang.errors import AIQLSemanticError
from repro.lang.expr import MappingEnv, evaluate_bool, max_history_depth
from repro.model.time import format_timestamp
from repro.obs.trace import trace_span


class AnomalyExecutor:
    """Executes anomaly query contexts against a store."""

    def __init__(
        self,
        store,
        scheduling: str = "relationship",
        parallel: bool = False,
    ) -> None:
        self.store = store
        self.scheduling = scheduling
        self.parallel = parallel
        self.last_stats = None

    def run(self, ctx: QueryContext) -> ResultSet:
        result, stats = self.run_with_stats(ctx)
        self.last_stats = stats
        return result

    def run_with_stats(self, ctx: QueryContext):
        """Execute ``ctx``; returns ``(result, scheduler_stats)`` without
        touching executor state (thread-safe, used by the query service)."""
        if ctx.kind != "anomaly" or ctx.sliding is None:
            raise AIQLSemanticError(
                "AnomalyExecutor requires an anomaly query",
                hint="add 'window = ...' and 'step = ...' global constraints",
            )
        if not ctx.window.is_bounded():
            raise AIQLSemanticError(
                "anomaly queries require a bounded global time window"
            )

        scheduler = make_scheduler(self.scheduling, self.store, self.parallel)
        with trace_span("schedule", scheduling=self.scheduling) as span:
            tuples = scheduler.run(ctx)
            if span is not None:
                span.annotate(tuples=len(tuples))
        with trace_span("slide") as span:
            result = self._slide(ctx, tuples)
            if span is not None:
                span.annotate(rows=len(result))
        return result, scheduler.stats

    # -- sliding-window machinery -------------------------------------------

    def _slide(self, ctx: QueryContext, tuples: TupleSet) -> ResultSet:
        entity_of = self.store.registry.get
        col = {p: i for i, p in enumerate(tuples.patterns)}
        anchor_col = col[ctx.patterns[0].index]

        window = ctx.sliding.window_seconds
        step = ctx.sliding.step_seconds
        t0, t1 = ctx.window.start, ctx.window.end
        assert t0 is not None and t1 is not None

        starts: List[float] = []
        start = t0
        while start + window <= t1 + 1e-9:
            starts.append(start)
            start += step
        if not starts:
            starts = [t0]

        group_items = list(ctx.group_by)
        if not group_items:
            group_items = [i for i in ctx.return_items if not i.is_aggregate]
        agg_items = [i for i in ctx.return_items if i.is_aggregate]
        if not agg_items:
            raise AIQLSemanticError(
                "anomaly queries need at least one aggregate in the return clause"
            )

        def group_key(row: tuple) -> tuple:
            return tuple(
                item.ref.extract(row[col[item.ref.pattern]], entity_of)
                for item in group_items
            )

        # Bucket rows once: row -> the window positions containing its anchor.
        rows_sorted = sorted(
            tuples.rows, key=lambda r: r[anchor_col].start_time
        )

        # series[group][label] = per-window list of aggregate values
        all_groups: Dict[tuple, None] = {}
        window_rows: List[Dict[tuple, List[tuple]]] = []
        for ws in starts:
            we = ws + window
            members: Dict[tuple, List[tuple]] = {}
            for row in rows_sorted:
                t = row[anchor_col].start_time
                if t < ws:
                    continue
                if t >= we:
                    break
                key = group_key(row)
                members.setdefault(key, []).append(row)
                all_groups[key] = None
            window_rows.append(members)

        from repro.engine.executor import _compute_aggregate

        series: Dict[tuple, Dict[str, List[float]]] = {
            key: {item.label: [] for item in agg_items} for key in all_groups
        }
        for members in window_rows:
            for key in all_groups:
                rows = members.get(key, [])
                for item in agg_items:
                    value = (
                        float(_compute_aggregate(item, rows, entity_of, col))
                        if rows
                        else 0.0
                    )
                    series[key][item.label].append(value)

        min_index = (
            max_history_depth(ctx.having) if ctx.having is not None else 0
        )

        out_rows: List[tuple] = []
        for k, ws in enumerate(starts):
            if k < min_index:
                continue
            for key in all_groups:
                group_series = series[key]
                current = {
                    label: values[k] for label, values in group_series.items()
                }
                if all(v == 0.0 for v in current.values()):
                    continue  # group inactive in this window
                if ctx.having is not None:
                    env = MappingEnv(
                        {
                            label: values[: k + 1]
                            for label, values in group_series.items()
                        }
                    )
                    try:
                        if not evaluate_bool(ctx.having, env):
                            continue
                    except AIQLSemanticError:
                        continue
                row: List[object] = []
                key_lookup = dict(
                    zip((item.ref for item in group_items), key)
                )
                for item in ctx.return_items:
                    if item.is_aggregate:
                        row.append(current[item.label])
                    else:
                        row.append(key_lookup.get(item.ref))
                row.append(format_timestamp(ws))
                out_rows.append(tuple(row))

        columns = ctx.labels + ("window_start",)
        result = ResultSet(
            columns=columns,
            rows=out_rows,
            meta={
                "windows": len(starts),
                "window_seconds": window,
                "step_seconds": step,
            },
        )
        if ctx.return_distinct:
            result = result.distinct()
        if ctx.sort is not None:
            result = result.sorted_by(ctx.sort.attrs, descending=ctx.sort.descending)
        if ctx.top is not None:
            result = result.head(ctx.top)
        return result
