"""Observability: metrics registry, query tracing, slow-query log.

This package is intentionally dependency-free within ``repro`` — every
other layer (storage, engine, service, tier, shard, cli) may import it
without creating cycles.  All hooks are off-able and near-zero cost when
disabled: counters early-return on a single flag check and trace spans
no-op when no trace is active on the current context.
"""

from repro.obs.explain import ExplainReport, plan_lines
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    metrics_enabled,
    set_metrics_enabled,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import (
    Span,
    Trace,
    active_trace,
    trace_add,
    trace_annotate,
    trace_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "metrics_enabled",
    "set_metrics_enabled",
    "Span",
    "Trace",
    "active_trace",
    "trace_span",
    "trace_add",
    "trace_annotate",
    "SlowQuery",
    "SlowQueryLog",
    "ExplainReport",
    "plan_lines",
]
