"""Query tracing: structured span trees with timings and annotations.

A :class:`Trace` is activated on the current context (``contextvars``)
for the duration of one query; instrumentation sites open nested
:func:`trace_span` blocks (parse → schedule → per-pattern scans →
narrowing re-queries → joins) and attach annotations from deep inside
the storage layer via :func:`trace_add` / :func:`trace_annotate`.

When no trace is active — the common case — every hook is a single
``ContextVar.get`` returning ``None``.  Thread-pool workers do *not*
inherit the active trace (contextvars don't propagate into pool
threads), which is deliberate: parallel partition scans aggregate their
annotations on the calling thread inside ``EventStore.scan_columns``
instead of racing on one span.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(slots=True)
class Span:
    """One timed step of a query, with child spans and annotations."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    started: float = 0.0
    ended: Optional[float] = None

    @property
    def duration_s(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return max(0.0, end - self.started)

    def add(self, key: str, n: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + n

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    # -- renderers ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def to_text(self, indent: int = 0) -> str:
        pad = "  " * indent
        bits = [f"{pad}{self.name}"]
        detail = []
        for key, value in self.attrs.items():
            detail.append(f"{key}={value}")
        for key, value in sorted(self.counters.items()):
            n = int(value) if value == int(value) else value
            detail.append(f"{key}={n}")
        head = bits[0]
        if detail:
            head += " [" + " ".join(detail) + "]"
        head += f"  ({self.duration_s * 1e3:.2f} ms)"
        lines = [head]
        for child in self.children:
            lines.append(child.to_text(indent + 1))
        return "\n".join(lines)

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out


class Trace:
    """A span tree under construction for one query execution.

    Spans are opened/closed on a stack; query execution is
    single-threaded at span granularity (parallelism only happens below
    span level, inside one scan), so a plain list suffices.
    """

    def __init__(self, name: str = "query", **attrs: Any) -> None:
        self.root = Span(name, attrs=dict(attrs), started=time.perf_counter())
        self._stack: List[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def push(self, name: str, **attrs: Any) -> Span:
        # ``attrs`` is a fresh kwargs dict — owned outright, no copy.
        span = Span(name, attrs=attrs, started=time.perf_counter())
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def pop(self, span: Span) -> None:
        span.ended = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def finish(self) -> Span:
        now = time.perf_counter()
        while self._stack:
            self._stack.pop().ended = now
        return self.root


_ACTIVE: ContextVar[Optional[Trace]] = ContextVar("aiql_trace", default=None)


def active_trace() -> Optional[Trace]:
    return _ACTIVE.get()


@contextmanager
def activate(trace: Trace) -> Iterator[Trace]:
    """Make ``trace`` the active trace for the current context."""
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        trace.finish()
        _ACTIVE.reset(token)


class trace_span:
    """Open a child span on the active trace; no-op when tracing is off.

    A hand-rolled context manager (not ``@contextmanager``): spans open
    on every scan/join of a traced query, and the generator protocol
    costs several times more than this slotted object.
    """

    __slots__ = ("_trace", "span")

    def __init__(self, name: str, **attrs: Any) -> None:
        trace = _ACTIVE.get()
        self._trace = trace
        self.span = None if trace is None else trace.push(name, **attrs)

    def __enter__(self) -> Optional[Span]:
        return self.span

    def __exit__(self, *exc: object) -> None:
        if self._trace is not None:
            assert self.span is not None
            self._trace.pop(self.span)


def trace_add(key: str, n: float = 1.0) -> None:
    """Bump a counter on the current span (no-op when tracing is off)."""
    trace = _ACTIVE.get()
    if trace is not None:
        trace.current.add(key, n)


def trace_annotate(**attrs: Any) -> None:
    """Set attributes on the current span (no-op when tracing is off)."""
    trace = _ACTIVE.get()
    if trace is not None:
        trace.current.annotate(**attrs)
