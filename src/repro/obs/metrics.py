"""A lock-cheap metrics registry: counters, gauges, log-scale histograms.

Design constraints (ISSUE 8):

- **Near-zero overhead when disabled.**  Every mutation starts with a
  single flag check on the owning registry and returns immediately when
  metrics are off; no locks are taken and no dicts are touched.
- **Lock-cheap when enabled.**  Instrumentation sites increment once per
  *scan/commit/query*, never per row, so a plain per-metric lock is
  plenty — the lock is held for a dict update only.
- **Fixed log-scale histogram buckets.**  Bucket bounds are computed
  once at registration (`log_buckets`), so `observe` is a bisect plus
  three additions.

Metrics may carry labels (e.g. ``shard="3"``).  A metric without labels
stores its value under the empty label tuple; labelled children are
created on first use.  ``render`` emits Prometheus-style text
exposition; ``snapshot`` returns plain dicts for programmatic use.

The process-wide default registry is ``REGISTRY`` — instrumented modules
grab metric handles from it at import time.  Tests can build private
``MetricsRegistry`` instances, or ``reset()`` the shared one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> Tuple[float, ...]:
    """Geometric bucket upper bounds covering ``[lo, hi]``."""
    if lo <= 0 or hi <= lo or factor <= 1.0:
        raise ValueError("log_buckets requires 0 < lo < hi and factor > 1")
    bounds: List[float] = []
    bound = lo
    while bound < hi:
        bounds.append(bound)
        bound *= factor
    bounds.append(bound)
    return tuple(bounds)


#: Default bounds: 1 microsecond .. ~67 seconds, powers of two.
SECONDS_BUCKETS = log_buckets(1e-6, 64.0)
#: Default bounds: 64 bytes .. ~1 GiB, powers of four.
BYTES_BUCKETS = log_buckets(64.0, 1 << 30, factor=4.0)


class _Metric:
    """Shared machinery: label resolution and per-metric locking."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, float] = {}

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        # Unlabelled mutation of an unlabelled metric is the hot case
        # (one call per scan/commit/query); resolve it without building
        # comparison tuples.
        if not labels and not self.labelnames:
            return ()
        if tuple(labels) != self.labelnames:
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()

    # -- introspection ------------------------------------------------------

    def value(self, **labels: object) -> float:
        """Current value (0.0 if never touched)."""
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Counter(_Metric):
    """Monotonically increasing counter."""

    kind = "counter"

    def inc(self, n: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n


class Gauge(_Metric):
    """A value that can go up and down (or be sampled via callback)."""

    kind = "gauge"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        self._callback = callback

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, n: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n

    def samples(self) -> List[Tuple[LabelKey, float]]:
        if self._callback is not None:
            try:
                self.set(float(self._callback()))
            except Exception:  # noqa: BLE001 - sampling must never raise
                pass
        return super().samples()


class Histogram(_Metric):
    """Histogram over fixed log-scale buckets.

    Stores, per label set, ``[count, sum, b0, b1, ...]`` where ``bi`` is
    the count of observations ``<= bounds[i]`` (cumulative counts are
    derived at render time; storage is per-bucket).
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        self.bounds = tuple(sorted(buckets))
        self._series: Dict[LabelKey, List[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0.0, 0.0] + [0.0] * (
                    len(self.bounds) + 1
                )
            series[0] += 1
            series[1] += value
            series[2 + idx] += 1

    def _reset(self) -> None:
        with self._lock:
            self._series.clear()

    # -- introspection ------------------------------------------------------

    def count(self, **labels: object) -> int:
        series = self._series.get(self._key(labels))
        return int(series[0]) if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(self._key(labels))
        return series[1] if series else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Approximate quantile from bucket counts (upper bound of the
        bucket holding the q-th observation)."""
        series = self._series.get(self._key(labels))
        if not series or series[0] == 0:
            return 0.0
        target = q * series[0]
        seen = 0.0
        for i, n in enumerate(series[2:]):
            seen += n
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def series(self) -> Dict[LabelKey, List[float]]:
        with self._lock:
            return {key: list(vals) for key, vals in self._series.items()}


class MetricsRegistry:
    """Holds metrics and renders them; owns the cheap enabled flag."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration -------------------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labelnames != metric.labelnames
                ):
                    raise ValueError(
                        f"metric {metric.name!r} re-registered with a "
                        "different type or labels"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter(self, name, help, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self._register(Gauge(self, name, help, labelnames, callback))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> Histogram:
        metric = self._register(Histogram(self, name, help, labelnames, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every metric (registrations survive)."""
        for metric in list(self._metrics.values()):
            metric._reset()

    # -- output -------------------------------------------------------------

    @staticmethod
    def _label_str(labelnames: LabelKey, key: LabelKey) -> str:
        if not labelnames:
            return ""
        pairs = ",".join(
            f'{name}="{value}"' for name, value in zip(labelnames, key)
        )
        return "{" + pairs + "}"

    def render(self, extra_gauges: Optional[Dict[str, float]] = None) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in sorted(metric.series().items()):
                    base = self._label_str(metric.labelnames, key)
                    cumulative = 0.0
                    for i, bound in enumerate(metric.bounds):
                        cumulative += series[2 + i]
                        label = self._merge_le(metric.labelnames, key, bound)
                        lines.append(
                            f"{metric.name}_bucket{label} {_fmt(cumulative)}"
                        )
                    cumulative += series[2 + len(metric.bounds)]
                    label = self._merge_le(metric.labelnames, key, None)
                    lines.append(
                        f"{metric.name}_bucket{label} {_fmt(cumulative)}"
                    )
                    lines.append(f"{metric.name}_sum{base} {_fmt(series[1])}")
                    lines.append(f"{metric.name}_count{base} {_fmt(series[0])}")
            else:
                samples = metric.samples()
                if not samples and not metric.labelnames:
                    samples = [((), 0.0)]
                for key, value in samples:
                    label = self._label_str(metric.labelnames, key)
                    lines.append(f"{metric.name}{label} {_fmt(value)}")
        for name, value in sorted((extra_gauges or {}).items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _merge_le(
        labelnames: LabelKey, key: LabelKey, bound: Optional[float]
    ) -> str:
        le = "+Inf" if bound is None else _fmt(bound)
        pairs = [
            f'{name}="{value}"' for name, value in zip(labelnames, key)
        ]
        pairs.append(f'le="{le}"')
        return "{" + ",".join(pairs) + "}"

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view: {name: {kind, values | series summary}}."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: Dict[str, object] = {"kind": metric.kind}
            if isinstance(metric, Histogram):
                entry["series"] = {
                    ",".join(key) or "": {
                        "count": series[0],
                        "sum": series[1],
                        "p50": metric.quantile(
                            0.50, **dict(zip(metric.labelnames, key))
                        ),
                        "p99": metric.quantile(
                            0.99, **dict(zip(metric.labelnames, key))
                        ),
                    }
                    for key, series in metric.series().items()
                }
            else:
                entry["values"] = {
                    ",".join(key) or "": value
                    for key, value in metric.samples()
                }
            out[metric.name] = entry
        return out


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def flatten_gauges(prefix: str, stats: object) -> Dict[str, float]:
    """Flatten a nested stats dict into gauge samples.

    ``{"wal": {"bytes": 10}}`` -> ``{"<prefix>_wal_bytes": 10.0}``.
    Non-numeric leaves and lists are skipped.
    """
    out: Dict[str, float] = {}
    if isinstance(stats, dict):
        for key, value in stats.items():
            name = f"{prefix}_{key}".replace(".", "_").replace("-", "_")
            out.update(flatten_gauges(name, value))
    elif isinstance(stats, bool):
        out[prefix] = float(stats)
    elif isinstance(stats, (int, float)):
        out[prefix] = float(stats)
    return out


#: Process-wide default registry.  ``SystemConfig.metrics`` drives the
#: enabled flag via :func:`set_metrics_enabled` (same process-wide toggle
#: idiom as ``storage.kernels.set_columnar``).
REGISTRY = MetricsRegistry(enabled=True)


def set_metrics_enabled(enabled: bool) -> None:
    REGISTRY.enabled = bool(enabled)


def metrics_enabled() -> bool:
    return REGISTRY.enabled
