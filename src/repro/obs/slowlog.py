"""Slow-query log: a bounded ring of queries over a latency threshold."""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional


@dataclass(frozen=True)
class SlowQuery:
    """One slow-query record."""

    text: str
    elapsed_ms: float
    rows: int
    wall_time: float
    detail: Dict[str, Any] = field(default_factory=dict)


class SlowQueryLog:
    """Records queries slower than ``threshold_ms`` (newest last).

    ``observe`` is called on every query; below-threshold calls cost one
    comparison.  Thread-safe: the service layer submits queries from a
    pool.
    """

    def __init__(self, threshold_ms: float, max_entries: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.threshold_ms = threshold_ms
        self._entries: Deque[SlowQuery] = deque(maxlen=max_entries)
        self._lock = threading.Lock()
        self.observed = 0
        self.recorded = 0

    def observe(
        self,
        text: str,
        elapsed_s: float,
        rows: int = 0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> Optional[SlowQuery]:
        elapsed_ms = elapsed_s * 1e3
        with self._lock:
            self.observed += 1
            if elapsed_ms < self.threshold_ms:
                return None
            entry = SlowQuery(
                text=text,
                elapsed_ms=elapsed_ms,
                rows=rows,
                wall_time=time.time(),
                detail=dict(detail or {}),
            )
            self._entries.append(entry)
            self.recorded += 1
            return entry

    def entries(self) -> List[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "observed": self.observed,
                "recorded": self.recorded,
                "entries": len(self._entries),
            }
