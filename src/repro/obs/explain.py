"""EXPLAIN / EXPLAIN ANALYZE reports.

:func:`plan_lines` renders the static plan (pattern scores, agent set,
relationships) from a compiled query context; :class:`ExplainReport`
pairs it with the executed span tree when the query actually ran
(``AIQLSystem.explain(text, analyze=True)``).

The report stringifies to the text rendering; the ``in`` containment
shim for pre-observability callers that treated ``explain()`` as a
plain string is deprecated (use ``"..." in str(report)``) and will be
removed one release after ISSUE 10.  JSON output goes through the
versioned :mod:`repro.api` wire schema, so ``repro explain --json``,
``GET /v1/explain`` and this method all emit the same
``explain_report`` message.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span


def plan_lines(ctx: Any) -> List[str]:
    """Static execution plan for a compiled query context."""
    lines = [f"kind: {ctx.kind}"]
    if ctx.agent_ids is not None:
        lines.append(f"agents: {sorted(ctx.agent_ids)}")
    if ctx.window.start is not None or ctx.window.end is not None:
        lines.append(f"window: [{ctx.window.start}, {ctx.window.end})")
    for pattern in ctx.patterns:
        flt = pattern.filter
        ops = (
            ",".join(sorted(op.value for op in flt.operations))
            if flt.operations
            else "*"
        )
        lines.append(
            f"pattern {pattern.index} ({pattern.event_name}): "
            f"{pattern.subject_name} -[{ops}]-> {pattern.object_name} "
            f"({pattern.object_type.value}; score={pattern.score})"
        )
    for rel in ctx.attr_relationships:
        lines.append(
            f"attr rel: p{rel.left.pattern}.{rel.left.role}.{rel.left.attr} "
            f"{rel.op} p{rel.right.pattern}.{rel.right.role}.{rel.right.attr}"
        )
    for rel in ctx.temp_relationships:
        bounds = ""
        if rel.low is not None or rel.high is not None:
            bounds = f"[{rel.low or 0}-{rel.high}s]"
        lines.append(
            f"temp rel: evt{rel.left} {rel.kind}{bounds} evt{rel.right}"
        )
    return lines


@dataclass
class ExplainReport:
    """Static plan plus (optionally) the executed span tree."""

    query: str
    kind: str
    plan: List[str] = field(default_factory=list)
    root: Optional[Span] = None
    rows: Optional[int] = None
    scheduler: Optional[Dict[str, Any]] = None
    # Degraded sharded reads: merged ScanCompleteness summary of the
    # scans this execution ran without every shard (None = complete).
    completeness: Optional[Dict[str, Any]] = None

    # -- renderers ----------------------------------------------------------

    def to_text(self) -> str:
        lines = list(self.plan)
        if self.root is not None:
            lines.append("")
            lines.append(
                f"execution ({self.root.duration_s * 1e3:.2f} ms, "
                f"{self.rows if self.rows is not None else '?'} row(s)):"
            )
            lines.append(self.root.to_text())
        if self.scheduler:
            order = self.scheduler.get("order")
            if order is not None:
                lines.append(f"scheduler order: {list(order)}")
        if self.completeness:
            lines.append(
                "completeness: DEGRADED "
                f"(missing shards {self.completeness.get('missing_shards')}, "
                f"~{self.completeness.get('estimated_missed_rows')} "
                f"row(s) unavailable)"
            )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The versioned ``explain_report`` wire message (:mod:`repro.api`)."""
        # Imported lazily: repro.api is the public surface and must stay
        # importable without pulling the obs/storage stack (and vice versa).
        from repro.api import explain_payload

        return explain_payload(self).to_json(indent=indent)

    # -- string compatibility -----------------------------------------------
    # Pre-observability callers treated explain() as a plain string.

    def __str__(self) -> str:
        return self.to_text()

    def __contains__(self, needle: str) -> bool:
        warnings.warn(
            "`needle in explain_report` string-compat containment is "
            "deprecated and will be removed one release after the v1 API; "
            "use `needle in str(report)` or `needle in report.to_text()`",
            DeprecationWarning,
            stacklevel=2,
        )
        return needle in self.to_text()

    # -- span access ---------------------------------------------------------

    def spans(self, name: str) -> List[Span]:
        """All spans with ``name`` (empty when not analyzed)."""
        return self.root.find(name) if self.root is not None else []

    def pattern_spans(self) -> List[Span]:
        """Per-pattern scan spans in execution order."""
        return self.spans("scan")
