"""Error types for the AIQL language front-end (paper Fig. 2 Error Reporting).

All language errors carry source positions so an interactive investigation
session can point at the offending token — the paper's architecture calls
this the *error reporting* component of the parser.
"""

from __future__ import annotations

from typing import Optional


class AIQLError(Exception):
    """Base class for all AIQL language / semantic errors."""


class AIQLSyntaxError(AIQLError):
    """Lexical or grammatical error, with line/column context."""

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        source: Optional[str] = None,
    ) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.source = source
        super().__init__(self._render())

    def _render(self) -> str:
        location = f" at line {self.line}, column {self.column}" if self.line else ""
        rendered = f"syntax error{location}: {self.message}"
        if self.source and self.line:
            lines = self.source.splitlines()
            if 0 < self.line <= len(lines):
                rendered += "\n  " + lines[self.line - 1]
                rendered += "\n  " + " " * max(self.column - 1, 0) + "^"
        return rendered


class AIQLSemanticError(AIQLError):
    """Valid syntax, invalid meaning (unknown ids, bad attributes...)."""

    def __init__(self, message: str, hint: Optional[str] = None) -> None:
        self.message = message
        self.hint = hint
        text = f"semantic error: {message}"
        if hint:
            text += f" (hint: {hint})"
        super().__init__(text)
