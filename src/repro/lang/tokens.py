"""Token definitions for the AIQL lexer.

Keywords are contextual: the lexer emits every word as ``IDENT`` and the
parser decides whether a given identifier acts as a keyword (``with``,
``return``, ``before``...), an entity type (``proc``), an operation
(``read``) or a plain name.  This mirrors how real query languages keep
attribute names like ``window`` usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenType(Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    # comparison
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    # boolean
    AND = "&&"
    OR = "||"
    BANG = "!"
    # arithmetic
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    # structure
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    DOT = "."
    COLON = ":"
    ARROW = "->"
    BACKARROW = "<-"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r} @{self.line}:{self.column})"


# Words with syntactic meaning; the parser consults this set when it needs
# to stop an identifier-ish parse (e.g. the end of a return-item list).
KEYWORDS = frozenset(
    {
        "as",
        "with",
        "return",
        "count",
        "distinct",
        "group",
        "by",
        "having",
        "sort",
        "top",
        "asc",
        "desc",
        "before",
        "after",
        "within",
        "forward",
        "backward",
        "from",
        "to",
        "at",
        "window",
        "step",
        "in",
        "not",
    }
)

ENTITY_TYPE_WORDS = frozenset(
    {"proc", "process", "file", "ip", "reg", "registry", "pipe"}
)

AGGREGATE_FUNCTIONS = frozenset({"count", "avg", "sum", "min", "max"})

MOVING_AVERAGE_FUNCTIONS = frozenset({"sma", "cma", "wma", "ewma"})
