"""The AIQL language front-end (paper Sec. 4 and Fig. 2's parser box).

Pipeline: source text -> :func:`~repro.lang.lexer.tokenize` ->
:func:`~repro.lang.parser.parse` (AST) ->
:func:`~repro.lang.context.compile_multievent` /
:func:`~repro.engine.dependency.compile_dependency` (QueryContext).
"""

from repro.lang.ast import DependencyQuery, MultieventQuery, Query
from repro.lang.context import (
    FieldRef,
    PatternContext,
    QueryContext,
    ResolvedAttrRel,
    ResolvedReturnItem,
    ResolvedTempRel,
    compile_multievent,
)
from repro.lang.errors import AIQLError, AIQLSemanticError, AIQLSyntaxError
from repro.lang.formatter import format_query
from repro.lang.inference import infer_multievent
from repro.lang.lexer import tokenize
from repro.lang.parser import parse, parse_many

__all__ = [
    "AIQLError",
    "AIQLSemanticError",
    "AIQLSyntaxError",
    "DependencyQuery",
    "FieldRef",
    "MultieventQuery",
    "PatternContext",
    "Query",
    "QueryContext",
    "ResolvedAttrRel",
    "ResolvedReturnItem",
    "ResolvedTempRel",
    "compile_multievent",
    "format_query",
    "infer_multievent",
    "parse",
    "parse_many",
    "tokenize",
]
