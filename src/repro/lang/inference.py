"""Context-aware syntax shortcut resolution (paper Sec. 4.1).

AIQL keeps queries concise through three shortcuts, resolved here into a
fully explicit AST before semantic compilation:

* **Attribute inference** — a bare value in an entity pattern gets the
  entity type's default attribute (file -> ``name``, proc -> ``exe_name``,
  ip -> ``dst_ip``); a bare entity id in the return / group-by clause gets
  the same default; a bare id pair in an attribute relationship compares
  ``id`` to ``id``.
* **Optional ID** — entities and events without ids get fresh synthesized
  names (``_e1``, ``_evt1``...), so downstream stages can always address
  patterns by name.
* **Entity ID reuse** — reusing an entity id across patterns means *the
  same entity*; the semantic compiler turns occurrences into implicit
  ``id = id`` join relationships (handled in :mod:`repro.lang.context`,
  which needs the occurrence map this module produces).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import AIQLSemanticError
from repro.model.entities import EntityType, default_attribute


def _entity_type(type_name: str) -> EntityType:
    return EntityType.parse(type_name)


class _NameAllocator:
    def __init__(self, taken: set) -> None:
        self._taken = set(taken)
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        while True:
            self._counter += 1
            name = f"_{prefix}{self._counter}"
            if name not in self._taken:
                self._taken.add(name)
                return name


def _resolve_cstr(
    node: Optional[ast.CstrNode], etype: Optional[EntityType]
) -> Optional[ast.CstrNode]:
    """Fill default attributes for bare-value comparisons."""
    if node is None:
        return None
    if isinstance(node, ast.CstrLeaf):
        comparison = node.comparison
        if comparison.attr is None:
            if etype is None:
                raise AIQLSemanticError(
                    f"bare value {comparison.value!r} in an event constraint "
                    "has no default attribute",
                    hint="write an explicit 'attr = value' comparison",
                )
            comparison = replace(comparison, attr=default_attribute(etype))
        return ast.CstrLeaf(comparison)
    if isinstance(node, ast.CstrNot):
        return ast.CstrNot(_resolve_cstr(node.child, etype))
    if isinstance(node, ast.CstrAnd):
        return ast.CstrAnd(
            _resolve_cstr(node.left, etype), _resolve_cstr(node.right, etype)
        )
    if isinstance(node, ast.CstrOr):
        return ast.CstrOr(
            _resolve_cstr(node.left, etype), _resolve_cstr(node.right, etype)
        )
    raise AssertionError(node)


def infer_multievent(query: ast.MultieventQuery) -> ast.MultieventQuery:
    """Return an equivalent query with every shortcut made explicit."""
    taken = set()
    for pattern in query.patterns:
        for entity in (pattern.subject, pattern.object):
            if entity.entity_id:
                taken.add(entity.entity_id)
        if pattern.event_id:
            taken.add(pattern.event_id)
    alloc = _NameAllocator(taken)

    entity_types: Dict[str, EntityType] = {}
    new_patterns: List[ast.EventPattern] = []
    for pattern in query.patterns:
        subject = _infer_entity(pattern.subject, alloc, entity_types)
        obj = _infer_entity(pattern.object, alloc, entity_types)
        event_id = pattern.event_id or alloc.fresh("evt")
        new_patterns.append(
            ast.EventPattern(
                subject=subject,
                operation=pattern.operation,
                object=obj,
                event_id=event_id,
                event_constraints=_resolve_cstr(pattern.event_constraints, None)
                if pattern.event_constraints
                else None,
                window=pattern.window,
            )
        )

    relationships = tuple(
        _infer_relationship(rel) for rel in query.relationships
    )
    returns = _infer_returns(query.returns, entity_types)
    filters = _infer_filters(query.filters, entity_types)
    return ast.MultieventQuery(
        globals=query.globals,
        patterns=tuple(new_patterns),
        relationships=relationships,
        returns=returns,
        filters=filters,
    )


def _infer_entity(
    entity: ast.EntityPattern,
    alloc: _NameAllocator,
    entity_types: Dict[str, EntityType],
) -> ast.EntityPattern:
    etype = _entity_type(entity.type_name)
    entity_id = entity.entity_id or alloc.fresh("e")
    known = entity_types.get(entity_id)
    if known is not None and known is not etype:
        raise AIQLSemanticError(
            f"entity id {entity_id!r} reused with conflicting types "
            f"({known.value} vs {etype.value})"
        )
    entity_types[entity_id] = etype
    return ast.EntityPattern(
        type_name=entity.type_name,
        entity_id=entity_id,
        constraints=_resolve_cstr(entity.constraints, etype),
    )


def _infer_relationship(rel: ast.Relationship) -> ast.Relationship:
    if isinstance(rel, ast.AttrRel):
        return ast.AttrRel(
            left_id=rel.left_id,
            left_attr=rel.left_attr or "id",
            op=rel.op,
            right_id=rel.right_id,
            right_attr=rel.right_attr or "id",
        )
    return rel


def _infer_res_attr(
    res: ast.ResAttr, entity_types: Dict[str, EntityType]
) -> ast.ResAttr:
    if res.attr is not None:
        return res
    etype = entity_types.get(res.ref)
    if etype is None:
        # Event references must name the attribute explicitly; there is no
        # sensible default for an event.
        raise AIQLSemanticError(
            f"cannot infer a default attribute for {res.ref!r}",
            hint="write e.g. 'evt1.optype' for event attributes",
        )
    return ast.ResAttr(ref=res.ref, attr=default_attribute(etype))


def _infer_res_expr(
    res: ast.ResExpr, entity_types: Dict[str, EntityType]
) -> ast.ResExpr:
    if isinstance(res, ast.ResAgg):
        return ast.ResAgg(
            func=res.func,
            arg=_infer_res_attr(res.arg, entity_types),
            distinct=res.distinct,
        )
    return _infer_res_attr(res, entity_types)


def _label_for(item: ast.ReturnItem) -> str:
    """Output column label: rename if given, else the written form."""
    if item.rename:
        return item.rename
    expr = item.expr
    if isinstance(expr, ast.ResAgg):
        inner = _res_attr_text(expr.arg)
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.func}({distinct}{inner})"
    return _res_attr_text(expr)


def _res_attr_text(res: ast.ResAttr) -> str:
    return res.ref if res.attr is None else f"{res.ref}.{res.attr}"


def _infer_returns(
    returns: ast.ReturnClause, entity_types: Dict[str, EntityType]
) -> ast.ReturnClause:
    items = []
    for item in returns.items:
        label = _label_for(item)
        items.append(
            ast.ReturnItem(
                expr=_infer_res_expr(item.expr, entity_types), rename=label
            )
        )
    return ast.ReturnClause(
        items=tuple(items), count=returns.count, distinct=returns.distinct
    )


def _infer_filters(
    filters: ast.Filters, entity_types: Dict[str, EntityType]
) -> ast.Filters:
    group_by = tuple(
        _infer_res_expr(res, entity_types) for res in filters.group_by
    )
    return ast.Filters(
        group_by=group_by,
        having=filters.having,
        sort=filters.sort,
        top=filters.top,
    )


def entity_occurrences(
    query: ast.MultieventQuery,
) -> Dict[str, List[Tuple[int, str]]]:
    """Map entity id -> [(pattern index, 'subject'|'object')], in order.

    The semantic compiler uses this both to resolve references and to expand
    the *entity ID reuse* shortcut into implicit ``id = id`` joins.
    """
    occurrences: Dict[str, List[Tuple[int, str]]] = {}
    for idx, pattern in enumerate(query.patterns):
        for role, entity in (("subject", pattern.subject), ("object", pattern.object)):
            if entity.entity_id is None:
                raise AIQLSemanticError(
                    "entity_occurrences requires an inferred query"
                )
            occurrences.setdefault(entity.entity_id, []).append((idx, role))
    return occurrences
