"""Recursive-descent parser for AIQL (paper Grammar 1).

The parser consumes the token stream from :mod:`repro.lang.lexer` and
produces the AST of :mod:`repro.lang.ast`.  It accepts the full surface
syntax used throughout the paper: multievent queries (Queries 1, 2, 6, 7),
dependency queries (Query 3), and anomaly queries with sliding windows and
history states (Queries 4, 5).

Grammar notes
-------------
* Keywords are contextual; entity/event ids may not collide with operation
  names or clause keywords in positions where that would be ambiguous.
* ``(m_query)+`` in the BNF allows several multievent queries in one input;
  like the paper's examples we support one query per input string (a
  sequence can be parsed with :func:`parse_many`).
* A dependency query is recognized by the presence of ``->`` / ``<-`` path
  edges (or an explicit ``forward:`` / ``backward:`` prefix).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import AIQLSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import (
    AGGREGATE_FUNCTIONS,
    ENTITY_TYPE_WORDS,
    KEYWORDS,
    Token,
    TokenType,
)
from repro.model.events import Operation
from repro.model.time import parse_duration

_COMPARISON_TOKENS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
}

_OPERATION_WORDS = frozenset(
    {op.value for op in Operation}
    | {"exec", "fork", "spawn", "unlink", "remove", "mv", "receive"}
)

_FILTER_KEYWORDS = frozenset({"group", "having", "sort", "top"})


class _ParserState:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # -- token helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def check(self, ttype: TokenType, offset: int = 0) -> bool:
        return self.peek(offset).type is ttype

    def check_word(self, word: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.type is TokenType.IDENT and token.text.lower() == word

    def match(self, ttype: TokenType) -> Optional[Token]:
        if self.check(ttype):
            return self.advance()
        return None

    def match_word(self, word: str) -> Optional[Token]:
        if self.check_word(word):
            return self.advance()
        return None

    def expect(self, ttype: TokenType, what: str) -> Token:
        if self.check(ttype):
            return self.advance()
        return self._unexpected(what)

    def expect_word(self, word: str) -> Token:
        if self.check_word(word):
            return self.advance()
        return self._unexpected(f"keyword {word!r}")

    def _unexpected(self, what: str):
        token = self.peek()
        got = token.text or "end of input"
        raise AIQLSyntaxError(
            f"expected {what}, got {got!r}",
            line=token.line,
            column=token.column,
            source=self.source,
        )

    def error(self, message: str) -> AIQLSyntaxError:
        token = self.peek()
        return AIQLSyntaxError(
            message, line=token.line, column=token.column, source=self.source
        )


def parse(source: str) -> ast.Query:
    """Parse one AIQL query; raises :class:`AIQLSyntaxError`."""
    state = _ParserState(tokenize(source), source)
    query = _parse_query(state)
    if not state.check(TokenType.EOF):
        state._unexpected("end of query")
    return query


def parse_many(source: str, separator: str = ";") -> List[ast.Query]:
    """Parse a ``;``-separated sequence of queries."""
    return [parse(part) for part in source.split(separator) if part.strip()]


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


def _parse_query(state: _ParserState) -> ast.Query:
    globals_ = _parse_globals(state)
    if _looks_like_dependency(state):
        return _parse_dependency(state, globals_)
    return _parse_multievent(state, globals_)


def _looks_like_dependency(state: _ParserState) -> bool:
    if state.check_word("forward") or state.check_word("backward"):
        return True
    offset = 0
    while True:
        token = state.peek(offset)
        if token.type is TokenType.EOF:
            return False
        if token.type is TokenType.IDENT and token.text.lower() == "return":
            return False
        if token.type in (TokenType.ARROW, TokenType.BACKARROW):
            return True
        offset += 1


def _parse_globals(state: _ParserState) -> Tuple[ast.GlobalItem, ...]:
    items: List[ast.GlobalItem] = []
    window_len: Optional[float] = None
    window_step: Optional[float] = None
    while True:
        if state.check(TokenType.LPAREN) and (
            state.check_word("at", 1) or state.check_word("from", 1)
        ):
            state.advance()
            items.append(_parse_time_window(state))
            state.expect(TokenType.RPAREN, "')'")
        elif state.check_word("window") and state.check(TokenType.EQ, 1):
            state.advance()
            state.advance()
            window_len = _parse_duration_literal(state)
        elif state.check_word("step") and state.check(TokenType.EQ, 1):
            state.advance()
            state.advance()
            window_step = _parse_duration_literal(state)
        elif (
            state.check(TokenType.IDENT)
            and state.peek().text.lower() not in ENTITY_TYPE_WORDS
            and not state.check_word("forward")
            and not state.check_word("backward")
            and (
                state.peek(1).type in _COMPARISON_TOKENS
                or state.check_word("in", 1)
                or (state.check_word("not", 1) and state.check_word("in", 2))
            )
        ):
            comparison = _parse_comparison(state)
            items.append(ast.GlobalConstraint(comparison))
        else:
            break
        state.match(TokenType.COMMA)
    if window_len is not None or window_step is not None:
        if window_len is None or window_step is None:
            raise state.error(
                "sliding window requires both 'window = ...' and 'step = ...'"
            )
        items.append(
            ast.SlidingWindowSpec(
                window_seconds=window_len, step_seconds=window_step
            )
        )
    return tuple(items)


def _parse_duration_literal(state: _ParserState) -> float:
    number = state.expect(TokenType.NUMBER, "a duration (e.g. '1 min')")
    unit = state.expect(TokenType.IDENT, "a time unit (sec/min/hour/day)")
    try:
        return parse_duration(float(number.value), unit.text)
    except ValueError as exc:
        raise state.error(str(exc))


def _parse_time_window(state: _ParserState) -> ast.TimeWindowSpec:
    if state.match_word("at"):
        start = state.expect(TokenType.STRING, "a quoted datetime")
        return ast.TimeWindowSpec(kind="at", start_text=str(start.value))
    state.expect_word("from")
    start = state.expect(TokenType.STRING, "a quoted datetime")
    state.expect_word("to")
    end = state.expect(TokenType.STRING, "a quoted datetime")
    return ast.TimeWindowSpec(
        kind="range", start_text=str(start.value), end_text=str(end.value)
    )


# ---------------------------------------------------------------------------
# constraints
# ---------------------------------------------------------------------------


def _parse_value(state: _ParserState) -> object:
    token = state.peek()
    if token.type is TokenType.STRING:
        state.advance()
        return token.value
    if token.type is TokenType.NUMBER:
        state.advance()
        return token.value
    if token.type is TokenType.MINUS and state.check(TokenType.NUMBER, 1):
        state.advance()
        number = state.advance()
        return -number.value  # type: ignore[operator]
    if token.type is TokenType.IDENT:
        state.advance()
        return token.text
    return state._unexpected("a value")


def _parse_comparison(state: _ParserState) -> ast.Comparison:
    """``attr <bop> value`` or ``attr [not] in (...)`` (attr consumed here)."""
    attr = state.expect(TokenType.IDENT, "an attribute name").text
    negated_in = False
    if state.check_word("not") and state.check_word("in", 1):
        state.advance()
        negated_in = True
    if state.match_word("in"):
        state.expect(TokenType.LPAREN, "'('")
        values = [_parse_value(state)]
        while state.match(TokenType.COMMA):
            values.append(_parse_value(state))
        state.expect(TokenType.RPAREN, "')'")
        op = "not in" if negated_in else "in"
        return ast.Comparison(attr=attr, op=op, value=tuple(values))
    token = state.peek()
    if token.type not in _COMPARISON_TOKENS:
        return state._unexpected("a comparison operator")
    state.advance()
    value = _parse_value(state)
    return ast.Comparison(attr=attr, op=_COMPARISON_TOKENS[token.type], value=value)


def _parse_cstr_or(state: _ParserState) -> ast.CstrNode:
    node = _parse_cstr_and(state)
    while state.match(TokenType.OR):
        node = ast.CstrOr(node, _parse_cstr_and(state))
    return node


def _parse_cstr_and(state: _ParserState) -> ast.CstrNode:
    node = _parse_cstr_unary(state)
    while True:
        if state.match(TokenType.AND):
            node = ast.CstrAnd(node, _parse_cstr_unary(state))
        elif state.check(TokenType.COMMA) and not state.check(
            TokenType.RBRACKET, 1
        ):
            # Comma inside entity brackets means AND (Query 3 in the paper:
            # ``p1["%/bin/cp%", agentid = 2]``).
            state.advance()
            node = ast.CstrAnd(node, _parse_cstr_unary(state))
        else:
            return node


def _parse_cstr_unary(state: _ParserState) -> ast.CstrNode:
    if state.match(TokenType.BANG):
        return ast.CstrNot(_parse_cstr_unary(state))
    if state.check(TokenType.LPAREN):
        state.advance()
        node = _parse_cstr_or(state)
        state.expect(TokenType.RPAREN, "')'")
        return node
    # attribute comparison?
    if state.check(TokenType.IDENT) and (
        state.peek(1).type in _COMPARISON_TOKENS
        or state.check_word("in", 1)
        or (state.check_word("not", 1) and state.check_word("in", 2))
    ):
        return ast.CstrLeaf(_parse_comparison(state))
    # bare value with the default attribute inferred later
    value = _parse_value(state)
    return ast.CstrLeaf(ast.Comparison(attr=None, op="=", value=value))


def _parse_bracketed_constraints(state: _ParserState) -> Optional[ast.CstrNode]:
    if not state.match(TokenType.LBRACKET):
        return None
    node = _parse_cstr_or(state)
    state.expect(TokenType.RBRACKET, "']'")
    return node


# ---------------------------------------------------------------------------
# operation expressions
# ---------------------------------------------------------------------------


def _parse_op_or(state: _ParserState) -> ast.OpNode:
    node = _parse_op_and(state)
    while state.match(TokenType.OR):
        node = ast.OpOr(node, _parse_op_and(state))
    return node


def _parse_op_and(state: _ParserState) -> ast.OpNode:
    node = _parse_op_unary(state)
    while state.match(TokenType.AND):
        node = ast.OpAnd(node, _parse_op_unary(state))
    return node


def _parse_op_unary(state: _ParserState) -> ast.OpNode:
    if state.match(TokenType.BANG):
        return ast.OpNot(_parse_op_unary(state))
    if state.check(TokenType.LPAREN):
        state.advance()
        node = _parse_op_or(state)
        state.expect(TokenType.RPAREN, "')'")
        return node
    token = state.expect(TokenType.IDENT, "an operation name")
    name = token.text.lower()
    if name not in _OPERATION_WORDS:
        raise AIQLSyntaxError(
            f"unknown operation {token.text!r}",
            line=token.line,
            column=token.column,
            source=state.source,
        )
    return ast.OpLeaf(name)


# ---------------------------------------------------------------------------
# entities and event patterns
# ---------------------------------------------------------------------------


def _parse_entity(state: _ParserState, allow_id: bool = True) -> ast.EntityPattern:
    token = state.expect(TokenType.IDENT, "an entity type (proc/file/ip)")
    type_name = token.text.lower()
    if type_name not in ENTITY_TYPE_WORDS:
        raise AIQLSyntaxError(
            f"unknown entity type {token.text!r}",
            line=token.line,
            column=token.column,
            source=state.source,
        )
    entity_id: Optional[str] = None
    if allow_id and state.check(TokenType.IDENT):
        word = state.peek().text.lower()
        if (
            word not in KEYWORDS
            and word not in _OPERATION_WORDS
            and word not in ENTITY_TYPE_WORDS
        ):
            entity_id = state.advance().text
    constraints = _parse_bracketed_constraints(state)
    return ast.EntityPattern(
        type_name="proc" if type_name == "process" else type_name,
        entity_id=entity_id,
        constraints=constraints,
    )


def _parse_event_pattern(state: _ParserState) -> ast.EventPattern:
    subject = _parse_entity(state)
    operation = _parse_op_or(state)
    obj = _parse_entity(state)
    event_id: Optional[str] = None
    event_constraints: Optional[ast.CstrNode] = None
    window: Optional[ast.TimeWindowSpec] = None
    if state.match_word("as"):
        event_id = state.expect(TokenType.IDENT, "an event id").text
        event_constraints = _parse_bracketed_constraints(state)
    if state.check(TokenType.LPAREN) and (
        state.check_word("at", 1) or state.check_word("from", 1)
    ):
        state.advance()
        window = _parse_time_window(state)
        state.expect(TokenType.RPAREN, "')'")
    return ast.EventPattern(
        subject=subject,
        operation=operation,
        object=obj,
        event_id=event_id,
        event_constraints=event_constraints,
        window=window,
    )


# ---------------------------------------------------------------------------
# relationships
# ---------------------------------------------------------------------------

_TEMPORAL_KINDS = ("before", "after", "within")


def _parse_relationship(state: _ParserState) -> ast.Relationship:
    left = state.expect(TokenType.IDENT, "an entity or event id").text
    # temporal relationship?
    for kind in _TEMPORAL_KINDS:
        if state.check_word(kind):
            state.advance()
            low: Optional[float] = None
            high: Optional[float] = None
            if state.match(TokenType.LBRACKET):
                low_token = state.expect(TokenType.NUMBER, "a number")
                state.expect(TokenType.MINUS, "'-'")
                high_token = state.expect(TokenType.NUMBER, "a number")
                unit = state.expect(TokenType.IDENT, "a time unit")
                state.expect(TokenType.RBRACKET, "']'")
                low = parse_duration(float(low_token.value), unit.text)
                high = parse_duration(float(high_token.value), unit.text)
                if low > high:
                    raise state.error("temporal range low bound exceeds high bound")
            right = state.expect(TokenType.IDENT, "an event id").text
            return ast.TempRel(
                left_event=left, kind=kind, right_event=right, low=low, high=high
            )
    # attribute relationship
    left_attr: Optional[str] = None
    if state.match(TokenType.DOT):
        left_attr = state.expect(TokenType.IDENT, "an attribute name").text
    token = state.peek()
    if token.type not in _COMPARISON_TOKENS:
        return state._unexpected("a comparison operator or before/after/within")
    state.advance()
    right = state.expect(TokenType.IDENT, "an entity id").text
    right_attr: Optional[str] = None
    if state.match(TokenType.DOT):
        right_attr = state.expect(TokenType.IDENT, "an attribute name").text
    return ast.AttrRel(
        left_id=left,
        left_attr=left_attr,
        op=_COMPARISON_TOKENS[token.type],
        right_id=right,
        right_attr=right_attr,
    )


# ---------------------------------------------------------------------------
# return clause, filters, having expressions
# ---------------------------------------------------------------------------


def _parse_res_attr(state: _ParserState) -> ast.ResAttr:
    ref = state.expect(TokenType.IDENT, "an entity or event id").text
    attr: Optional[str] = None
    if state.match(TokenType.DOT):
        attr = state.expect(TokenType.IDENT, "an attribute name").text
    return ast.ResAttr(ref=ref, attr=attr)


def _parse_res_expr(state: _ParserState) -> ast.ResExpr:
    if (
        state.check(TokenType.IDENT)
        and state.peek().text.lower() in AGGREGATE_FUNCTIONS
        and state.check(TokenType.LPAREN, 1)
    ):
        func = state.advance().text.lower()
        state.advance()  # '('
        distinct = bool(state.match_word("distinct"))
        arg = _parse_res_attr(state)
        state.expect(TokenType.RPAREN, "')'")
        return ast.ResAgg(func=func, arg=arg, distinct=distinct)
    return _parse_res_attr(state)


def _parse_return(state: _ParserState) -> ast.ReturnClause:
    state.expect_word("return")
    count = False
    distinct = False
    if state.check_word("count") and not state.check(TokenType.LPAREN, 1):
        state.advance()
        count = True
    if state.match_word("distinct"):
        distinct = True
    items: List[ast.ReturnItem] = []
    while True:
        expr = _parse_res_expr(state)
        rename: Optional[str] = None
        if state.match_word("as"):
            rename = state.expect(TokenType.IDENT, "a result name").text
        items.append(ast.ReturnItem(expr=expr, rename=rename))
        if not state.match(TokenType.COMMA):
            break
    return ast.ReturnClause(items=tuple(items), count=count, distinct=distinct)


def _parse_filters(state: _ParserState) -> ast.Filters:
    group_by: Tuple[ast.ResExpr, ...] = ()
    having: Optional[ast.ExprNode] = None
    sort: Optional[ast.SortSpec] = None
    top: Optional[int] = None
    while state.check(TokenType.IDENT) and state.peek().text.lower() in _FILTER_KEYWORDS:
        word = state.advance().text.lower()
        if word == "group":
            state.expect_word("by")
            items = [_parse_res_expr(state)]
            while state.match(TokenType.COMMA):
                items.append(_parse_res_expr(state))
            group_by = tuple(items)
        elif word == "having":
            having = _parse_expr(state)
        elif word == "sort":
            state.expect_word("by")
            attrs = [state.expect(TokenType.IDENT, "an attribute").text]
            while state.match(TokenType.COMMA):
                attrs.append(state.expect(TokenType.IDENT, "an attribute").text)
            descending = False
            if state.match_word("desc"):
                descending = True
            elif state.match_word("asc"):
                descending = False
            sort = ast.SortSpec(attrs=tuple(attrs), descending=descending)
        elif word == "top":
            top = int(state.expect(TokenType.NUMBER, "an integer").value)  # type: ignore[arg-type]
    return ast.Filters(group_by=group_by, having=having, sort=sort, top=top)


# having expressions: || < && < comparison < additive < multiplicative < unary


def _parse_expr(state: _ParserState) -> ast.ExprNode:
    node = _parse_expr_and(state)
    while state.match(TokenType.OR):
        node = ast.BinOp("||", node, _parse_expr_and(state))
    return node


def _parse_expr_and(state: _ParserState) -> ast.ExprNode:
    node = _parse_expr_cmp(state)
    while state.match(TokenType.AND):
        node = ast.BinOp("&&", node, _parse_expr_cmp(state))
    return node


def _parse_expr_cmp(state: _ParserState) -> ast.ExprNode:
    node = _parse_expr_add(state)
    while state.peek().type in _COMPARISON_TOKENS:
        op = _COMPARISON_TOKENS[state.advance().type]
        node = ast.BinOp(op, node, _parse_expr_add(state))
    return node


def _parse_expr_add(state: _ParserState) -> ast.ExprNode:
    node = _parse_expr_mul(state)
    while state.check(TokenType.PLUS) or state.check(TokenType.MINUS):
        op = "+" if state.advance().type is TokenType.PLUS else "-"
        node = ast.BinOp(op, node, _parse_expr_mul(state))
    return node


def _parse_expr_mul(state: _ParserState) -> ast.ExprNode:
    node = _parse_expr_unary(state)
    while state.check(TokenType.STAR) or state.check(TokenType.SLASH):
        op = "*" if state.advance().type is TokenType.STAR else "/"
        node = ast.BinOp(op, node, _parse_expr_unary(state))
    return node


def _parse_expr_unary(state: _ParserState) -> ast.ExprNode:
    if state.match(TokenType.MINUS):
        return ast.BinOp("-", ast.Num(0.0), _parse_expr_unary(state))
    if state.check(TokenType.LPAREN):
        state.advance()
        node = _parse_expr(state)
        state.expect(TokenType.RPAREN, "')'")
        return node
    if state.check(TokenType.NUMBER):
        return ast.Num(float(state.advance().value))  # type: ignore[arg-type]
    token = state.expect(TokenType.IDENT, "a name or number")
    name = token.text
    # function call
    if state.check(TokenType.LPAREN):
        state.advance()
        args: List[ast.ExprNode] = []
        if not state.check(TokenType.RPAREN):
            args.append(_parse_expr(state))
            while state.match(TokenType.COMMA):
                args.append(_parse_expr(state))
        state.expect(TokenType.RPAREN, "')'")
        return ast.FuncCall(name=name.lower(), args=tuple(args))
    # history state: name[k]
    if state.check(TokenType.LBRACKET):
        state.advance()
        k = state.expect(TokenType.NUMBER, "a history index")
        state.expect(TokenType.RBRACKET, "']'")
        return ast.Name(name=name, history=int(k.value))  # type: ignore[arg-type]
    return ast.Name(name=name)


# ---------------------------------------------------------------------------
# multievent and dependency queries
# ---------------------------------------------------------------------------


def _parse_multievent(
    state: _ParserState, globals_: Tuple[ast.GlobalItem, ...]
) -> ast.MultieventQuery:
    patterns: List[ast.EventPattern] = []
    while state.check(TokenType.IDENT) and state.peek().text.lower() in ENTITY_TYPE_WORDS:
        patterns.append(_parse_event_pattern(state))
    if not patterns:
        state._unexpected("an event pattern")
    relationships: List[ast.Relationship] = []
    if state.match_word("with"):
        relationships.append(_parse_relationship(state))
        while state.match(TokenType.COMMA):
            relationships.append(_parse_relationship(state))
    returns = _parse_return(state)
    filters = _parse_filters(state)
    return ast.MultieventQuery(
        globals=globals_,
        patterns=tuple(patterns),
        relationships=tuple(relationships),
        returns=returns,
        filters=filters,
    )


def _parse_dependency(
    state: _ParserState, globals_: Tuple[ast.GlobalItem, ...]
) -> ast.DependencyQuery:
    direction: Optional[str] = None
    if state.check_word("forward") or state.check_word("backward"):
        direction = state.advance().text.lower()
        state.expect(TokenType.COLON, "':'")
    nodes: List[ast.EntityPattern] = [_parse_entity(state)]
    edges: List[ast.DependencyEdge] = []
    while state.check(TokenType.ARROW) or state.check(TokenType.BACKARROW):
        arrow = state.advance()
        edge_dir = "->" if arrow.type is TokenType.ARROW else "<-"
        state.expect(TokenType.LBRACKET, "'['")
        operation = _parse_op_or(state)
        state.expect(TokenType.RBRACKET, "']'")
        edges.append(ast.DependencyEdge(direction=edge_dir, operation=operation))
        nodes.append(_parse_entity(state))
    if not edges:
        raise state.error("dependency query requires at least one '->' or '<-' edge")
    returns = _parse_return(state)
    filters = _parse_filters(state)
    return ast.DependencyQuery(
        globals=globals_,
        direction=direction,
        nodes=tuple(nodes),
        edges=tuple(edges),
        returns=returns,
        filters=filters,
    )
