"""Evaluator for having-clause expressions (paper Sec. 4.3).

Anomaly queries compare aggregates against *historical states*: ``freq[1]``
is the value of ``freq`` one sliding-window step earlier, and the built-in
moving averages (SMA, CMA, WMA, EWMA [44]) smooth over a series of past
values.  The evaluator works against an :class:`ExprEnv` that supplies the
current value and the aligned history series of each named result.

Moving-average semantics (over the series *including* the current window,
oldest -> newest):

* ``SMA(x, n)``  — arithmetic mean of the last ``n`` values;
* ``CMA(x)``     — cumulative mean of all values so far;
* ``WMA(x, n)``  — linearly weighted mean of the last ``n`` values
  (weight ``i`` for the ``i``-th oldest of the window);
* ``EWMA(x, a)`` — recursive smoothing ``S_t = a*S_{t-1} + (1-a)*x_t``
  seeded with the first value.  ``a`` close to 1 weights history heavily,
  matching the paper's baseline usage ``EWMA(freq, 0.9)``.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

from repro.lang.ast import BinOp, ExprNode, FuncCall, Name, Num
from repro.lang.errors import AIQLSemanticError


class ExprEnv(Protocol):
    """Value source for expression evaluation."""

    def value(self, name: str, history: int) -> float:
        """Value of ``name``, ``history`` steps back (0 = current)."""

    def series(self, name: str) -> Sequence[float]:
        """Aligned value series for ``name``, oldest -> newest (incl. current)."""


class MappingEnv:
    """Simple env over per-name series lists (oldest -> newest)."""

    def __init__(self, data: Dict[str, Sequence[float]]) -> None:
        self._data = {k: list(v) for k, v in data.items()}

    def value(self, name: str, history: int) -> float:
        series = self._series(name)
        idx = len(series) - 1 - history
        if idx < 0:
            raise AIQLSemanticError(
                f"not enough history for {name}[{history}]",
                hint="windows earlier than the deepest history index are skipped",
            )
        return series[idx]

    def series(self, name: str) -> Sequence[float]:
        return self._series(name)

    def _series(self, name: str) -> List[float]:
        if name not in self._data:
            raise AIQLSemanticError(f"unknown result name {name!r} in having clause")
        return self._data[name]


def sma(series: Sequence[float], n: int) -> float:
    if n < 1:
        raise AIQLSemanticError("SMA window must be >= 1")
    window = list(series[-n:])
    if not window:
        return 0.0
    return sum(window) / len(window)


def cma(series: Sequence[float]) -> float:
    if not series:
        return 0.0
    return sum(series) / len(series)


def wma(series: Sequence[float], n: int) -> float:
    if n < 1:
        raise AIQLSemanticError("WMA window must be >= 1")
    window = list(series[-n:])
    if not window:
        return 0.0
    weights = range(1, len(window) + 1)
    total_weight = sum(weights)
    return sum(w * x for w, x in zip(weights, window)) / total_weight


def ewma(series: Sequence[float], alpha: float) -> float:
    if not 0.0 <= alpha <= 1.0:
        raise AIQLSemanticError("EWMA smoothing factor must be in [0, 1]")
    if not series:
        return 0.0
    smoothed = series[0]
    for x in series[1:]:
        smoothed = alpha * smoothed + (1.0 - alpha) * x
    return smoothed


def _check_arity(name: str, args: tuple, expected: int) -> None:
    if len(args) != expected:
        raise AIQLSemanticError(
            f"{name.upper()} takes {expected} argument(s), got {len(args)}"
        )


def _series_arg(node: ExprNode, env: ExprEnv, func: str) -> Sequence[float]:
    if not isinstance(node, Name) or node.history:
        raise AIQLSemanticError(
            f"first argument of {func.upper()} must be a plain result name"
        )
    return env.series(node.name)


def evaluate(node: ExprNode, env: ExprEnv) -> float:
    """Evaluate an expression; booleans are 1.0 / 0.0."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Name):
        return float(env.value(node.name, node.history))
    if isinstance(node, FuncCall):
        return _evaluate_call(node, env)
    if isinstance(node, BinOp):
        return _evaluate_binop(node, env)
    raise AIQLSemanticError(f"cannot evaluate expression node {node!r}")


def evaluate_bool(node: ExprNode, env: ExprEnv) -> bool:
    return bool(evaluate(node, env))


def _evaluate_call(node: FuncCall, env: ExprEnv) -> float:
    name = node.name
    if name == "sma":
        _check_arity(name, node.args, 2)
        series = _series_arg(node.args[0], env, name)
        return sma(series, int(evaluate(node.args[1], env)))
    if name == "cma":
        _check_arity(name, node.args, 1)
        return cma(_series_arg(node.args[0], env, name))
    if name == "wma":
        _check_arity(name, node.args, 2)
        series = _series_arg(node.args[0], env, name)
        return wma(series, int(evaluate(node.args[1], env)))
    if name == "ewma":
        _check_arity(name, node.args, 2)
        series = _series_arg(node.args[0], env, name)
        return ewma(series, evaluate(node.args[1], env))
    if name == "abs":
        _check_arity(name, node.args, 1)
        return abs(evaluate(node.args[0], env))
    raise AIQLSemanticError(f"unknown function {node.name!r} in having clause")


def _evaluate_binop(node: BinOp, env: ExprEnv) -> float:
    op = node.op
    if op == "&&":
        return 1.0 if evaluate_bool(node.left, env) and evaluate_bool(node.right, env) else 0.0
    if op == "||":
        return 1.0 if evaluate_bool(node.left, env) or evaluate_bool(node.right, env) else 0.0
    left = evaluate(node.left, env)
    right = evaluate(node.right, env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0.0:
            # Security analytics convention: a zero historical baseline means
            # "no deviation computable", not a crash mid-investigation.
            return 0.0
        return left / right
    if op == "=":
        return 1.0 if left == right else 0.0
    if op == "!=":
        return 1.0 if left != right else 0.0
    if op == "<":
        return 1.0 if left < right else 0.0
    if op == "<=":
        return 1.0 if left <= right else 0.0
    if op == ">":
        return 1.0 if left > right else 0.0
    if op == ">=":
        return 1.0 if left >= right else 0.0
    raise AIQLSemanticError(f"unknown operator {op!r} in having clause")


def max_history_depth(node: ExprNode) -> int:
    """Deepest history index referenced — windows earlier than this skip."""
    if isinstance(node, Name):
        return node.history
    if isinstance(node, BinOp):
        return max(max_history_depth(node.left), max_history_depth(node.right))
    if isinstance(node, FuncCall):
        return max((max_history_depth(a) for a in node.args), default=0)
    return 0


def referenced_names(node: ExprNode) -> List[str]:
    """All result names referenced by the expression (with duplicates removed)."""
    out: List[str] = []

    def walk(n: ExprNode) -> None:
        if isinstance(n, Name):
            if n.name not in out:
                out.append(n.name)
        elif isinstance(n, BinOp):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, FuncCall):
            for arg in n.args:
                walk(arg)

    walk(node)
    return out
